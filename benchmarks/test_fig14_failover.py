"""Figure 14 — throughput timeline across a sequencer failover.

Paper: the sequencer is killed at t=0; the SDN controller detects the
failure, reroutes to a standby with a higher epoch, and the Eris epoch
change runs. Normal operation resumes after ~130 ms and full throughput
by ~300 ms; the outage length is dominated by detection + rerouting.
"""

import pytest

from bench_common import YCSBBench, print_paper_comparison, run_ycsb
from repro.harness.faults import FaultPlan
from repro.net.controller import ControllerConfig

KILL_AT = 40e-3
# Paper-style controller timing scaled down ~2x so the bench stays short:
# detection ~= 3 x 10ms pings, reroute 40ms -> ~70ms outage expected.
CONTROLLER = ControllerConfig(ping_interval=10e-3, failure_threshold=3,
                              reroute_delay=40e-3)


def test_fig14_sequencer_failover_timeline(benchmark):
    def run():
        from repro.harness import ExperimentConfig, build_cluster, \
            run_experiment
        from repro.harness.cluster import ClusterConfig
        from repro.sim.randomness import SplitRandom
        from repro.store import ProcedureRegistry
        from repro.workloads import (Partitioner, YCSBConfig,
                                     YCSBWorkload,
                                     register_ycsb_procedures)
        from repro.workloads.ycsb import load_ycsb

        registry = ProcedureRegistry()
        register_ycsb_procedures(registry)
        partitioner = Partitioner(2)
        config = ClusterConfig(system="eris", n_shards=2, seed=7,
                               controller=CONTROLLER)
        cluster = build_cluster(
            config, registry, partitioner,
            loader=lambda stores, p: load_ycsb(stores, p, 1000))
        workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=1000),
                                partitioner, SplitRandom(8))
        FaultPlan(cluster).kill_sequencer_at(KILL_AT)
        result = run_experiment(cluster, workload, ExperimentConfig(
            n_clients=60, warmup=5e-3, duration=250e-3, drain=20e-3,
            timeseries_bucket=10e-3))
        return cluster, result

    cluster, result = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = [[f"{(t - KILL_AT) * 1000:7.1f}", rate]
            for t, rate in result.timeseries]
    print_paper_comparison(
        "Fig 14 — throughput during sequencer failover "
        "(time relative to kill, ms)",
        ["t (ms)", "txn/s"], rows,
        notes="Paper: outage ~130 ms (detection + reroute), then full "
              "throughput; here detection 30 ms + reroute 40 ms.")

    series = result.timeseries
    before = [rate for t, rate in series if t < KILL_AT]
    during = [rate for t, rate in series
              if KILL_AT + 10e-3 < t < KILL_AT + 60e-3]
    after = [rate for t, rate in series if t > KILL_AT + 120e-3]
    assert min(before) > 0
    assert min(during) < 0.05 * max(before)     # a real outage
    assert after and max(after) > 0.8 * max(before)  # full recovery
    assert cluster.controller.failovers == 1
    # The shards converged on epoch 2 after the change.
    for replicas in cluster.replicas.values():
        for replica in replicas:
            if not replica.crashed:
                assert replica.epoch_num == 2


def test_fig14_chain_repair_vs_epoch_bump(benchmark):
    """Extended fig14: identical workload and controller timing, the
    paper's single sequencer vs a 2-node chain-replicated sequencer.
    The epoch path pays detection + fabric-wide reroute + epoch change;
    splice repair pays detection + a tail state read + one chain rule,
    so its outage window must be strictly smaller."""
    def run():
        from repro.harness import ExperimentConfig, build_cluster, \
            run_failover_experiment
        from repro.harness.cluster import ClusterConfig
        from repro.sim.randomness import SplitRandom
        from repro.store import ProcedureRegistry
        from repro.workloads import (Partitioner, YCSBConfig,
                                     YCSBWorkload,
                                     register_ycsb_procedures)
        from repro.workloads.ycsb import load_ycsb

        def measure(chain):
            registry = ProcedureRegistry()
            register_ycsb_procedures(registry)
            partitioner = Partitioner(2)
            config = ClusterConfig(system="eris", n_shards=2, seed=7,
                                   controller=CONTROLLER,
                                   sequencer_chain=chain)
            cluster = build_cluster(
                config, registry, partitioner,
                loader=lambda stores, p: load_ycsb(stores, p, 1000))
            workload = YCSBWorkload(
                YCSBConfig(workload="srw", n_keys=1000),
                partitioner, SplitRandom(8))
            result, window = run_failover_experiment(
                cluster, workload, KILL_AT, ExperimentConfig(
                    n_clients=60, warmup=5e-3, duration=250e-3,
                    drain=20e-3, timeseries_bucket=5e-3))
            return cluster, result, window

        return measure(0), measure(2)

    (epoch_cluster, epoch_result, epoch_window), \
        (chain_cluster, chain_result, chain_window) = \
        benchmark.pedantic(run, iterations=1, rounds=1)

    print_paper_comparison(
        "Fig 14 (extended) — failover outage window: epoch bump vs "
        "chain splice repair",
        ["path", "outage (ms)", "mechanism"],
        [["epoch bump", f"{epoch_window * 1000:.1f}",
          f"reroute + epoch change (epoch -> "
          f"{epoch_cluster.controller.current_epoch})"],
         ["chain repair", f"{chain_window * 1000:.1f}",
          f"splice (repairs={chain_cluster.controller.chain_repairs}, "
          f"epoch stays {chain_cluster.controller.current_epoch})"]],
        notes="Same detection timeout for both; the chain saves the "
              "fabric-wide reroute and the stop-the-world epoch change.")

    assert epoch_cluster.controller.failovers == 1
    assert chain_cluster.controller.failovers == 0
    assert chain_cluster.controller.chain_repairs == 1
    assert chain_cluster.controller.current_epoch == 1
    assert 0 < chain_window < epoch_window < float("inf")
