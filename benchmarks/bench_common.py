"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from Section 8 at a
scaled-down deployment (3 shards instead of 15, millisecond measurement
windows) so the whole suite runs in minutes. Absolute numbers are in
simulator units; the *shape* — which system wins, by what factor, where
curves cross — is the reproduction target and is both printed (next to
the paper's reference values) and asserted loosely.

Run a single figure with, e.g.::

    pytest benchmarks/test_fig6_srw_latency_throughput.py --benchmark-only -s
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.harness import (
    ClusterConfig,
    ExperimentConfig,
    build_cluster,
    run_experiment,
)
from repro.net.network import NetConfig
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import (
    Partitioner,
    YCSBConfig,
    YCSBWorkload,
    register_ycsb_procedures,
)
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCWorkload,
    load_tpcc,
    register_tpcc_procedures,
    tpcc_partitioner,
)
from repro.workloads.tpcc.schema import TPCCScale
from repro.workloads.ycsb import load_ycsb

#: Systems in the order the paper's figure legends list them.
ALL_SYSTEMS = ("eris", "granola", "tapir", "lockstore", "ntur")

#: Default scaled-down deployment.
N_SHARDS = 3
N_KEYS = 2000
SEED = 42

#: Default measurement window (seconds of simulated time).
WARMUP = 4e-3
DURATION = 8e-3
DRAIN = 4e-3

#: Closed-loop client count that saturates every system at this scale.
SATURATING_CLIENTS = 220


@dataclass
class YCSBBench:
    """One YCSB+T measurement point."""

    system: str
    workload: str = "srw"
    distributed_fraction: float = 0.0
    zipf_theta: float = 0.0
    n_clients: int = SATURATING_CLIENTS
    n_shards: int = N_SHARDS
    n_keys: int = N_KEYS
    seed: int = SEED
    drop_rate: float = 0.0
    warmup: float = WARMUP
    duration: float = DURATION
    drain: float = DRAIN
    timeseries_bucket: Optional[float] = None
    config_overrides: dict = field(default_factory=dict)


def run_ycsb(point: YCSBBench):
    """Build a cluster, run one YCSB+T measurement, return the result."""
    registry = ProcedureRegistry()
    register_ycsb_procedures(registry)
    partitioner = Partitioner(point.n_shards)
    config = ClusterConfig(system=point.system, n_shards=point.n_shards,
                           seed=point.seed,
                           net=NetConfig(drop_rate=point.drop_rate),
                           **point.config_overrides)
    cluster = build_cluster(
        config, registry, partitioner,
        loader=lambda stores, p: load_ycsb(stores, p, point.n_keys))
    workload = YCSBWorkload(
        YCSBConfig(workload=point.workload, n_keys=point.n_keys,
                   distributed_fraction=point.distributed_fraction,
                   zipf_theta=point.zipf_theta),
        partitioner, SplitRandom(point.seed + 1))
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=point.n_clients, warmup=point.warmup,
        duration=point.duration, drain=point.drain,
        timeseries_bucket=point.timeseries_bucket))
    return cluster, result


#: TPC-C at bench scale (ratios to the spec preserved; see schema.py).
TPCC_SCALE = TPCCScale(n_warehouses=6, districts_per_warehouse=4,
                       customers_per_district=10, n_items=60)


def run_tpcc(system: str, n_shards: int = N_SHARDS,
             remote_fraction: float = 0.10,
             n_clients: int = 120,
             warmup: float = WARMUP, duration: float = DURATION):
    """One TPC-C measurement; throughput counts new-order commits."""
    registry = ProcedureRegistry()
    register_tpcc_procedures(registry)
    partitioner = tpcc_partitioner(n_shards)
    config = ClusterConfig(system=system, n_shards=n_shards, seed=SEED)
    cluster = build_cluster(
        config, registry, partitioner,
        loader=lambda stores, p: load_tpcc(stores, p, TPCC_SCALE))
    workload = TPCCWorkload(
        TPCCConfig(scale=TPCC_SCALE, remote_fraction=remote_fraction),
        partitioner, SplitRandom(SEED + 1))
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=n_clients, warmup=warmup, duration=duration,
        drain=DRAIN,
        count_filter=lambda op: op.proc == "tpcc_new_order"))
    return cluster, result


def print_paper_comparison(title: str, headers, rows, notes: str = "") -> None:
    from repro.harness.results import format_table
    print()
    print(format_table(headers, rows, title=title))
    if notes:
        print(notes)
