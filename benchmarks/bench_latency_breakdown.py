#!/usr/bin/env python
"""Pinned per-phase commit-latency breakdown of a reference Eris run.

Runs one traced YCSB+T measurement, reconstructs the transaction span
forest (:mod:`repro.obs.spans`), and writes the per-phase attribution
to ``BENCH_latency_breakdown.json`` at the repo root, next to the other
``BENCH_*`` baselines. All quantities are *simulated* time, so the file
is deterministic and machine-independent: ``--check`` re-measures and
fails (exit 1) on any drift in transaction counts, per-phase means, or
the phase-sum/end-to-end consistency — a change means the protocol's
latency profile changed, not the hardware.

Usage::

    PYTHONPATH=src python benchmarks/bench_latency_breakdown.py          # re-pin
    PYTHONPATH=src python benchmarks/bench_latency_breakdown.py --check  # gate
    PYTHONPATH=src python benchmarks/bench_latency_breakdown.py --quick  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if True:  # keep import block after sys.path fix-up
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_common import YCSBBench, run_ycsb                   # noqa: E402
from repro.obs import analyze_trace                            # noqa: E402

BREAKDOWN_PATH = os.path.join(REPO_ROOT, "BENCH_latency_breakdown.json")

#: Deterministic quantities are checked to float precision only.
FLOAT_TOLERANCE = 1e-9

#: The reference measurement point: Eris under moderate load with 20%
#: multi-shard transactions, so quorum_wait covers real cross-shard
#: fan-out, not just replica jitter.
POINT = dict(system="eris", workload="mrmw", distributed_fraction=0.2,
             n_clients=120, n_shards=3)


def measure(quick: bool) -> dict:
    point = YCSBBench(config_overrides={"tracing": True}, **POINT)
    if quick:
        point.n_clients = 40
        point.duration = 4e-3
    cluster, result = run_ycsb(point)
    report = analyze_trace(cluster.tracer.events)
    return {
        "schema": 1,
        "note": "simulated time; deterministic and machine-independent",
        "config": dict(POINT, quick=quick,
                       n_clients=point.n_clients,
                       duration=point.duration, seed=point.seed),
        "throughput_txn_s": result.throughput,
        "breakdown": report,
    }


def check(current: dict) -> list[str]:
    """Exact comparison against the committed baseline (all simulated
    time; any difference beyond float noise is a behaviour change)."""
    try:
        with open(BREAKDOWN_PATH) as f:
            base = json.load(f)
    except FileNotFoundError as exc:
        return [f"missing committed baseline: {exc}"]
    if base["config"] != current["config"]:
        return [f"config changed: {base['config']} != {current['config']} "
                "(re-pin instead of --check)"]
    failures: list[str] = []
    base_bd, cur_bd = base["breakdown"], current["breakdown"]
    for key, base_value in base_bd["txns"].items():
        cur_value = cur_bd["txns"][key]
        status = "ok" if cur_value == base_value else "DRIFT"
        print(f"  txns.{key:12s} {cur_value:>10} vs {base_value:>10}  "
              f"[{status}]")
        if cur_value != base_value:
            failures.append(f"txns.{key}: {cur_value} != {base_value}")
    for name in base_bd["phase_order"]:
        base_mean = base_bd["phases"][name].get("mean_us", 0.0)
        cur_mean = cur_bd["phases"][name].get("mean_us", 0.0)
        drift = abs(cur_mean - base_mean)
        ok = drift <= max(abs(base_mean), 1.0) * FLOAT_TOLERANCE
        print(f"  {name:16s} {cur_mean:>10.3f}us vs {base_mean:>10.3f}us  "
              f"[{'ok' if ok else 'DRIFT'}]")
        if not ok:
            failures.append(
                f"phase {name}: mean {cur_mean}us != {base_mean}us "
                "(deterministic — latency profile changed)")
    residual = abs(cur_bd["consistency"]["residual_us"])
    mean_e2e = cur_bd["consistency"]["mean_e2e_us"]
    if residual > max(mean_e2e, 1.0) * 1e-9:
        failures.append(
            f"phase sums no longer telescope: residual {residual}us "
            f"against mean end-to-end {mean_e2e}us")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-phase commit-latency breakdown baseline")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed "
                             "BENCH_latency_breakdown.json instead of "
                             "overwriting it")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (smaller, separately pinned "
                             "config — do not commit over a full pin)")
    parser.add_argument("--out", default=BREAKDOWN_PATH,
                        help="output path (default: repo root)")
    args = parser.parse_args(argv)

    print("running traced reference measurement"
          + (" (quick)" if args.quick else "") + " ...")
    current = measure(args.quick)
    breakdown = current["breakdown"]
    print(f"  {breakdown['txns']['attributed']} transactions attributed; "
          f"mean end-to-end "
          f"{breakdown['end_to_end']['mean_us']:.1f}us")
    for name in breakdown["phase_order"]:
        stats = breakdown["phases"][name]
        mean = stats.get("mean_us", 0.0)
        print(f"  {name:16s} {mean:>8.2f}us  "
              f"({stats['share'] * 100:5.1f}%)")

    if args.check:
        print("checking against committed baseline ...")
        failures = check(current)
        if failures:
            print("LATENCY BREAKDOWN CHECK FAILED:")
            for failure in failures:
                print("  -", failure)
            return 1
        print("latency breakdown check ok")
        return 0

    with open(args.out, "w") as f:
        json.dump(current, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
