#!/usr/bin/env python
"""Coordination-free counters benchmark — the fast-path speedup pin.

Sweeps the coordination-free fraction ``alpha`` of the counters
workload (see :mod:`repro.workloads.counters`): a fraction
``0.7 * alpha`` of operations are clean single-key reads and
``0.3 * alpha`` are commutative increments/tag unions; the remainder
are generic read-modify-write resets that must take the ordered path.
Each point is measured twice on the simulator — once with the
coordination-free knobs off (every operation fully ordered and
replicated) and once with ``read_fast_path`` + ``commutative_apply``
on — and the speedup is their throughput ratio.

Simulated throughput is deterministic and machine-independent, so the
committed ``BENCH_counters.json`` pins exact values; ``--check``
re-measures and fails (exit 1) on any drift, and additionally gates
the headline claim: at the gate point (``alpha = 0.9``) the fast path
must beat the baseline by at least :data:`SPEEDUP_REQUIREMENT`.

Usage::

    PYTHONPATH=src python benchmarks/bench_counters.py          # re-pin
    PYTHONPATH=src python benchmarks/bench_counters.py --check  # gate
    PYTHONPATH=src python benchmarks/bench_counters.py --quick  # gate point only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if True:  # keep import block after sys.path fix-up
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.replica import ErisConfig                      # noqa: E402
from repro.harness.cluster import ClusterConfig, build_cluster  # noqa: E402
from repro.harness.experiment import (                         # noqa: E402
    ExperimentConfig,
    run_experiment,
)
from repro.sim.randomness import SplitRandom                   # noqa: E402
from repro.store.procedures import ProcedureRegistry           # noqa: E402
from repro.workloads import (                                  # noqa: E402
    CountersConfig,
    CountersWorkload,
    Partitioner,
    load_counters,
    register_counters_procedures,
)

COUNTERS_PATH = os.path.join(REPO_ROOT, "BENCH_counters.json")

#: The headline gate: fast path must beat the ordered baseline by this
#: factor at the gate point. Checked on both the pinned file and the
#: live re-measure — the values are deterministic, so there is no
#: machine-noise tolerance.
SPEEDUP_REQUIREMENT = 1.5

#: Coordination-free fractions swept; the last entry is the gate point.
ALPHAS = (0.0, 0.3, 0.6, 0.9)

#: Split of the coordination-free fraction between clean reads and
#: commutative writes (the remaining 1 - alpha is generic resets).
READ_SHARE = 0.7
COMMUTATIVE_SHARE = 0.3

#: Workload/cluster shape. Keys are spread wide enough that the
#: sequencer's dirty-set rarely poisons an unrelated read, and the
#: watermark cadence is tightened so dirty entries clear at protocol
#: speed rather than sync-interval speed.
N_SHARDS = 3
N_KEYS = 20_000
N_CLIENTS = 220
SEED = 42
WARMUP = 4e-3
DURATION = 8e-3
DRAIN = 4e-3
WATERMARK_INTERVAL = 0.25e-3


def run_point(alpha: float, fast_path: bool) -> dict:
    """One deterministic measurement: counters workload at ``alpha``."""
    config = ClusterConfig(
        system="eris", n_shards=N_SHARDS, seed=SEED,
        read_fast_path=fast_path, commutative_apply=fast_path,
        eris=ErisConfig(watermark_interval=WATERMARK_INTERVAL))
    registry = ProcedureRegistry()
    register_counters_procedures(registry)
    partitioner = Partitioner(N_SHARDS)
    workload_config = CountersConfig(
        n_keys=N_KEYS,
        read_fraction=round(READ_SHARE * alpha, 6),
        commutative_fraction=round(COMMUTATIVE_SHARE * alpha, 6))
    cluster = build_cluster(
        config, registry, partitioner,
        loader=lambda stores, p: load_counters(stores, p, N_KEYS))
    workload = CountersWorkload(workload_config, partitioner,
                                SplitRandom(SEED + 1))
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=N_CLIENTS, warmup=WARMUP, duration=DURATION,
        drain=DRAIN))
    point = {
        "throughput_txn_s": result.throughput,
        "committed": result.committed,
        "aborted": result.aborted,
    }
    if fast_path:
        sequencer = cluster.sequencers[0]
        point["fast_reads"] = sequencer.fast_reads
        point["fast_read_misses"] = sequencer.fast_read_misses
        point["early_applies"] = sum(
            replica.early_applies
            for replicas in cluster.replicas.values()
            for replica in replicas)
    return point


def measure(quick: bool) -> dict:
    alphas = ALPHAS[-1:] if quick else ALPHAS
    sweep = []
    t0 = time.perf_counter()
    for alpha in alphas:
        baseline = run_point(alpha, fast_path=False)
        fast = run_point(alpha, fast_path=True)
        sweep.append({
            "alpha": alpha,
            "baseline": baseline,
            "fast_path": fast,
            "speedup": round(fast["throughput_txn_s"]
                             / baseline["throughput_txn_s"], 3),
        })
    gate = sweep[-1]
    return {
        "schema": 1,
        "note": "simulated time; deterministic and machine-independent",
        "config": {
            "n_shards": N_SHARDS, "n_keys": N_KEYS,
            "n_clients": N_CLIENTS, "seed": SEED,
            "read_share": READ_SHARE,
            "commutative_share": COMMUTATIVE_SHARE,
            "watermark_interval": WATERMARK_INTERVAL,
            "warmup": WARMUP, "duration": DURATION, "drain": DRAIN,
        },
        "sweep": sweep,
        "gate": {
            "alpha": gate["alpha"],
            "speedup": gate["speedup"],
            "requirement": SPEEDUP_REQUIREMENT,
        },
        "wall_seconds": round(time.perf_counter() - t0, 3),
    }


def print_results(results: dict) -> None:
    print(f"  {'alpha':>6s} {'baseline':>12s} {'fast path':>12s} "
          f"{'speedup':>8s} {'fast reads':>11s} {'misses':>7s} "
          f"{'early':>6s}")
    for row in results["sweep"]:
        fast = row["fast_path"]
        print(f"  {row['alpha']:>6.1f} "
              f"{row['baseline']['throughput_txn_s']:>12,.0f} "
              f"{fast['throughput_txn_s']:>12,.0f} "
              f"{row['speedup']:>7.2f}x "
              f"{fast.get('fast_reads', 0):>11,} "
              f"{fast.get('fast_read_misses', 0):>7,} "
              f"{fast.get('early_applies', 0):>6,}")


def check(results: dict) -> list[str]:
    """Compare a fresh measurement against the committed baseline."""
    failures: list[str] = []
    try:
        with open(COUNTERS_PATH) as f:
            pinned = json.load(f)
    except FileNotFoundError as exc:
        return [f"missing committed baseline: {exc}"]

    pinned_rows = {row["alpha"]: row for row in pinned["sweep"]}
    for row in results["sweep"]:
        base_row = pinned_rows.get(row["alpha"])
        if base_row is None:
            failures.append(f"alpha={row['alpha']} not in committed pin")
            continue
        for side in ("baseline", "fast_path"):
            cur = row[side]["throughput_txn_s"]
            ref = base_row[side]["throughput_txn_s"]
            ok = cur >= ref * 0.999  # deterministic; tolerance float-only
            print(f"  alpha={row['alpha']:<4} {side:10s} {cur:>12,.0f} "
                  f"vs pinned {ref:>12,.0f}  "
                  f"[{'ok' if ok else 'REGRESSION'}]")
            if not ok:
                failures.append(
                    f"alpha={row['alpha']} {side} throughput "
                    f"{cur:,.0f} fell below pinned {ref:,.0f} "
                    "(simulated time — behaviour change, not noise)")
            if row[side]["committed"] != base_row[side]["committed"]:
                failures.append(
                    f"alpha={row['alpha']} {side} committed count "
                    f"changed: {row[side]['committed']} != "
                    f"{base_row[side]['committed']} (determinism drift)")

    gate = results["gate"]
    pinned_gate = pinned["gate"]
    ok = (gate["speedup"] >= SPEEDUP_REQUIREMENT
          and pinned_gate["speedup"] >= SPEEDUP_REQUIREMENT)
    print(f"  gate alpha={gate['alpha']}: speedup {gate['speedup']:.2f}x "
          f"(pinned {pinned_gate['speedup']:.2f}x, requires "
          f">={SPEEDUP_REQUIREMENT}x)  [{'ok' if ok else 'FAILED'}]")
    if pinned_gate["speedup"] < SPEEDUP_REQUIREMENT:
        failures.append(
            f"pinned gate speedup {pinned_gate['speedup']}x < "
            f"{SPEEDUP_REQUIREMENT}x — fix the fast path, not the pin")
    if gate["speedup"] < SPEEDUP_REQUIREMENT:
        failures.append(
            f"measured gate speedup {gate['speedup']}x < "
            f"{SPEEDUP_REQUIREMENT}x at alpha={gate['alpha']}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Coordination-free counters speedup benchmark")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed "
                             "BENCH_counters.json instead of "
                             "overwriting it")
    parser.add_argument("--quick", action="store_true",
                        help="measure only the gate point")
    args = parser.parse_args(argv)

    print("running counters sweep"
          + (" (gate point only)" if args.quick else "") + " ...")
    results = measure(args.quick)
    print_results(results)

    if args.check:
        print("checking against committed baseline ...")
        failures = check(results)
        if failures:
            print("PERF CHECK FAILED:")
            for failure in failures:
                print("  -", failure)
            return 1
        print("perf check ok")
        return 0

    if args.quick:
        print("refusing to pin from a --quick run (partial sweep)")
        return 1
    with open(COUNTERS_PATH, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {COUNTERS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
