"""Figure 7 — MRMW throughput vs. fraction of multi-shard transactions.

Paper: with uniform keys and a growing share of two-shard RMW
independent transactions, Eris stays within 10% of NT-UR across the
whole sweep (NT-UR itself declines: one two-shard op costs two
one-shard ops), while Granola/TAPIR/Lock-Store pay coordination per
distributed transaction and fall away much faster.
"""

import pytest

from bench_common import ALL_SYSTEMS, YCSBBench, print_paper_comparison, \
    run_ycsb

FRACTIONS = (0.0, 0.2, 0.5, 1.0)


def test_fig7_distributed_fraction_sweep(benchmark):
    def run():
        table = {}
        for system in ALL_SYSTEMS:
            table[system] = []
            for fraction in FRACTIONS:
                _, result = run_ycsb(YCSBBench(
                    system=system, workload="mrmw",
                    distributed_fraction=fraction))
                table[system].append(result.throughput)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = [[system] + [table[system][i] for i in range(len(FRACTIONS))]
            for system in ALL_SYSTEMS]
    print_paper_comparison(
        "Fig 7 — MRMW throughput vs % multi-shard txns (uniform)",
        ["system"] + [f"{int(f * 100)}%" for f in FRACTIONS], rows,
        notes="Paper: Eris tracks NT-UR within ~10% across the sweep;\n"
              "layered baselines fall away as coordination per txn grows.")

    for i in range(len(FRACTIONS)):
        # Eris tracks the NT-UR ceiling at every point.
        assert table["eris"][i] > 0.8 * table["ntur"][i]
        # And clearly outruns the layered designs.
        assert table["eris"][i] > 1.8 * table["lockstore"][i]
        assert table["eris"][i] > 1.8 * table["tapir"][i]
    # NT-UR itself declines with more two-shard ops.
    assert table["ntur"][-1] < table["ntur"][0]
