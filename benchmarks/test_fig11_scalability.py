"""Figure 11 — throughput scalability with the number of shards.

Paper: MRMW, 20% distributed, Zipf 0.5, shard count swept 1..15. Eris
scales nearly linearly because multi-sequencing delivers each message
only to its participants. Eris-OUM — the total-global-sequencing
strawman of §5.1 — delivers every message to every server and does not
scale.
"""

import pytest

from bench_common import YCSBBench, print_paper_comparison, run_ycsb

SHARDS = (1, 2, 4, 6)
SYSTEMS = ("eris", "eris-oum", "ntur", "lockstore")


def test_fig11_shard_scalability(benchmark):
    def run():
        table = {}
        for system in SYSTEMS:
            table[system] = []
            for n_shards in SHARDS:
                clients = 90 * n_shards  # keep each point saturated
                _, result = run_ycsb(YCSBBench(
                    system=system, workload="mrmw",
                    distributed_fraction=0.2, zipf_theta=0.5,
                    n_shards=n_shards, n_clients=clients))
                table[system].append(result.throughput)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = [[system] + list(table[system]) for system in SYSTEMS]
    print_paper_comparison(
        "Fig 11 — throughput vs number of shards (MRMW, 20% dist.)",
        ["system"] + [f"{s} shards" for s in SHARDS], rows,
        notes="Paper: Eris scales nearly perfectly; Eris-OUM (global "
              "sequencing) does not, since every server receives every "
              "message.")

    def scaling(system):
        return table[system][-1] / table[system][0]

    ideal = SHARDS[-1] / SHARDS[0]
    assert scaling("eris") > 0.6 * ideal       # near-linear
    assert scaling("eris-oum") < 0.5 * scaling("eris")   # flat-ish
    # At the largest deployment Eris dwarfs the strawman.
    assert table["eris"][-1] > 2 * table["eris-oum"][-1]
