"""Figure 13 — SRW throughput as the simulated packet drop rate grows.

Paper: drop rates 0.001%..10%. At 1% loss Eris only loses ~10% of its
throughput — replicas detect drops instantly from sequence numbers and
usually recover from same-shard peers without the FC. TAPIR degrades
badly (replica state divergence forces its slow path). At 10% Eris
falls below Granola.
"""

import pytest

from bench_common import YCSBBench, print_paper_comparison, run_ycsb

DROP_RATES = (0.0, 1e-4, 1e-3, 1e-2, 5e-2)
SYSTEMS = ("eris", "granola", "tapir", "lockstore", "ntur")


def test_fig13_drop_rate_sweep(benchmark):
    def run():
        table = {}
        recoveries = {}
        for system in SYSTEMS:
            table[system] = []
            for rate in DROP_RATES:
                cluster, result = run_ycsb(YCSBBench(
                    system=system, workload="srw", drop_rate=rate,
                    n_clients=150, drain=20e-3))
                table[system].append(result.throughput)
                if system == "eris":
                    recoveries[rate] = sum(
                        r.drops_recovered_from_peer
                        for reps in cluster.replicas.values()
                        for r in reps)
        return table, recoveries

    table, recoveries = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = []
    for system in SYSTEMS:
        base = table[system][0]
        rows.append([system] + [table[system][i] / base
                                for i in range(len(DROP_RATES))])
    print_paper_comparison(
        "Fig 13 — SRW normalized throughput vs packet drop rate",
        ["system"] + [f"{r * 100:g}%" for r in DROP_RATES], rows,
        notes=f"Eris peer recoveries per rate: {recoveries}\n"
              "Paper: Eris loses ~10% at 1% loss; TAPIR degrades "
              "hardest (slow-path consensus).")

    def normalized(system, i):
        return table[system][i] / table[system][0]

    one_percent = DROP_RATES.index(1e-2)
    # Eris degrades modestly at 1% loss and recovers drops from peers.
    assert normalized("eris", one_percent) > 0.6
    assert recoveries[1e-2] > 0
    # Up to 1% loss Eris holds at least even with TAPIR and clearly
    # beats the layered VR systems. (At the top rate the paper itself
    # reports Eris degrading heavily — below Granola at 10% — so no
    # ordering is asserted there.)
    for i in range(1, one_percent + 1):
        assert normalized("eris", i) >= normalized("tapir", i) - 0.05
        assert normalized("eris", i) >= normalized("lockstore", i) - 0.05
    # Heavy loss hurts everyone.
    assert normalized("eris", -1) < 0.9
