#!/usr/bin/env python
"""Simulator hot-path microbenchmarks — the repo's pinned perf trajectory.

Measures the layers every protocol and baseline sits on:

* ``event_loop_dispatch`` — schedule+dispatch rate of the discrete-event
  kernel (events/s). One event ≈ one packet hop or timer arm, so this
  bounds everything above it.
* ``timer_restart``       — re-arm rate of restartable timers
  (``Timer.start`` on an armed timer), the retransmission-timer churn
  path that used to pollute the heap with cancelled entries.
* ``network_fanout``      — sequencer-style ``Network.fan_out`` rate
  (per-recipient packet copies/s) through the fabric fast path.
* ``fig6_e2e``            — the Figure 6 Eris saturation point
  (220 closed-loop clients, YCSB+T SRW): end-to-end committed txn/s of
  *simulated* time (deterministic, machine-independent) plus the
  wall-clock events/s the simulator sustained while producing it.

Results are written to ``BENCH_micro.json`` and ``BENCH_fig6.json`` at
the repo root. Committing those files pins the baseline: ``--check``
re-measures and fails (exit 1) on a >20% wall-clock regression against
the committed values, or on *any* change to the simulated fig6
throughput — the latter is deterministic, so a change means behaviour
changed, not the machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_micro.py          # re-pin
    PYTHONPATH=src python benchmarks/bench_micro.py --check  # gate
    PYTHONPATH=src python benchmarks/bench_micro.py --quick  # CI-sized

Wall-clock rates are only comparable on similar hardware; the CI bench
job is therefore non-gating (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if True:  # keep import block after sys.path fix-up
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.net.message import GroupcastHeader, Packet          # noqa: E402
from repro.net.network import NetConfig, Network               # noqa: E402
from repro.net.endpoint import Node                            # noqa: E402
from repro.sim.event_loop import EventLoop                     # noqa: E402
from repro.sim.process import Timer                            # noqa: E402

MICRO_PATH = os.path.join(REPO_ROOT, "BENCH_micro.json")
FIG6_PATH = os.path.join(REPO_ROOT, "BENCH_fig6.json")

#: Wall-clock tolerance for --check (machine noise); simulated-time
#: metrics are deterministic and checked exactly.
REGRESSION_TOLERANCE = 0.20


# -- microbenchmarks -------------------------------------------------------

def bench_event_loop_dispatch(n_events: int) -> float:
    """Schedule+dispatch rate (events/s) of the bare kernel."""
    loop = EventLoop()
    fn = lambda: None  # noqa: E731 - minimal callback, measures the loop
    chunk = 10_000
    done = 0
    t0 = time.perf_counter()
    while done < n_events:
        for i in range(chunk):
            loop.schedule(1e-6 * i, fn)
        loop.run_until_idle()
        done += chunk
    return n_events / (time.perf_counter() - t0)


def bench_timer_restart(n_timers: int, rounds: int) -> tuple[float, int]:
    """Re-arm rate of armed timers; returns (restarts/s, final heap size).

    The heap size is the anti-pollution check: before the ``reschedule``
    primitive every restart leaked one cancelled entry until it drained.
    """
    loop = EventLoop()
    timers = [Timer(loop, 1.0, lambda: None) for _ in range(n_timers)]
    t0 = time.perf_counter()
    for _ in range(rounds):
        for timer in timers:
            timer.start()
    rate = (n_timers * rounds) / (time.perf_counter() - t0)
    return rate, len(loop._heap)


class _Sink(Node):
    def handle(self, src, message, packet):  # absorb anything
        pass


def bench_network_fanout(n_rounds: int, n_receivers: int = 3) -> float:
    """Per-recipient copy+transmit rate through Network.fan_out."""
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    receivers = tuple(_Sink(f"r{i}", net).address for i in range(n_receivers))
    packet = Packet(src="s", dst=None, payload={"op": "w", "k": 1},
                    groupcast=GroupcastHeader((0,)))
    # Periodic drains keep the heap from growing into a different
    # (colder) size regime than real runs.
    drain_every = 20_000 // n_receivers
    t0 = time.perf_counter()
    for i in range(n_rounds):
        net.fan_out(packet, receivers)
        if i % drain_every == drain_every - 1:
            loop.run_until_idle()
    loop.run_until_idle()
    return (n_rounds * n_receivers) / (time.perf_counter() - t0)


def _codec_corpus() -> list:
    """Representative protocol packets: a sequenced txn request, a
    single TxnReply, a coalesced reply batch, and a SyncLog segment —
    the frames that dominate the wire in normal-case operation."""
    from repro.core.log import LogEntry, SlotId, TxnRecord
    from repro.core.messages import (
        IndependentTxnRequest,
        SyncLog,
        TxnReply,
        TxnReplyBatch,
    )
    from repro.core.transaction import IndependentTransaction, TxnId
    from repro.net.message import MultiStamp

    txn = IndependentTransaction(
        txn_id=TxnId(client="client-7", seq=42),
        proc="rmw", args={"keys": ("k101", "k202"), "delta": 1},
        participants=(0, 1), read_keys=frozenset({"k101"}),
        write_keys=frozenset({"k202"}))
    stamp = MultiStamp(epoch=1, stamps=((0, 117), (1, 93)))
    req = Packet(src="client-7", dst="eris-r0.0",
                 payload=IndependentTxnRequest(txn),
                 groupcast=GroupcastHeader((0, 1)), multistamp=stamp,
                 sequenced=True, trace_id=12345)
    reply = TxnReply(txn_id=txn.txn_id, txn_index=117, view_num=0,
                     epoch_num=1, shard=0, replica_index=2, is_dl=True,
                     committed=True, result={"k101": 7})
    rep = Packet(src="eris-r0.2", dst="client-7", payload=reply)
    batch = TxnReplyBatch(replies=tuple(
        TxnReply(txn_id=TxnId(client="client-7", seq=40 + i),
                 txn_index=110 + i, view_num=0, epoch_num=1, shard=0,
                 replica_index=2, is_dl=True, committed=True,
                 result={"k101": i})
        for i in range(8)))
    repbatch = Packet(src="eris-r0.2", dst="client-7", payload=batch)
    entries = tuple(
        LogEntry(index=i, slot=SlotId(shard=0, epoch=1, seq=100 + i),
                 kind="txn",
                 record=TxnRecord(txn=txn, multistamp=stamp))
        for i in range(16))
    synclog = Packet(src="eris-r0.0", dst="eris-r0.1",
                     payload=SyncLog(shard=0, view_num=0, epoch_num=1,
                                     from_index=100, entries=entries,
                                     commit_upto=99))
    return [("req", req), ("rep", rep), ("repbatch", repbatch),
            ("synclog", synclog)]


def bench_codec_roundtrip(n_reps: int) -> tuple[float, float]:
    """Encode+decode rate (packets/s) for EWC1 and EWC2 on the corpus.

    The two wires are measured *interleaved* per repetition with
    best-of-``n_reps`` slices per (packet, wire): load drift then hits
    both formats equally instead of biasing whichever ran second, which
    matters because the gating quantity is their ratio. The aggregate
    is time-weighted across the corpus (sum of per-packet best times),
    i.e. the rate of round-tripping the whole mix."""
    from repro.runtime.codec import decode_packet, encode_packet
    corpus = _codec_corpus()
    inner = 200
    best: dict[tuple[str, str], float] = {}
    for _ in range(n_reps):
        for name, packet in corpus:
            for wire in ("ewc1", "ewc2"):
                t0 = time.perf_counter()
                for _ in range(inner):
                    decode_packet(encode_packet(packet, wire))
                dt = time.perf_counter() - t0
                key = (name, wire)
                if key not in best or dt < best[key]:
                    best[key] = dt
    n = inner * len(corpus)
    total1 = sum(dt for (_, wire), dt in best.items() if wire == "ewc1")
    total2 = sum(dt for (_, wire), dt in best.items() if wire == "ewc2")
    return n / total1, n / total2


def bench_datagram_batch(n_rounds: int, frames_per: int = 16) -> float:
    """EWCB container pack+unpack rate (frames/s): encode a burst of
    reply frames once, then round-trip the container."""
    from repro.runtime.codec import (
        decode_datagram,
        encode_datagram,
        encode_packet,
    )
    rep = next(p for name, p in _codec_corpus() if name == "rep")
    frames = [encode_packet(rep, "ewc2") for _ in range(frames_per)]
    t0 = time.perf_counter()
    for _ in range(n_rounds):
        decode_datagram(encode_datagram(frames))
    return (n_rounds * frames_per) / (time.perf_counter() - t0)


def bench_fig6_e2e() -> dict:
    """The Fig 6 Eris saturation point; simulated txn/s is deterministic."""
    from bench_common import YCSBBench, run_ycsb
    t0 = time.perf_counter()
    cluster, result = run_ycsb(YCSBBench(system="eris", workload="srw",
                                         n_clients=220))
    wall = time.perf_counter() - t0
    return {
        "throughput_txn_s": result.throughput,
        "committed": result.committed,
        "aborted": result.aborted,
        "n_clients": result.n_clients,
        "events_processed": cluster.loop.events_processed,
        "wall_seconds": round(wall, 3),
        "sim_events_per_wall_second": round(
            cluster.loop.events_processed / wall),
    }


# -- harness ---------------------------------------------------------------

def measure(quick: bool) -> tuple[dict, dict]:
    scale = 0.2 if quick else 1.0
    dispatch = bench_event_loop_dispatch(int(300_000 * scale))
    restarts, heap_after = bench_timer_restart(1000, int(200 * scale))
    fanout = bench_network_fanout(int(100_000 * scale))
    codec1, codec2 = bench_codec_roundtrip(3 if quick else 8)
    datagram = bench_datagram_batch(int(20_000 * scale))
    fig6 = bench_fig6_e2e()
    micro = {
        "schema": 1,
        "note": "wall-clock rates; comparable only on similar hardware",
        "benchmarks": {
            "event_loop_dispatch": {"value": round(dispatch),
                                    "unit": "events/s"},
            "timer_restart": {"value": round(restarts), "unit": "restarts/s",
                              "heap_entries_after": heap_after},
            "network_fanout": {"value": round(fanout), "unit": "packets/s"},
            "codec_ewc1_roundtrip": {"value": round(codec1),
                                     "unit": "packets/s"},
            "codec_ewc2_roundtrip": {"value": round(codec2),
                                     "unit": "packets/s",
                                     "speedup_vs_ewc1":
                                         round(codec2 / codec1, 2)},
            "datagram_batch16": {"value": round(datagram),
                                 "unit": "frames/s"},
        },
        # Pre-optimisation rates measured with this same harness on the
        # same machine that pinned this file (perf-trajectory record;
        # the pre-optimisation timer_restart run also left 200,000
        # cancelled entries in the heap where the current one leaves
        # one live entry per timer).
        "reference_pre_optimization": {
            "event_loop_dispatch": 553807,
            "timer_restart": 725784,
            "network_fanout": 200926,
        },
    }
    return micro, fig6


def check(micro: dict, fig6: dict) -> list[str]:
    """Compare a fresh measurement against the committed baselines."""
    failures: list[str] = []
    try:
        with open(MICRO_PATH) as f:
            base_micro = json.load(f)
        with open(FIG6_PATH) as f:
            base_fig6 = json.load(f)
    except FileNotFoundError as exc:
        return [f"missing committed baseline: {exc}"]

    for name, entry in base_micro["benchmarks"].items():
        baseline = entry["value"]
        current = micro["benchmarks"][name]["value"]
        floor = baseline * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if current >= floor else "REGRESSION"
        print(f"  {name:22s} {current:>12,} vs baseline {baseline:>12,}  "
              f"[{status}]")
        if current < floor:
            failures.append(
                f"{name}: {current:,} < {floor:,.0f} "
                f"(>{REGRESSION_TOLERANCE:.0%} below baseline {baseline:,})")

    # EWC2 must beat EWC1 by >= 2x on the message corpus. The pinned
    # ratio is checked exactly (it was measured once, on the pinning
    # machine, with the interleaved harness); the live re-measure gets
    # the usual machine-noise tolerance below that line.
    base_ewc2 = base_micro["benchmarks"].get("codec_ewc2_roundtrip")
    if base_ewc2 is not None:
        pinned_ratio = base_ewc2.get("speedup_vs_ewc1", 0.0)
        cur_ratio = micro["benchmarks"]["codec_ewc2_roundtrip"][
            "speedup_vs_ewc1"]
        ratio_floor = 2.0 * (1.0 - REGRESSION_TOLERANCE)
        ok = pinned_ratio >= 2.0 and cur_ratio >= ratio_floor
        print(f"  {'ewc2_speedup':22s} {cur_ratio:>11,.2f}x vs pinned "
              f"{pinned_ratio:>11,.2f}x  [{'ok' if ok else 'REGRESSION'}]")
        if pinned_ratio < 2.0:
            failures.append(
                f"pinned EWC2 speedup {pinned_ratio}x < 2.0x — re-pin "
                "after fixing the codec, not the baseline")
        if cur_ratio < ratio_floor:
            failures.append(
                f"measured EWC2 speedup {cur_ratio}x < {ratio_floor}x "
                "(2x requirement minus machine tolerance)")

    base_tp = base_fig6["throughput_txn_s"]
    cur_tp = fig6["throughput_txn_s"]
    print(f"  {'fig6_throughput':22s} {cur_tp:>12,.0f} vs baseline "
          f"{base_tp:>12,.0f}  "
          f"[{'ok' if cur_tp >= base_tp * 0.999 else 'REGRESSION'}]")
    if cur_tp < base_tp * 0.999:  # deterministic; tolerance is float-only
        failures.append(
            f"fig6 throughput {cur_tp:,.0f} fell below baseline "
            f"{base_tp:,.0f} (simulated time — this is a behaviour "
            "change, not machine noise)")
    if fig6["committed"] != base_fig6["committed"]:
        failures.append(
            f"fig6 committed count changed: {fig6['committed']} != "
            f"{base_fig6['committed']} (determinism drift)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulator hot-path microbenchmarks")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH_*.json "
                             "instead of overwriting them")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized iteration counts")
    parser.add_argument("--no-udp", action="store_true",
                        help="skip the real-socket UDP benchmarks "
                             "(bench_udp.py / BENCH_udp.json)")
    args = parser.parse_args(argv)

    print("running microbenchmarks"
          + (" (quick)" if args.quick else "") + " ...")
    micro, fig6 = measure(args.quick)
    for name, entry in micro["benchmarks"].items():
        print(f"  {name:22s} {entry['value']:>12,} {entry['unit']}")
    print(f"  {'fig6_throughput':22s} {fig6['throughput_txn_s']:>12,.0f} "
          f"txn/s (simulated; {fig6['committed']} committed, "
          f"{fig6['wall_seconds']}s wall)")
    udp = None
    if not args.no_udp:
        import bench_udp
        print("running UDP benchmarks"
              + (" (quick)" if args.quick else "") + " ...")
        udp = bench_udp.measure_udp(args.quick)
        bench_udp.print_udp(udp)

    if args.check:
        print("checking against committed baselines ...")
        failures = check(micro, fig6)
        if udp is not None:
            failures += bench_udp.check_udp(udp)
        if failures:
            print("PERF CHECK FAILED:")
            for failure in failures:
                print("  -", failure)
            return 1
        print("perf check ok")
        return 0

    with open(MICRO_PATH, "w") as f:
        json.dump(micro, f, indent=2, sort_keys=True)
        f.write("\n")
    with open(FIG6_PATH, "w") as f:
        json.dump(fig6, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {MICRO_PATH} and {FIG6_PATH}")
    if udp is not None:
        with open(bench_udp.UDP_PATH, "w") as f:
            json.dump(udp, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {bench_udp.UDP_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
