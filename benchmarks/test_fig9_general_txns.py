"""Figure 9 — MRMW vs CRMW throughput (20% distributed, Zipf 0.5).

Paper: Eris loses only a modest ~28% going from independent (MRMW) to
general (CRMW) transactions — much of which is fundamental (NT-UR also
drops, since data must move between shards). Granola loses >50% because
it switches to its locking mode. Lock-Store and TAPIR run the same
protocol for both workloads, so their MRMW and CRMW throughputs match.
"""

import pytest

from bench_common import YCSBBench, print_paper_comparison, run_ycsb

SYSTEMS = ("eris", "granola", "tapir", "lockstore", "ntur")


def test_fig9_mrmw_vs_crmw(benchmark):
    def run():
        table = {}
        for system in SYSTEMS:
            mrmw = run_ycsb(YCSBBench(system=system, workload="mrmw",
                                      distributed_fraction=0.2,
                                      zipf_theta=0.5))[1].throughput
            crmw = run_ycsb(YCSBBench(system=system, workload="crmw",
                                      distributed_fraction=0.2,
                                      zipf_theta=0.5))[1].throughput
            table[system] = (mrmw, crmw)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = [[system, mrmw, crmw, f"{(1 - crmw / mrmw) * 100:.0f}%"]
            for system, (mrmw, crmw) in table.items()]
    print_paper_comparison(
        "Fig 9 — MRMW vs CRMW throughput (20% distributed, Zipf 0.5)",
        ["system", "MRMW txn/s", "CRMW txn/s", "drop"], rows,
        notes="Paper: Eris drops ~28%; Granola >50% (locking mode); "
              "Lock-Store/TAPIR identical across the two workloads.")

    eris_drop = 1 - table["eris"][1] / table["eris"][0]
    granola_drop = 1 - table["granola"][1] / table["granola"][0]
    assert eris_drop < 0.45                      # modest
    assert granola_drop > eris_drop              # Granola hurts more
    assert granola_drop > 0.35                   # >50% in the paper
    # Lock-Store/TAPIR: same protocol, same ballpark performance.
    for system in ("lockstore", "tapir"):
        mrmw, crmw = table[system]
        assert crmw == pytest.approx(mrmw, rel=0.35)
    # Eris still leads everything on CRMW.
    for system in ("granola", "tapir", "lockstore"):
        assert table["eris"][1] > table[system][1]
