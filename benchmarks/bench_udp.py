#!/usr/bin/env python
"""Real-socket benchmarks: the UDP fast path and the smoke throughput.

Pins the wall-clock performance facts the multi-process backend's
design rests on:

* ``recvmsg_into_drain``   — datagrams/s received into one preallocated
  buffer (the worker runtime's reader fast path) vs ``recvfrom``'s
  allocate-per-datagram baseline. The ratio justifies the buffer reuse.
* ``egress_flush_batch16`` — frames/s through one ``sendto`` per EWCB
  datagram of 16 packed frames vs one ``sendto`` per frame. The ratio
  is the syscall amortization the per-destination egress queues buy.
* ``udpsmoke_single``      — committed txn/s of the single-process
  loopback smoke run (whole stack in one event loop).
* ``udpsmoke_mp``          — committed txn/s of the same workload as a
  process-per-node cluster (launcher, port-map bootstrap, 11 OS
  processes, state-collection RPC).

Results are written to ``BENCH_udp.json`` at the repo root;
``bench_micro.py --check`` re-measures and gates on them with a wide
tolerance (real sockets + scheduler noise; these are sanity floors,
not tight perf pins). Standalone usage::

    PYTHONPATH=src python benchmarks/bench_udp.py          # re-pin
    PYTHONPATH=src python benchmarks/bench_udp.py --check  # gate
    PYTHONPATH=src python benchmarks/bench_udp.py --quick  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if True:  # keep import block after sys.path fix-up
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

UDP_PATH = os.path.join(REPO_ROOT, "BENCH_udp.json")

#: Wall-clock tolerance for --check. Deliberately wider than the
#: simulator microbench tolerance: these numbers cross the kernel UDP
#: stack and the OS scheduler, so run-to-run noise is large. The gate
#: catches order-of-magnitude regressions (a lost fast path), not
#: percent-level drift.
UDP_TOLERANCE = 0.60


def _socket_pair() -> tuple[socket.socket, socket.socket, tuple]:
    rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    rx.bind(("127.0.0.1", 0))
    rx.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 21)
    tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    return rx, tx, rx.getsockname()


def bench_recvmsg_into(n_datagrams: int) -> tuple[float, float]:
    """(recvmsg_into rate, recvfrom rate) in datagrams/s.

    Send/drain in small bursts so the kernel queue never overflows;
    both variants pay the identical send cost, so the difference is
    purely the receive path (buffer reuse vs per-datagram allocation).
    """
    payload = b"x" * 256
    burst = 32
    rates = []
    for variant in ("into", "from"):
        rx, tx, addr = _socket_pair()
        buf = bytearray(65536)
        try:
            t0 = time.perf_counter()
            for _ in range(n_datagrams // burst):
                for _ in range(burst):
                    tx.sendto(payload, addr)
                for _ in range(burst):
                    if variant == "into":
                        rx.recvmsg_into([buf])
                    else:
                        rx.recvfrom(65536)
            rates.append(n_datagrams / (time.perf_counter() - t0))
        finally:
            rx.close()
            tx.close()
    return rates[0], rates[1]


def bench_egress_flush(n_frames: int,
                       frames_per: int = 16) -> tuple[float, float]:
    """(batched rate, per-frame rate) in frames/s.

    Batched: one ``sendto`` ships an EWCB datagram of ``frames_per``
    packed frames (the egress-queue flush path). Per-frame: one
    ``sendto`` per frame. The receiver drains inline either way so the
    kernel queue stays bounded.
    """
    from repro.net.message import Packet
    from repro.runtime.codec import encode_datagram, encode_packet

    frame = encode_packet(
        Packet(src="a", dst="b", payload=("reply", 7, True)), "ewc2")
    frames = [frame] * frames_per
    packed = encode_datagram(frames)
    rounds = n_frames // frames_per
    rates = []
    for variant in ("batched", "per-frame"):
        rx, tx, addr = _socket_pair()
        buf = bytearray(65536)
        try:
            t0 = time.perf_counter()
            for _ in range(rounds):
                if variant == "batched":
                    tx.sendto(packed, addr)
                    rx.recvmsg_into([buf])
                else:
                    for data in frames:
                        tx.sendto(data, addr)
                    for _ in range(frames_per):
                        rx.recvmsg_into([buf])
            rates.append((rounds * frames_per)
                         / (time.perf_counter() - t0))
        finally:
            rx.close()
            tx.close()
    return rates[0], rates[1]


def bench_udpsmoke(processes: str, min_commits: int) -> dict:
    """Committed txn/s of the smoke workload, single or per-node."""
    if processes == "per-node":
        import tempfile
        from repro.harness.mp_smoke import run_udp_smoke_mp
        result = run_udp_smoke_mp(
            min_commits=min_commits, timeout=120.0,
            run_dir=tempfile.mkdtemp(prefix="bench-udp-mp-"))
    else:
        from repro.harness.udp_smoke import run_udp_smoke
        result = run_udp_smoke(min_commits=min_commits, timeout=120.0,
                               recorder_path=os.devnull)
    return {
        "txn_s": round(result.committed / result.wall_seconds),
        "committed": result.committed,
        "wall_seconds": round(result.wall_seconds, 3),
        "processes": result.processes,
    }


def measure_udp(quick: bool) -> dict:
    scale = 0.2 if quick else 1.0
    into, fromrate = bench_recvmsg_into(int(200_000 * scale))
    batched, perframe = bench_egress_flush(int(160_000 * scale))
    single = bench_udpsmoke("single", int(300 * scale))
    mp = bench_udpsmoke("per-node", int(200 * scale))
    return {
        "schema": 1,
        "note": "wall-clock rates over real loopback sockets; "
                "comparable only on similar hardware",
        "benchmarks": {
            "recvmsg_into_drain": {
                "value": round(into), "unit": "datagrams/s",
                "recvfrom_baseline": round(fromrate),
            },
            "egress_flush_batch16": {
                "value": round(batched), "unit": "frames/s",
                "per_frame_baseline": round(perframe),
                "speedup_vs_per_frame": round(batched / perframe, 2),
            },
            "udpsmoke_single": {
                "value": single["txn_s"], "unit": "txn/s",
                **{k: v for k, v in single.items() if k != "txn_s"},
            },
            "udpsmoke_mp": {
                "value": mp["txn_s"], "unit": "txn/s",
                **{k: v for k, v in mp.items() if k != "txn_s"},
            },
        },
    }


def check_udp(current: dict) -> list[str]:
    """Compare a fresh measurement against the committed baseline."""
    failures: list[str] = []
    try:
        with open(UDP_PATH) as f:
            base = json.load(f)
    except FileNotFoundError as exc:
        return [f"missing committed baseline: {exc}"]
    for name, entry in base["benchmarks"].items():
        baseline = entry["value"]
        cur = current["benchmarks"][name]["value"]
        floor = baseline * (1.0 - UDP_TOLERANCE)
        status = "ok" if cur >= floor else "REGRESSION"
        print(f"  {name:22s} {cur:>12,} vs baseline {baseline:>12,}  "
              f"[{status}]")
        if cur < floor:
            failures.append(
                f"{name}: {cur:,} < {floor:,.0f} "
                f"(>{UDP_TOLERANCE:.0%} below baseline {baseline:,})")
    # The egress batching must actually amortize syscalls: the packed
    # path may never fall behind per-frame sends.
    ratio = current["benchmarks"]["egress_flush_batch16"][
        "speedup_vs_per_frame"]
    print(f"  {'egress_batch_speedup':22s} {ratio:>11,.2f}x "
          f"[{'ok' if ratio >= 1.0 else 'REGRESSION'}]")
    if ratio < 1.0:
        failures.append(
            f"egress batching slower than per-frame sends "
            f"({ratio}x) — the flush path lost its amortization")
    return failures


def print_udp(current: dict) -> None:
    for name, entry in current["benchmarks"].items():
        print(f"  {name:22s} {entry['value']:>12,} {entry['unit']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Real-socket UDP benchmarks")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH_udp.json "
                             "instead of overwriting it")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized iteration counts")
    args = parser.parse_args(argv)

    print("running UDP benchmarks"
          + (" (quick)" if args.quick else "") + " ...")
    current = measure_udp(args.quick)
    print_udp(current)
    if args.check:
        print("checking against committed baseline ...")
        failures = check_udp(current)
        if failures:
            print("PERF CHECK FAILED:")
            for failure in failures:
                print("  -", failure)
            return 1
        print("perf check ok")
        return 0
    with open(UDP_PATH, "w") as f:
        json.dump(current, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {UDP_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
