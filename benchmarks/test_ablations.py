"""Ablation benchmarks for design choices called out in DESIGN.md.

Not figures from the paper — these quantify individual design decisions:

1. **Lock-Store one-phase commit** — the paper's Lock-Store runs full
   2PC for every transaction; enabling the standard single-shard
   one-phase shortcut shows how much of its gap to Eris is protocol
   rounds vs. replication.
2. **Sequencer deployment** — Eris end-to-end throughput/latency under
   the in-switch, middlebox, and end-host sequencer profiles (§5.4's
   deployment options).
3. **Drop-detection grace period** — the delay between observing a
   sequence gap and starting recovery trades spurious recoveries (too
   eager) against added latency for real drops (too lazy).
"""

import pytest

from bench_common import YCSBBench, print_paper_comparison, run_ycsb
from repro.core.replica import ErisConfig


def test_ablation_lockstore_one_phase(benchmark):
    def run():
        base = run_ycsb(YCSBBench(system="lockstore",
                                  workload="srw"))[1].throughput
        fast = run_ycsb(YCSBBench(
            system="lockstore", workload="srw",
            config_overrides={"lockstore_one_phase": True}))[1].throughput
        return base, fast

    base, fast = benchmark.pedantic(run, iterations=1, rounds=1)
    print_paper_comparison(
        "Ablation — Lock-Store one-phase commit (SRW)",
        ["variant", "txn/s"],
        [["full 2PC (paper)", base], ["one-phase single-shard", fast],
         ["speedup", f"{fast / base:.2f}x"]])
    assert fast > 1.3 * base


def test_ablation_sequencer_profiles(benchmark):
    def run():
        out = {}
        for profile in ("in-switch", "middlebox", "endhost"):
            _, result = run_ycsb(YCSBBench(
                system="eris", workload="srw", n_clients=150,
                config_overrides={"sequencer_profile": profile}))
            out[profile] = (result.throughput, result.mean_latency)
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [[name, tput, lat * 1e6] for name, (tput, lat) in out.items()]
    print_paper_comparison(
        "Ablation — Eris under different sequencer deployments (§5.4)",
        ["profile", "txn/s", "mean us"], rows)
    # Latency strictly orders by the profile's added delay.
    assert out["in-switch"][1] < out["middlebox"][1] < out["endhost"][1]


def test_ablation_drop_detection_delay(benchmark):
    def run():
        out = {}
        for delay in (0.0, 100e-6, 2e-3):
            cluster, result = run_ycsb(YCSBBench(
                system="eris", workload="srw", drop_rate=5e-3,
                n_clients=120, drain=20e-3,
                config_overrides={
                    "eris": ErisConfig(drop_detection_delay=delay)}))
            recoveries = sum(r.drops_recovered_from_peer
                             + r.drops_escalated_to_fc
                             for reps in cluster.replicas.values()
                             for r in reps)
            out[delay] = (result.throughput, recoveries)
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [[f"{delay * 1e6:g} us", tput, recoveries]
            for delay, (tput, recoveries) in out.items()]
    print_paper_comparison(
        "Ablation — drop-detection grace period (0.5% loss)",
        ["grace", "txn/s", "recovery actions"], rows,
        notes="Too-eager recovery wastes work on reordered packets; "
              "too-lazy recovery stalls the delivery queue.")
    # An overly long grace period costs throughput under real loss.
    assert out[2e-3][0] < out[100e-6][0] * 1.05
