"""Figure 12 — TPC-C new-order throughput (10% distributed).

Paper: 15 warehouses, H-Store partitioning, all five TPC-C transactions
expressed as independent transactions. Eris reaches 221K new-order
txns/s — within 3% of NT-UR and 2.75x / 6.38x / 7.6x over Granola /
TAPIR / Lock-Store, which run with locking and undo logging.
"""

import pytest

from bench_common import print_paper_comparison, run_tpcc

SYSTEMS = ("eris", "granola", "tapir", "lockstore", "ntur")
PAPER_RATIO_OVER_ERIS = {"granola": 2.75, "tapir": 6.38, "lockstore": 7.6}


def test_fig12_tpcc_new_order_throughput(benchmark):
    def run():
        return {system: run_tpcc(system)[1] for system in SYSTEMS}

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = [[system, results[system].throughput,
             results[system].mean_latency * 1e6,
             results[system].aborted]
            for system in SYSTEMS]
    print_paper_comparison(
        "Fig 12 — TPC-C new-order throughput (10% distributed)",
        ["system", "new-order/s", "mean us", "aborted"], rows)

    tput = {system: results[system].throughput for system in SYSTEMS}
    ratio_rows = [[f"eris / {system}",
                   f"{PAPER_RATIO_OVER_ERIS[system]:.2f}x",
                   f"{tput['eris'] / tput[system]:.2f}x"]
                  for system in ("granola", "tapir", "lockstore")]
    ratio_rows.append(["ntur / eris", "~1.03x",
                       f"{tput['ntur'] / tput['eris']:.2f}x"])
    print_paper_comparison("Fig 12 — ratios (paper vs measured)",
                           ["ratio", "paper", "measured"], ratio_rows)

    # Shape: Eris ~ NT-UR; clear multiples over the layered systems.
    assert tput["eris"] > 0.8 * tput["ntur"]
    assert tput["eris"] > 1.8 * tput["granola"]
    assert tput["eris"] > 2.2 * tput["tapir"]
    assert tput["eris"] > 2.5 * tput["lockstore"]
    # The 1% invalid-item aborts show up but stay marginal.
    assert results["eris"].aborted < 0.05 * results["eris"].committed
