"""Figure 6 — latency vs. throughput, YCSB+T SRW, uniform keys.

Paper: Eris reaches 1.26M txn/s — within 10% of NT-UR, 2.5x over
Granola, 2.9x over TAPIR, 4.5x over Lock-Store — with 48–72% lower
latency than the other replicated systems.

We sweep closed-loop client counts per system and report the
latency/throughput curve plus the saturation ratios.
"""

import pytest

from bench_common import ALL_SYSTEMS, YCSBBench, print_paper_comparison, \
    run_ycsb

CLIENT_SWEEP = (20, 80, 220)
PAPER_SPEEDUP_OVER_ERIS = {  # Eris throughput / system throughput
    "granola": 2.5, "tapir": 2.9, "lockstore": 4.5, "ntur": 0.9,
}


def test_fig6_latency_vs_throughput(benchmark):
    def run():
        curves = {}
        for system in ALL_SYSTEMS:
            curves[system] = []
            for n_clients in CLIENT_SWEEP:
                _, result = run_ycsb(YCSBBench(system=system,
                                               workload="srw",
                                               n_clients=n_clients))
                curves[system].append(result)
        return curves

    curves = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = []
    for system, results in curves.items():
        for result in results:
            rows.append([system, result.n_clients,
                         result.throughput,
                         result.mean_latency * 1e6,
                         result.p99_latency * 1e6])
    print_paper_comparison(
        "Fig 6 — SRW latency vs throughput (uniform keys)",
        ["system", "clients", "txn/s", "mean us", "p99 us"], rows)

    peak = {system: max(r.throughput for r in results)
            for system, results in curves.items()}
    ratio_rows = [[system,
                   f"{PAPER_SPEEDUP_OVER_ERIS[system]:.1f}x",
                   f"{peak['eris'] / peak[system]:.2f}x"]
                  for system in ("granola", "tapir", "lockstore")]
    ratio_rows.append(["ntur (ceiling)", "within 10%",
                       f"{peak['eris'] / peak['ntur']:.2f}x"])
    print_paper_comparison(
        "Fig 6 — Eris speedup at saturation (paper vs measured)",
        ["vs system", "paper", "measured"], ratio_rows)

    # Shape assertions (loose): ordering and rough factors hold.
    assert peak["eris"] > 0.85 * peak["ntur"]          # within ~10-15%
    assert peak["eris"] > 2.0 * peak["granola"]
    assert peak["eris"] > 2.2 * peak["tapir"]
    assert peak["eris"] > 3.5 * peak["lockstore"]
    # Latency: Eris stays below the replicated baselines at saturation.
    eris_lat = curves["eris"][-1].mean_latency
    for system in ("granola", "tapir", "lockstore"):
        assert eris_lat < curves[system][-1].mean_latency
