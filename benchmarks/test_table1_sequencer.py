"""Table 1 — sequencer implementations: throughput and latency.

Paper: middlebox (Cavium Octeon) 6.19M packets/s at 13.64 us;
end-host (userspace Linux, 24-core Xeon) 1.61M packets/s at 24.60 us.

We drive each simulated sequencer profile with an open-loop packet
stream above its capacity and measure sustained stamping throughput and
the per-packet latency at light load.
"""

import pytest

from repro.net.endpoint import Node
from repro.net.network import NetConfig, Network
from repro.net.sequencer import MultiSequencer, SequencerProfile
from repro.sim.event_loop import EventLoop

from bench_common import print_paper_comparison

PAPER = {
    "middlebox": (6.19e6, 13.64e-6),
    "endhost": (1.61e6, 24.60e-6),
}


class _Sink(Node):
    def __init__(self, address, network):
        super().__init__(address, network)
        self.arrivals = []

    def deliver(self, packet):
        self.arrivals.append(self.loop.now)


def measure_profile(profile: SequencerProfile, offered_rate: float,
                    duration: float = 5e-3):
    loop = EventLoop()
    net = Network(loop, NetConfig(base_latency=0.0, jitter=0.0))
    sink = _Sink("sink", net)
    net.groups.define(0, ["sink"])
    sequencer = MultiSequencer("seq", net, profile)
    net.install_sequencer_route("seq")
    sender = _Sink("sender", net)
    interval = 1.0 / offered_rate
    count = int(duration / interval)
    for i in range(count):
        loop.schedule(i * interval, sender.send_groupcast, (0,), i)
    loop.run_until_idle(max_events=20_000_000)
    throughput = sequencer.packets_stamped / loop.now
    return throughput


def measure_latency(profile: SequencerProfile) -> float:
    loop = EventLoop()
    net = Network(loop, NetConfig(base_latency=0.0, jitter=0.0))
    sink = _Sink("sink", net)
    net.groups.define(0, ["sink"])
    MultiSequencer("seq", net, profile)
    net.install_sequencer_route("seq")
    sender = _Sink("sender", net)
    sent_at = loop.now
    sender.send_groupcast((0,), "probe")
    loop.run_until_idle()
    return sink.arrivals[0] - sent_at


@pytest.mark.parametrize("name", ["middlebox", "endhost"])
def test_table1_sequencer_capacity(benchmark, name):
    profile = getattr(SequencerProfile, name)()
    paper_tput, paper_lat = PAPER[name]

    def run():
        tput = measure_profile(profile, offered_rate=paper_tput * 1.5)
        latency = measure_latency(profile)
        return tput, latency

    tput, latency = benchmark.pedantic(run, iterations=1, rounds=1)
    print_paper_comparison(
        f"Table 1 — {name} sequencer",
        ["metric", "paper", "measured"],
        [["throughput (pkt/s)", paper_tput, tput],
         ["latency (us)", paper_lat * 1e6, latency * 1e6]])
    # Sustained throughput saturates at the profile's capacity.
    assert tput == pytest.approx(paper_tput, rel=0.05)
    assert latency == pytest.approx(paper_lat, rel=0.05)


def test_table1_in_switch_outpaces_both(benchmark):
    def run():
        return measure_profile(SequencerProfile.in_switch(),
                               offered_rate=10e6, duration=2e-3)

    tput = benchmark.pedantic(run, iterations=1, rounds=1)
    print_paper_comparison(
        "Table 1 (extension) — in-switch sequencer",
        ["metric", "paper", "measured"],
        [["throughput (pkt/s)", "line rate", tput]])
    assert tput > PAPER["middlebox"][0]
