"""Figure 10 — normalized CRMW throughput vs. Zipf exponent.

Paper: general transactions under growing contention. Eris degrades
gracefully — its fast independent-transaction substrate keeps the lock
window short, and in-network sequencing rules out deadlock — while
Granola's locking mode (and the OCC/2PL baselines) collapse.
"""

import pytest

from bench_common import YCSBBench, print_paper_comparison, run_ycsb

SYSTEMS = ("eris", "granola", "tapir", "lockstore", "ntur")
ZIPFS = (0.5, 0.75, 0.9)


def test_fig10_crmw_contention(benchmark):
    def run():
        table = {}
        for system in SYSTEMS:
            table[system] = []
            for theta in ZIPFS:
                _, result = run_ycsb(YCSBBench(
                    system=system, workload="crmw",
                    distributed_fraction=0.2, zipf_theta=theta))
                table[system].append(result.throughput)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = []
    for system in SYSTEMS:
        base = table[system][0]
        rows.append([system] + [table[system][i] / base
                                for i in range(len(ZIPFS))])
    print_paper_comparison(
        "Fig 10 — CRMW normalized throughput vs Zipf (20% distributed)",
        ["system"] + [str(z) for z in ZIPFS], rows,
        notes="Paper: Eris degrades gracefully under contention; "
              "Granola's locking mode collapses.")

    last = len(ZIPFS) - 1

    def normalized(system):
        return table[system][last] / table[system][0]

    assert normalized("eris") > 0.55
    assert normalized("eris") > normalized("granola")
    assert normalized("eris") > normalized("tapir")
    # Absolute: Eris leads every other transactional system at max skew.
    for system in ("granola", "tapir", "lockstore"):
        assert table["eris"][last] > table[system][last]
