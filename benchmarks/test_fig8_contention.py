"""Figure 8 — normalized MRMW throughput vs. Zipf exponent.

Paper: MRMW with 20% distributed transactions under increasing key
skew. TAPIR and Lock-Store collapse (frequent lock conflicts and OCC
aborts); Eris and Granola process independent transactions without
locks and stay flat; at the most skewed point Eris outperforms
Lock-Store by 35x and TAPIR by 25.6x.
"""

import pytest

from bench_common import ALL_SYSTEMS, YCSBBench, print_paper_comparison, \
    run_ycsb

ZIPFS = (0.5, 0.75, 0.9, 1.0)


def test_fig8_contention_sweep(benchmark):
    def run():
        table = {}
        for system in ALL_SYSTEMS:
            table[system] = []
            for theta in ZIPFS:
                _, result = run_ycsb(YCSBBench(
                    system=system, workload="mrmw",
                    distributed_fraction=0.2, zipf_theta=theta))
                table[system].append(result.throughput)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = []
    for system in ALL_SYSTEMS:
        base = table[system][0]
        rows.append([system] + [table[system][i] / base
                                for i in range(len(ZIPFS))])
    print_paper_comparison(
        "Fig 8 — MRMW normalized throughput vs Zipf exponent "
        "(20% distributed)",
        ["system"] + [str(z) for z in ZIPFS], rows,
        notes="Paper: Eris/Granola/NT-UR stay flat; TAPIR and "
              "Lock-Store collapse under contention.")

    def normalized(system, i):
        return table[system][i] / table[system][0]

    last = len(ZIPFS) - 1
    # Lock-free systems stay within ~25% of their uncontended rate.
    for system in ("eris", "granola", "ntur"):
        assert normalized(system, last) > 0.75
    # Locking/OCC systems collapse.
    assert normalized("lockstore", last) < 0.6
    assert normalized("tapir", last) < 0.35
    # Absolute gap at max skew (paper: 35x / 25.6x; we assert > 8x).
    assert table["eris"][last] > 8 * table["lockstore"][last]
    assert table["eris"][last] > 8 * table["tapir"][last]
