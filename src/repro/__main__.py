"""``python -m repro``: the experiment CLI.

Thin alias for :mod:`repro.harness.cli` so the documented entry point
is short: ``python -m repro udpsmoke --trace run.jsonl`` etc.
"""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
