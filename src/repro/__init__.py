"""Eris: coordination-free consistent transactions using in-network
concurrency control — a Python reproduction of Li, Michael & Ports
(SOSP 2017).

Quick tour (see README.md for a full walkthrough):

>>> from repro.harness import ClusterConfig, build_cluster, run_experiment
>>> from repro.workloads import Partitioner, YCSBConfig, YCSBWorkload
>>> # build an Eris deployment, load YCSB keys, drive closed-loop load

Subpackages:

- ``repro.sim`` — discrete-event simulation kernel
- ``repro.net`` — groupcast, multi-sequencing, SDN controller (§5)
- ``repro.store`` — KV store, stored procedures, locks, undo logs
- ``repro.replication`` — Viewstamped Replication for the baselines
- ``repro.core`` — the Eris protocol (§6) and general transactions (§7)
- ``repro.baselines`` — NT-UR, Lock-Store, TAPIR, Granola (§8)
- ``repro.workloads`` — YCSB+T and TPC-C generators
- ``repro.harness`` — cluster builder, experiments, checkers, faults
"""

__version__ = "1.0.0"

from repro.errors import (
    ConfigurationError,
    ExperimentError,
    InvariantViolation,
    LockConflict,
    NetworkError,
    ReproError,
    SimulationError,
    TransactionAborted,
    UnknownProcedureError,
)

__all__ = [
    "__version__",
    "ConfigurationError",
    "ExperimentError",
    "InvariantViolation",
    "LockConflict",
    "NetworkError",
    "ReproError",
    "SimulationError",
    "TransactionAborted",
    "UnknownProcedureError",
]
