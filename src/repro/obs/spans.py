"""Transaction-lifecycle spans and critical-path latency attribution.

The causal trace (:mod:`repro.obs.trace`) is a flat event stream; this
module reconstructs **per-transaction span trees** from it and answers
the evaluation question the paper's §8 turns on: *where does commit
latency go?* Eris's claim is that whole phases vanish from the commit
critical path (no lock hold time, no coordinator round trips); the span
layer makes the remaining phases measurable per run.

One committed independent transaction decomposes into a telescoping
chain of phases whose durations **sum exactly to the end-to-end client
latency** (each phase ends where the next begins):

====================  =====================================================
phase                 interval
====================  =====================================================
``retry_wait``        first submission -> the submission attempt whose
                      request produced the first counted reply (zero
                      unless the client had to retransmit)
``client_to_seq``     request injection -> fabric arrival at the sequencer
``sequencer``         sequencer arrival -> multi-stamp written (includes
                      traversal latency, queue wait — reported separately
                      from the ``queue_delay`` stamp field — and service)
``seq_to_replica``    multi-stamp -> fabric arrival of the fan-out copy at
                      the first-replying replica
``replica_apply``     request arrival at that replica -> its REPLY is sent
                      (inbox wait, log append, execution on the DL)
``reply_to_client``   REPLY sent -> REPLY arrives at the client
``quorum_wait``       first reply arrival -> view-consistent quorums from
                      every participant complete (waiting for the slowest
                      quorum member, including the DL's execution reply)
====================  =====================================================

The decomposition follows the *fastest* reply chain so every phase is
non-negative and the telescoping is exact; the **critical path** — the
same chain measured through the *slowest counted quorum member*, the
reply whose arrival completed the quorum — is attributed separately,
since that is the path a latency optimisation must shorten.

Failure handling is part of the tree: dropped fan-out copies become
zero-width ``dropped`` markers, §6.3 drop recoveries become ``recovery``
spans (with an ``fc_escalation`` child when peer recovery fails and the
Failure Coordinator's FIND-TXN protocol decides the slot's fate), and
client retransmissions appear as extra ``attempt`` subtrees.

Three consumers sit on top:

- :func:`analyze_trace` / :func:`analyze_spans` — per-phase latency
  breakdown (means exact; p50/p99 via per-participant-group
  :class:`~repro.obs.metrics.Histogram`\\ s folded with ``merge()``),
  rendered by ``repro.harness.cli trace analyze``;
- :func:`export_chrome_trace` — Chrome trace-event / Perfetto JSON, one
  process per transaction with one track per node, for timeline viewing;
- ``benchmarks/bench_latency_breakdown.py`` — pins the breakdown of a
  reference run as a ``BENCH_latency_breakdown.json`` artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.obs.metrics import Histogram
from repro.obs.trace import _as_dicts

#: Telescoping phase order (sums to end-to-end latency per transaction).
PHASES = (
    "retry_wait",
    "client_to_seq",
    "sequencer",
    "seq_to_replica",
    "replica_apply",
    "reply_to_client",
    "quorum_wait",
)

#: Histogram geometry for phase aggregation: 100 ns floor with ~9%
#: bucket growth keeps p50/p99 tight at microsecond scale while staying
#: O(1) memory per phase.
_HIST_SCALE = 1e-7
_HIST_GROWTH = 2 ** 0.125


def _phase_histogram() -> Histogram:
    return Histogram(scale=_HIST_SCALE, growth=_HIST_GROWTH)


@dataclass
class Span:
    """One named interval observed at one node. ``children`` nest."""

    name: str
    start: float
    end: float
    node: str
    cause: int = -1
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with ``name``."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        out = {"name": self.name, "start": self.start, "end": self.end,
               "node": self.node}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


@dataclass
class _Reply:
    """One replica's REPLY and (if not dropped) its client arrival."""

    ts: float
    node: str
    cause: int
    shard: int
    is_dl: bool
    arrival: Optional[float] = None   # deliver ts at the client


@dataclass
class TxnSpan:
    """Root of one transaction's span tree."""

    txn: str
    client: str
    start: float
    end: Optional[float]              # txn_complete ts; None if unfinished
    committed: Optional[bool]
    timedout: bool
    retries: int
    participants: tuple[int, ...]
    attempts: list[Span] = field(default_factory=list)
    recoveries: list[Span] = field(default_factory=list)
    replies: list[_Reply] = field(default_factory=list)
    #: Exact telescoping phase durations (completed, quorum-reaching
    #: transactions only).
    phases: Optional[dict[str, float]] = None
    #: Same decomposition through the slowest counted quorum member.
    critical: Optional[dict[str, Any]] = None

    @property
    def complete(self) -> bool:
        return self.end is not None

    @property
    def end_to_end(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def as_span(self) -> Span:
        """The tree as a plain :class:`Span` (for export/rendering)."""
        end = self.end
        if end is None:
            ends = [a.end for a in self.attempts] + \
                   [r.end for r in self.recoveries]
            end = max(ends) if ends else self.start
        root = Span("txn", self.start, end, self.client,
                    attrs={"txn": self.txn, "committed": self.committed,
                           "timedout": self.timedout,
                           "retries": self.retries,
                           "participants": list(self.participants)},
                    children=list(self.attempts) + list(self.recoveries))
        if self.phases is not None and self.end is not None:
            first_arrival = self.end - self.phases["quorum_wait"]
            root.children.append(Span("quorum_wait", first_arrival,
                                      self.end, self.client))
        return root


@dataclass
class SpanForest:
    """Every transaction's span tree plus unattached recovery spans."""

    txns: list[TxnSpan]
    orphans: list[Span]

    @property
    def by_label(self) -> dict[str, TxnSpan]:
        return {t.txn: t for t in self.txns}

    def completed(self) -> list[TxnSpan]:
        return [t for t in self.txns if t.complete]

    def attributed(self) -> list[TxnSpan]:
        return [t for t in self.txns if t.phases is not None]


def _slot_key(slot) -> tuple:
    return tuple(slot)


class _Index:
    """Single-pass index of the flat event stream."""

    def __init__(self, events: list[dict[str, Any]]):
        self.submits: dict[str, list[dict]] = {}
        self.completes: dict[str, dict] = {}
        self.delivers: dict[int, list[dict]] = {}
        self.drops: dict[int, list[dict]] = {}
        self.stamps: dict[int, dict] = {}
        self.replies: dict[str, list[dict]] = {}
        self.slot_txn: dict[tuple, str] = {}
        self.applies: dict[tuple[str, str], float] = {}
        self.recovery_start: dict[tuple, dict] = {}
        self.recovery_peer: dict[tuple, dict] = {}
        self.recovery_fc: dict[tuple, dict] = {}
        self.fc_resolution: dict[tuple, dict] = {}
        for event in events:
            kind = event["kind"]
            if kind == "txn_submit":
                self.submits.setdefault(event["txn"], []).append(event)
            elif kind == "txn_complete":
                self.completes.setdefault(event["txn"], event)
            elif kind == "deliver":
                self.delivers.setdefault(event["cause"], []).append(event)
            elif kind == "drop":
                self.drops.setdefault(event["cause"], []).append(event)
            elif kind == "stamp":
                self.stamps.setdefault(event["cause"], event)
            elif kind == "reply":
                self.replies.setdefault(event["txn"], []).append(event)
            elif kind == "log_append":
                txn = event.get("txn")
                if txn is not None:
                    self.slot_txn.setdefault(_slot_key(event["slot"]), txn)
            elif kind == "apply":
                txn = event.get("txn")
                if txn is not None:
                    self.applies.setdefault((txn, event["node"]),
                                            event["ts"])
            elif kind == "recovery_start":
                key = (event["node"], _slot_key(event["slot"]))
                self.recovery_start.setdefault(key, event)
            elif kind == "recovery_peer":
                key = (event["node"], _slot_key(event["slot"]))
                self.recovery_peer.setdefault(key, event)
            elif kind == "recovery_fc":
                key = (event["node"], _slot_key(event["slot"]))
                self.recovery_fc.setdefault(key, event)
            elif kind in ("fc_found", "fc_dropped"):
                self.fc_resolution.setdefault(_slot_key(event["slot"]),
                                              event)


def build_spans(events: Iterable) -> SpanForest:
    """Reconstruct per-transaction span trees from a causal trace.

    Accepts :class:`~repro.obs.trace.TraceEvent` objects or flat dicts
    (the :func:`~repro.obs.trace.load_trace` output) interchangeably.
    Transactions appear in first-submission order. Event streams from
    adversarial runs — drops, retransmissions, FC escalations, view
    changes — still produce a well-formed forest: whatever segment of a
    transaction's lifecycle was observed becomes its subtree, and
    recovery activity that cannot be tied to a known transaction is
    returned in ``orphans`` rather than lost.
    """
    flat = _as_dicts(events)
    index = _Index(flat)
    txns: list[TxnSpan] = []
    for label, submits in index.submits.items():
        txns.append(_build_txn(label, submits, index))
    consumed: set[tuple] = set()
    for txn in txns:
        _attach_recoveries(txn, index, consumed)
        _attribute(txn, index)
    orphans = [_recovery_span(key, index)
               for key in index.recovery_start if key not in consumed]
    return SpanForest(txns=txns, orphans=orphans)


def _build_txn(label: str, submits: list[dict], index: _Index) -> TxnSpan:
    complete = index.completes.get(label)
    first = submits[0]
    txn = TxnSpan(
        txn=label,
        client=first["node"],
        start=first["ts"],
        end=None if complete is None else complete["ts"],
        committed=None if complete is None else complete.get("committed"),
        timedout=bool(complete and complete.get("timedout")),
        retries=(complete or submits[-1]).get("retries",
                                              submits[-1].get("retry", 0)),
        participants=tuple(first.get("participants", ())),
    )
    for submit in submits:
        txn.attempts.append(_build_attempt(submit, index))
    for reply in index.replies.get(label, ()):
        arrivals = [d["ts"] for d in index.delivers.get(reply["cause"], ())
                    if d["node"] == txn.client]
        txn.replies.append(_Reply(
            ts=reply["ts"], node=reply["node"], cause=reply["cause"],
            shard=reply.get("shard", -1), is_dl=bool(reply.get("is_dl")),
            arrival=min(arrivals) if arrivals else None))
    txn.replies.sort(key=lambda r: r.ts)
    return txn


def _build_attempt(submit: dict, index: _Index) -> Span:
    cause = submit["cause"]
    stamp = index.stamps.get(cause)
    seq_node = stamp["node"] if stamp is not None else None
    children: list[Span] = []
    replica_arrivals: dict[str, float] = {}
    seq_arrival: Optional[float] = None
    for deliver in index.delivers.get(cause, ()):
        if deliver["node"] == seq_node:
            seq_arrival = deliver["ts"]
        else:
            replica_arrivals.setdefault(deliver["node"], deliver["ts"])
    if seq_arrival is not None:
        children.append(Span("client_to_seq", submit["ts"], seq_arrival,
                             seq_node, cause=cause))
        if stamp is not None:
            attrs = {}
            if "queue_delay" in stamp:
                attrs["queue_delay"] = stamp["queue_delay"]
            children.append(Span("sequencer", seq_arrival, stamp["ts"],
                                 seq_node, cause=cause, attrs=attrs))
    for node, arrival in sorted(replica_arrivals.items()):
        start = stamp["ts"] if stamp is not None else arrival
        children.append(Span("fan_out_copy", start, arrival, node,
                             cause=cause,
                             children=[Span("seq_to_replica", start,
                                            arrival, node, cause=cause)]))
    for drop in index.drops.get(cause, ()):
        children.append(Span("dropped", drop["ts"], drop["ts"],
                             drop["node"], cause=cause,
                             attrs={"reason": drop.get("reason")}))
    end = max([c.end for c in children], default=submit["ts"])
    return Span("attempt", submit["ts"], end, submit["node"], cause=cause,
                attrs={"retry": submit.get("retry", 0)},
                children=children)


def _recovery_span(key: tuple, index: _Index) -> Span:
    node, slot = key
    start = index.recovery_start[key]
    peer = index.recovery_peer.get(key)
    fc = index.recovery_fc.get(key)
    resolution = index.fc_resolution.get(slot)
    children: list[Span] = []
    if peer is not None:
        end = peer["ts"]
        outcome = "peer"
    elif fc is not None:
        end = resolution["ts"] if resolution is not None else fc["ts"]
        outcome = resolution["kind"] if resolution is not None \
            else "unresolved"
        children.append(Span("fc_escalation", fc["ts"], end,
                             resolution["node"] if resolution else node,
                             attrs={"outcome": outcome}))
    else:
        end = start["ts"]
        outcome = "unresolved"
    return Span("recovery", start["ts"], end, node,
                attrs={"slot": list(slot), "outcome": outcome},
                children=children)


def _attach_recoveries(txn: TxnSpan, index: _Index,
                       consumed: set[tuple]) -> None:
    for key in index.recovery_start:
        label = index.slot_txn.get(key[1])
        if label == txn.txn:
            txn.recoveries.append(_recovery_span(key, index))
            consumed.add(key)


def _chain_phases(txn: TxnSpan, reply: _Reply,
                  index: _Index) -> Optional[dict[str, float]]:
    """Telescoping decomposition through one reply's request chain, or
    ``None`` when the chain was not fully observed (e.g. the replica
    learned the transaction via sync or recovery, not a direct copy)."""
    if reply.arrival is None:
        return None
    best = None
    for attempt in txn.attempts:
        stamp = index.stamps.get(attempt.cause)
        if stamp is None:
            continue
        seq_node = stamp["node"]
        seq_arrival = None
        replica_arrival = None
        for deliver in index.delivers.get(attempt.cause, ()):
            if deliver["node"] == seq_node:
                seq_arrival = deliver["ts"]
            elif deliver["node"] == reply.node \
                    and deliver["ts"] <= reply.ts:
                replica_arrival = deliver["ts"] if replica_arrival is None \
                    else min(replica_arrival, deliver["ts"])
        if seq_arrival is None or replica_arrival is None:
            continue
        candidate = (attempt.start, seq_arrival, stamp["ts"],
                     replica_arrival)
        if best is None or candidate[0] > best[0]:
            best = candidate  # latest attempt that explains the reply
    if best is None:
        return None
    submit_ts, seq_arrival, stamp_ts, replica_arrival = best
    return {
        "retry_wait": submit_ts - txn.start,
        "client_to_seq": seq_arrival - submit_ts,
        "sequencer": stamp_ts - seq_arrival,
        "seq_to_replica": replica_arrival - stamp_ts,
        "replica_apply": reply.ts - replica_arrival,
        "reply_to_client": reply.arrival - reply.ts,
        "quorum_wait": txn.end - reply.arrival,
    }


def _attribute(txn: TxnSpan, index: _Index) -> None:
    """Fill ``txn.phases`` (fastest chain, exactly additive) and
    ``txn.critical`` (slowest counted quorum member)."""
    if txn.end is None or txn.timedout:
        return
    counted = [r for r in txn.replies
               if r.arrival is not None and r.arrival <= txn.end]
    if not counted:
        return
    for reply in sorted(counted, key=lambda r: r.arrival):
        phases = _chain_phases(txn, reply, index)
        if phases is not None:
            txn.phases = phases
            break
    critical_reply = max(counted, key=lambda r: r.arrival)
    critical = {
        "node": critical_reply.node,
        "shard": critical_reply.shard,
        "is_dl": critical_reply.is_dl,
        "lag": critical_reply.arrival - counted[0].arrival
        if len(counted) > 1 else 0.0,
    }
    critical_phases = _chain_phases(txn, critical_reply, index)
    if critical_phases is not None:
        critical["phases"] = critical_phases
    txn.critical = critical


# -- aggregation -----------------------------------------------------------

def _stats(hist: Histogram) -> dict[str, float]:
    if hist.count == 0:
        return {"count": 0}
    return {
        "count": hist.count,
        "mean_us": hist.mean() * 1e6,
        "p50_us": hist.percentile(50) * 1e6,
        "p99_us": hist.percentile(99) * 1e6,
        "max_us": hist.max * 1e6,
    }


def analyze_spans(forest: SpanForest) -> dict[str, Any]:
    """Per-phase latency attribution for one trace's span forest.

    Phase and end-to-end distributions are aggregated per participant
    group (each distinct ``participants`` tuple gets its own
    :class:`Histogram` set) and folded into the global distributions
    with :meth:`Histogram.merge`, so the per-group split is available
    at no extra cost. Means are exact (histogram totals, not buckets);
    per transaction the phase durations sum exactly to the end-to-end
    latency, so mean phase sum equals mean end-to-end up to float
    rounding — ``consistency.residual_us`` reports the difference.
    """
    groups: dict[str, dict[str, Histogram]] = {}
    group_e2e: dict[str, Histogram] = {}
    critical_hists = {name: _phase_histogram() for name in PHASES}
    queue = _phase_histogram()
    lag = _phase_histogram()
    critical_members: dict[str, int] = {}
    phase_total = {name: 0.0 for name in PHASES}
    e2e_total = 0.0
    attributed = 0
    for txn in forest.txns:
        if txn.phases is None:
            continue
        attributed += 1
        key = "+".join(f"shard{p}" for p in txn.participants) or "unknown"
        hists = groups.setdefault(
            key, {name: _phase_histogram() for name in PHASES})
        group_e2e.setdefault(key, _phase_histogram()) \
                 .record(txn.end_to_end)
        e2e_total += txn.end_to_end
        for name in PHASES:
            hists[name].record(max(0.0, txn.phases[name]))
            phase_total[name] += txn.phases[name]
        if txn.critical is not None:
            member = f"{txn.critical['node']}"
            critical_members[member] = critical_members.get(member, 0) + 1
            lag.record(max(0.0, txn.critical["lag"]))
            for name, value in txn.critical.get("phases", {}).items():
                critical_hists[name].record(max(0.0, value))
    for txn in forest.txns:
        for attempt in txn.attempts:
            for span in attempt.find("sequencer"):
                delay = span.attrs.get("queue_delay")
                if delay is not None:
                    queue.record(delay)
    phases: dict[str, Histogram] = {name: _phase_histogram()
                                    for name in PHASES}
    e2e = _phase_histogram()
    for key, hists in groups.items():
        for name in PHASES:
            phases[name].merge(hists[name])
        e2e.merge(group_e2e[key])
    recoveries = [r for t in forest.txns for r in t.recoveries] \
        + list(forest.orphans)
    fc_escalated = sum(1 for r in recoveries if r.children)
    out: dict[str, Any] = {
        "txns": {
            "total": len(forest.txns),
            "completed": len(forest.completed()),
            "committed": sum(1 for t in forest.txns if t.committed),
            "timedout": sum(1 for t in forest.txns if t.timedout),
            "attributed": attributed,
        },
        "end_to_end": _stats(e2e),
        "phases": {
            name: dict(_stats(phases[name]),
                       share=(phase_total[name] / e2e_total
                              if e2e_total else 0.0))
            for name in PHASES
        },
        "phase_order": list(PHASES),
        "by_group": {
            key: {"count": group_e2e[key].count,
                  "e2e_mean_us": group_e2e[key].mean() * 1e6}
            for key in sorted(groups)
        },
        "consistency": {
            "mean_phase_sum_us": (sum(phase_total.values()) / attributed
                                  * 1e6) if attributed else 0.0,
            "mean_e2e_us": (e2e_total / attributed * 1e6)
            if attributed else 0.0,
        },
        "critical_path": {
            "phases": {name: _stats(critical_hists[name])
                       for name in PHASES},
            "by_member": dict(sorted(critical_members.items(),
                                     key=lambda kv: -kv[1])),
            "quorum_lag": _stats(lag),
        },
        "sequencer_queue": _stats(queue),
        "recovery": {
            "count": len(recoveries),
            "fc_escalated": fc_escalated,
            "orphaned": len(forest.orphans),
        },
    }
    consistency = out["consistency"]
    consistency["residual_us"] = (consistency["mean_phase_sum_us"]
                                  - consistency["mean_e2e_us"])
    return out


def analyze_trace(events: Iterable) -> dict[str, Any]:
    """``analyze_spans(build_spans(events))`` — the one-call entry
    point used by the CLI and the benchmark hook."""
    return analyze_spans(build_spans(events))


# -- Chrome trace-event / Perfetto export ----------------------------------

def export_chrome_trace(forest: SpanForest, path: str) -> int:
    """Write the forest in Chrome trace-event JSON (Perfetto-openable).

    Each transaction is one "process" (pid) whose tracks (tids) are the
    nodes its spans were observed at, so one transaction's lifecycle —
    request to the sequencer, fan-out copies, per-replica processing,
    replies, recoveries — reads left-to-right on one screen. Timestamps
    are microseconds of simulated time. Returns the event count; the
    write is temp-file + rename, like :meth:`Tracer.export`.
    """
    trace_events: list[dict[str, Any]] = []

    def emit(span: Span, pid: int, tids: dict[str, int]) -> None:
        tid = tids.setdefault(span.node, len(tids))
        event = {
            "name": span.name,
            "cat": "txn",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": max(0.0, span.duration) * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if span.attrs:
            event["args"] = dict(span.attrs)
        trace_events.append(event)
        for child in span.children:
            emit(child, pid, tids)

    def name_process(pid: int, label: str, tids: dict[str, int]) -> None:
        trace_events.append({"name": "process_name", "ph": "M", "pid": pid,
                             "args": {"name": label}})
        for node, tid in tids.items():
            trace_events.append({"name": "thread_name", "ph": "M",
                                 "pid": pid, "tid": tid,
                                 "args": {"name": node}})

    for pid, txn in enumerate(forest.txns, start=1):
        tids: dict[str, int] = {txn.client: 0}
        emit(txn.as_span(), pid, tids)
        name_process(pid, txn.txn, tids)
    if forest.orphans:
        tids = {}
        for orphan in forest.orphans:
            emit(orphan, 0, tids)
        name_process(0, "unattached recoveries", tids)

    payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(trace_events)
