"""Causal message tracing for simulated runs.

A :class:`Tracer` attached to the network (``network.tracer``) observes
every packet at its injection point and assigns it a **causal id**; the
id travels with the packet through the sequencer and every per-recipient
fan-out copy (``Packet.copy_to`` propagates it), so all events of one
logical message share one id and a trace consumer can reconstruct the
full lifecycle: send → stamp → deliver (per recipient) / drop.

Protocol layers add their own structured events on top — replica log
appends and applies, view changes, epoch changes, drop recovery, FC
decisions, DL synchronization — giving the correctness checkers in
:mod:`repro.harness.checkers` a first-class event stream to validate
instead of end-state spot checks.

The event schema (documented in DESIGN.md) is flat JSON with four
reserved keys — ``ts`` (simulation seconds), ``kind``, ``node``,
``cause`` (causal id, -1 when not tied to a message) — plus
kind-specific fields. ``Tracer.export`` writes JSONL;
:func:`load_trace` reads it back.

Tracing is strictly opt-in: hot paths hold a ``tracer`` reference that
is ``None`` by default and guard every hook with one ``is not None``
check, so benchmark throughput is unaffected when tracing is off.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

#: Reserved top-level keys of the flat event schema.
RESERVED_KEYS = ("ts", "kind", "node", "cause")

#: Causal-id space per process rank in a multi-process run: rank *r*
#: assigns ids in ``(r*STRIDE, (r+1)*STRIDE]``. 2**40 ids per process
#: is unreachable in practice, so merged shards are collision-free by
#: construction (and :func:`merge_trace_shards` verifies it anyway).
CAUSE_ID_STRIDE = 1 << 40


@dataclass
class TraceEvent:
    """One structured observation. ``data`` holds kind-specific fields."""

    ts: float
    kind: str
    node: str
    cause: int = -1
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out = {"ts": self.ts, "kind": self.kind, "node": self.node,
               "cause": self.cause}
        out.update(self.data)
        return out


def _payload_name(packet) -> str:
    return type(packet.payload).__name__


class Tracer:
    """Collects :class:`TraceEvent` records in trace-clock order.

    ``clock`` supplies timestamps; it must be the owning runtime's
    monotonic clock (simulated seconds on the simulator, the asyncio
    loop's clock on the UDP backend) so span phase arithmetic stays
    exact — never wall-clock ``time.time()``, which can step. Use
    :meth:`repro.runtime.interface.Runtime.attach_tracer` to get the
    binding right by construction.

    ``recorder`` mirrors every recorded event into a
    :class:`repro.obs.recorder.FlightRecorder` ring; ``retain=False``
    additionally turns off the unbounded ``events`` list so *only* the
    ring holds events — the always-on black-box configuration for long
    real-transport runs (``export``/``select``/``len`` then see an
    empty trace; the ring is dumped via the recorder instead).

    ``cause_base`` offsets the causal-id counter. A multi-process run
    gives every process a disjoint id space (rank ×
    :data:`CAUSE_ID_STRIDE`), so per-process trace shards can be merged
    into one stream without causal-id collisions — ids assigned by one
    process travel inside packets and show up in other shards, and they
    must never alias an id another process assigned independently.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 recorder: Optional[Any] = None, retain: bool = True,
                 cause_base: int = 0):
        if cause_base < 0:
            raise ValueError(f"cause_base must be >= 0: {cause_base}")
        self.clock = clock or (lambda: 0.0)
        self.recorder = recorder
        self.retain = retain
        self.cause_base = cause_base
        self.events: list[TraceEvent] = []
        self._causes = itertools.count(cause_base + 1)
        # Per-link transmit bookkeeping for reorder detection: packets
        # between one (src, dst) pair are numbered at transmit time; a
        # delivery whose number is below the link's high-water mark was
        # overtaken in flight.
        self._tx_seq: dict[int, tuple[tuple[str, str], int]] = {}
        self._link_next: dict[tuple[str, str], int] = {}
        self._link_seen: dict[tuple[str, str], int] = {}

    # -- generic recording -------------------------------------------------
    def record(self, kind: str, node: str, cause: int = -1,
               **data: Any) -> TraceEvent:
        for key in RESERVED_KEYS:
            if key in data:
                raise ValueError(f"{key!r} is a reserved trace field")
        event = TraceEvent(ts=self.clock(), kind=kind, node=node,
                           cause=cause, data=data)
        if self.retain:
            self.events.append(event)
        if self.recorder is not None:
            self.recorder.append(event)
        return event

    # -- packet lifecycle (called from repro.net.network) -------------------
    def packet_send(self, packet) -> None:
        """Logical injection: assigns the causal id."""
        if packet.trace_id is None:
            packet.trace_id = next(self._causes)
        data: dict[str, Any] = {"msg": _payload_name(packet)}
        if packet.groupcast is not None:
            data["groups"] = list(packet.groupcast.groups)
            data["sequenced"] = packet.sequenced
        else:
            data["dst"] = packet.dst
        self.record("send", packet.src, cause=packet.trace_id, **data)

    def packet_tx(self, packet) -> None:
        """Per-copy transmit bookkeeping (no event; feeds reorder
        detection at delivery time)."""
        link = (packet.src, packet.dst)
        seq = self._link_next.get(link, 0) + 1
        self._link_next[link] = seq
        self._tx_seq[packet.packet_id] = (link, seq)

    def packet_deliver(self, packet) -> None:
        cause = packet.trace_id if packet.trace_id is not None else -1
        tx = self._tx_seq.pop(packet.packet_id, None)
        if tx is not None:
            link, seq = tx
            seen = self._link_seen.get(link, 0)
            if seq < seen:
                self.record("reorder", packet.dst, cause=cause,
                            src=packet.src, overtaken_by=seen - seq)
            else:
                self._link_seen[link] = seq
        self.record("deliver", packet.dst, cause=cause,
                    src=packet.src, msg=_payload_name(packet))

    def packet_drop(self, packet, reason: str) -> None:
        cause = packet.trace_id if packet.trace_id is not None else -1
        self._tx_seq.pop(packet.packet_id, None)
        self.record("drop", packet.dst or "", cause=cause,
                    src=packet.src, msg=_payload_name(packet),
                    reason=reason)

    def sequencer_stamp(self, node: str, packet,
                        queue_delay: Optional[float] = None) -> None:
        stamp = packet.multistamp
        cause = packet.trace_id if packet.trace_id is not None else -1
        data: dict[str, Any] = {
            "epoch": stamp.epoch,
            "stamps": [[gid, seq] for gid, seq in stamp.stamps],
        }
        if queue_delay is not None:
            data["queue_delay"] = queue_delay
        # Operation class and declared write set (when the payload is a
        # transaction) feed the §6.7 fast-path checkers: they are the
        # sequencer-side ground truth a forged relaxed-path event is
        # checked against.
        txn = getattr(packet.payload, "txn", None)
        if txn is not None:
            data["txn"] = txn.txn_id.label()
            data["op_class"] = txn.op_class
            data["write_keys"] = sorted(repr(k) for k in txn.write_keys)
        self.record("stamp", node, cause=cause, **data)

    # -- export / query -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def select(self, kind: str, node: Optional[str] = None
               ) -> list[TraceEvent]:
        return [e for e in self.events
                if e.kind == kind and (node is None or e.node == node)]

    def export(self, path: str) -> int:
        """Write the trace as JSONL; returns the event count.

        The write goes through a sibling temp file renamed into place,
        so a run that crashes (or a disk that fills) mid-export never
        leaves a truncated, half-parseable JSONL behind — ``path``
        either holds the previous complete trace or the new one.
        """
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                for event in self.events:
                    handle.write(json.dumps(event.to_dict()) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(self.events)


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a JSONL trace back as a list of flat event dicts.

    A malformed line raises :class:`ValueError` naming the file and
    1-based line number, so a corrupt export is diagnosable without
    bisecting the file by hand.
    """
    events = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line: {exc}"
                ) from exc
    return events


def merge_trace_shards(paths: list[str],
                       out_path: Optional[str] = None
                       ) -> list[dict[str, Any]]:
    """Combine per-process JSONL trace shards into one stream.

    Events are sorted by timestamp (all processes of a multi-process
    run share CLOCK_MONOTONIC, so cross-shard timestamps are directly
    comparable); ties keep shard order, then within-shard order, so the
    merge is deterministic. Causal-id collision-freedom is verified:
    every ``send`` event *assigns* its causal id in the emitting
    process, so the same id assigned in two different shards means two
    processes shared an id space — a :class:`ValueError`, because the
    merged stream would silently fuse unrelated message lifecycles.

    With ``out_path`` the merged stream is also written as JSONL
    (temp-file + rename, like ``Tracer.export``), readable by every
    trace consumer — ``trace``, ``trace analyze``, the trace-backed
    §6.7 checkers.
    """
    merged: list[tuple[float, int, int, dict[str, Any]]] = []
    assigned: dict[int, str] = {}
    for shard_index, path in enumerate(paths):
        for line_index, event in enumerate(load_trace(path)):
            if "kind" not in event:   # recorder-dump header line
                continue
            if event["kind"] == "send":
                cause = event.get("cause", -1)
                if cause is not None and cause >= 0:
                    owner = assigned.get(cause)
                    if owner is not None and owner != path:
                        raise ValueError(
                            f"causal id collision: id {cause} assigned "
                            f"by both {owner} and {path} (shards were "
                            f"generated without disjoint cause_base "
                            f"id spaces)")
                    assigned[cause] = path
            merged.append((event["ts"], shard_index, line_index, event))
    merged.sort(key=lambda item: item[:3])
    events = [event for _ts, _shard, _line, event in merged]
    if out_path is not None:
        tmp = f"{out_path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                for event in events:
                    handle.write(json.dumps(event) + "\n")
            os.replace(tmp, out_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    return events


def _as_dicts(events: Iterable) -> list[dict[str, Any]]:
    """Accept TraceEvent objects or already-flat dicts uniformly.

    Non-event metadata lines (e.g. a flight-recorder dump header, which
    has no ``kind``) are dropped so every trace consumer can read a
    recorder dump exactly like a full trace export.
    """
    flat = [e.to_dict() if isinstance(e, TraceEvent) else e for e in events]
    return [e for e in flat if "kind" in e]


def summarize_trace(events: Iterable) -> dict[str, Any]:
    """Aggregate statistics of one trace: message counts, drop reasons,
    reorders, per-(epoch, group) stamp gap statistics, recovery and
    view/epoch-change activity. This is what ``repro.harness.cli
    trace`` renders."""
    flat = _as_dicts(events)
    kinds: dict[str, int] = {}
    drops: dict[str, int] = {}
    stamp_hi: dict[tuple[int, int], int] = {}   # (epoch, group) -> max seq
    stamp_n: dict[tuple[int, int], int] = {}    # (epoch, group) -> count
    for event in flat:
        kind = event["kind"]
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "drop":
            reason = event.get("reason", "unknown")
            drops[reason] = drops.get(reason, 0) + 1
        elif kind == "stamp":
            epoch = event["epoch"]
            for gid, seq in event["stamps"]:
                key = (epoch, gid)
                stamp_hi[key] = max(stamp_hi.get(key, 0), seq)
                stamp_n[key] = stamp_n.get(key, 0) + 1
    sends = kinds.get("send", 0)
    delivers = kinds.get("deliver", 0)
    dropped = kinds.get("drop", 0)
    stamp_stats = {
        f"epoch{epoch}/group{gid}": {
            "stamped": stamp_n[(epoch, gid)],
            "max_seq": hi,
            "gaps": hi - stamp_n[(epoch, gid)],
        }
        for (epoch, gid), hi in sorted(stamp_hi.items())
    }
    return {
        "events": len(flat),
        "kinds": dict(sorted(kinds.items())),
        "sends": sends,
        "delivers": delivers,
        "drops": dropped,
        "drop_reasons": dict(sorted(drops.items())),
        "drop_rate": dropped / sends if sends else 0.0,
        "reorders": kinds.get("reorder", 0),
        "stamps": stamp_stats,
        "recoveries": {
            "started": kinds.get("recovery_start", 0),
            "peer_resolved": kinds.get("recovery_peer", 0),
            "fc_escalated": kinds.get("recovery_fc", 0),
        },
        "view_changes": kinds.get("view_change_complete", 0),
        "epoch_changes": kinds.get("epoch_change_complete", 0),
    }
