"""Observability: causal tracing, transaction spans, and metrics.

- :mod:`repro.obs.trace` — :class:`Tracer` assigns causal ids to
  packets at send time and records structured protocol events
  (send/deliver/drop/reorder/stamp/apply/view-change/epoch-change/...)
  exportable as JSONL.
- :mod:`repro.obs.spans` — reconstructs per-transaction span trees
  from a trace, attributes commit latency to protocol phases along the
  critical path, and exports Chrome trace-event / Perfetto JSON.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and log-bucketed histograms keyed by (component, name).
- :mod:`repro.obs.sampler` — :class:`MetricsSampler` snapshots a
  registry periodically (on runtime timers) into a JSONL time-series.
- :mod:`repro.obs.recorder` — :class:`FlightRecorder`, an always-on
  bounded ring of recent trace events that dumps to JSONL on failure.

All strictly opt-in: with no tracer attached the simulator's hot
paths pay one ``is not None`` check per packet.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank_index,
)
from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    load_recorder_dump,
)
from repro.obs.sampler import (
    MetricsSampler,
    load_series,
    summarize_series,
)
from repro.obs.spans import (
    PHASES,
    Span,
    SpanForest,
    TxnSpan,
    analyze_spans,
    analyze_trace,
    build_spans,
    export_chrome_trace,
)
from repro.obs.trace import (
    CAUSE_ID_STRIDE,
    TraceEvent,
    Tracer,
    load_trace,
    merge_trace_shards,
    summarize_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "nearest_rank_index",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "load_recorder_dump",
    "MetricsSampler",
    "load_series",
    "summarize_series",
    "PHASES",
    "Span",
    "SpanForest",
    "TxnSpan",
    "analyze_spans",
    "analyze_trace",
    "build_spans",
    "export_chrome_trace",
    "CAUSE_ID_STRIDE",
    "TraceEvent",
    "Tracer",
    "load_trace",
    "merge_trace_shards",
    "summarize_trace",
]
