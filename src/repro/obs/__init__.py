"""Observability: causal message tracing and per-component metrics.

- :mod:`repro.obs.trace` — :class:`Tracer` assigns causal ids to
  packets at send time and records structured protocol events
  (send/deliver/drop/reorder/stamp/apply/view-change/epoch-change/...)
  exportable as JSONL.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and log-bucketed histograms keyed by (component, name).

Both are strictly opt-in: with no tracer attached the simulator's hot
paths pay one ``is not None`` check per packet.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank_index,
)
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    load_trace,
    summarize_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "nearest_rank_index",
    "TraceEvent",
    "Tracer",
    "load_trace",
    "summarize_trace",
]
