"""Flight recorder: a bounded ring of the most recent trace events.

Full causal tracing retains every event for the lifetime of a run —
exactly right for offline analysis, wrong for an always-on production
safety net: a long real-transport run would grow without bound. The
:class:`FlightRecorder` is the complement, borrowed from avionics (and
from eRPC-style datapath tracing): a fixed-capacity ring that always
holds the *last N* events and costs O(1) per append, so it can stay on
for every run. Nothing is written anywhere until something goes wrong;
when a §6.7 invariant checker fails or the harness crashes,
:meth:`FlightRecorder.dump` leaves the final window of protocol
activity on disk as JSONL — the events leading *up to* the failure,
which a post-mortem needs and which end-state inspection cannot
recover.

Wiring: a :class:`~repro.obs.trace.Tracer` accepts a ``recorder`` and
mirrors every event it records into the ring; with ``retain=False``
the tracer keeps *only* the ring (no unbounded event list), which is
the "always-on" configuration ``udpsmoke`` uses when full tracing was
not requested. ``run_all_checks`` accepts a recorder and dumps it
automatically when any invariant check raises.

Cost model: disabled (``enabled=False``) the append path is a single
attribute check and retains nothing; enabled it is one list-slot store
plus two integer updates — no allocation, no copying, regardless of
how many events have passed through.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro.obs.trace import TraceEvent

#: Default ring capacity: enough to hold several full transactions'
#: worth of packet lifecycle events on the smoke topologies while
#: staying trivially small in memory.
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Fixed-capacity ring of :class:`TraceEvent` references."""

    __slots__ = ("capacity", "enabled", "appended", "_ring", "_next")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        #: Total events ever offered while enabled (appended - retained
        #: = events that fell off the ring).
        self.appended = 0
        # Preallocated ring: append stores a reference, never grows.
        self._ring: list[Optional[TraceEvent]] = [None] * capacity
        self._next = 0

    # -- recording ---------------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        """O(1) append; a no-op retaining nothing when disabled."""
        if not self.enabled:
            return
        self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.appended += 1

    def __len__(self) -> int:
        return min(self.appended, self.capacity)

    @property
    def dropped(self) -> int:
        """Events that have fallen off the ring."""
        return max(0, self.appended - self.capacity)

    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        if self.appended < self.capacity:
            return [e for e in self._ring[:self._next] if e is not None]
        return [e for e in (self._ring[self._next:] + self._ring[:self._next])
                if e is not None]

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self.appended = 0

    # -- dumping -----------------------------------------------------------
    def dump(self, path: str, reason: str = "",
             context: Optional[dict[str, Any]] = None) -> int:
        """Write the ring as JSONL and return the event count.

        The first line is a metadata header (under the single key
        ``flight_recorder`` so :func:`~repro.obs.trace.load_trace`
        consumers can recognize and skip it); the rest is the retained
        event window in the same flat schema ``Tracer.export`` uses,
        so ``trace``/``trace analyze`` tooling reads a dump directly.
        Temp-file + rename, like the tracer's export: a crash during
        the dump never leaves a half-written file.
        """
        events = self.events()
        header: dict[str, Any] = {
            "flight_recorder": dict(
                {"reason": reason, "capacity": self.capacity,
                 "recorded": len(events), "dropped": self.dropped},
                **(context or {}))
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(header) + "\n")
                for event in events:
                    handle.write(json.dumps(event.to_dict()) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(events)


def load_recorder_dump(path: str) -> tuple[dict[str, Any], list[dict]]:
    """Read a dump back as ``(header, events)``; raises ValueError on a
    file that is not a flight-recorder dump."""
    from repro.obs.trace import load_trace

    lines = load_trace(path)
    if not lines or "flight_recorder" not in lines[0]:
        raise ValueError(f"{path}: not a flight-recorder dump "
                         "(missing header line)")
    return lines[0]["flight_recorder"], lines[1:]
