"""Periodic metrics sampling into a JSONL time-series.

A :class:`MetricsSampler` turns a :class:`~repro.obs.metrics.MetricsRegistry`
— a set of *current values* — into a *time series*: every ``interval``
seconds (driven by the owning runtime's own timer facility, so the
cadence is simulated-deterministic on the sim backend and wall-clock on
the UDP backend) it snapshots every instrument into one sample line.

Output format (documented in DESIGN.md):

- line 1 — metadata: ``{"metrics_series": {"interval": ..,
  "backend": .., "start": ..}}`` (the single wrapper key lets trace
  tooling recognize and skip it, mirroring the flight-recorder header);
- every further line — one sample:
  ``{"t": <runtime seconds>, "seq": <sample index>,
  "metrics": {component: {name: entry}}}``.

Entry shapes by instrument kind:

- **counter** / **monotone gauge** — ``{"v": total, "d": delta,
  "r": rate}`` where ``d`` is the increase since the previous sample
  (since :meth:`start` for the first) and ``r = d / dt``;
- **plain gauge** — the sampled number;
- **histogram** — the usual snapshot dict, with empty histograms
  rendered as ``{"count": 0}`` so the stream is valid JSON end to end
  (``NaN`` never appears in a series file).

Determinism: under the sim backend every field above derives from
simulated time and deterministic instrument values, so the exported
series is byte-stable across seeded reruns — pinned by
``tests/test_determinism.py``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def _sanitize_hist(snapshot: dict) -> dict:
    """An empty histogram snapshots to NaN mean/min/max/percentiles;
    JSON has no NaN, so collapse it to a bare count."""
    if snapshot.get("count", 0) == 0:
        return {"count": 0}
    return {k: v for k, v in snapshot.items()
            if not (isinstance(v, float) and math.isnan(v))}


class MetricsSampler:
    """Snapshots a registry into an in-memory series on a runtime timer.

    Lifecycle: ``start()`` captures the monotone baseline and arms the
    periodic timer; ``stop()`` disarms it and takes one final sample so
    short runs (shorter than one interval) still produce a non-empty
    series; ``export(path)`` writes JSONL atomically.
    """

    def __init__(self, runtime: Any, registry: MetricsRegistry,
                 interval: float = 0.05):
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0: {interval}")
        self.runtime = runtime
        self.registry = registry
        self.interval = interval
        self.samples: list[dict[str, Any]] = []
        self._timer: Any = None
        self._prev: dict[tuple[str, str], float] = {}
        self._prev_t: float = 0.0
        self._start_t: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Capture the delta baseline now and begin sampling."""
        if self._timer is not None:
            return
        self._start_t = self._prev_t = self.runtime.now
        self._prev = {
            (component, name): instrument.get()
            for component, name, instrument in self.registry.instruments()
            if isinstance(instrument, Counter)
            or (isinstance(instrument, Gauge) and instrument.monotone)
        }
        self._timer = self.runtime.periodic(self.interval, self.sample)
        self._timer.start()

    def stop(self) -> None:
        """Disarm the timer and take one closing sample."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        if self._start_t is not None:
            self.sample()

    # -- sampling ----------------------------------------------------------
    def sample(self) -> dict[str, Any]:
        """Take one sample immediately (also the timer callback)."""
        t = self.runtime.now
        dt = t - self._prev_t
        metrics: dict[str, dict[str, Any]] = {}
        for component, name, instrument in self.registry.instruments():
            entry: Any
            if isinstance(instrument, Histogram):
                entry = _sanitize_hist(instrument.snapshot())
            elif isinstance(instrument, Counter) or (
                    isinstance(instrument, Gauge) and instrument.monotone):
                value = instrument.get()
                prev = self._prev.get((component, name), 0.0)
                delta = value - prev
                self._prev[(component, name)] = value
                entry = {"v": value, "d": delta,
                         "r": (delta / dt) if dt > 0 else 0.0}
            else:
                entry = instrument.get()
            metrics.setdefault(component, {})[name] = entry
        self._prev_t = t
        sample = {"t": t, "seq": len(self.samples), "metrics": metrics}
        self.samples.append(sample)
        return sample

    # -- export ------------------------------------------------------------
    def export(self, path: str) -> int:
        """Write the series as JSONL (metadata line first); returns the
        sample count. Temp-file + rename, like the tracer's export."""
        meta = {"metrics_series": {
            "interval": self.interval,
            "backend": getattr(self.runtime, "backend", "unknown"),
            "start": self._start_t if self._start_t is not None else 0.0,
        }}
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(meta) + "\n")
                for sample in self.samples:
                    handle.write(json.dumps(sample) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(self.samples)


def load_series(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a series file back as ``(meta, samples)``."""
    meta: dict[str, Any] = {}
    samples: list[dict[str, Any]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed series line: {exc}"
                ) from exc
            if "metrics_series" in obj:
                meta = obj["metrics_series"]
            else:
                samples.append(obj)
    return meta, samples


def summarize_series(meta: dict[str, Any],
                     samples: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a series for the ``stats`` CLI: per (component, name),
    the final value plus — for rate-bearing entries — mean/peak rate
    across samples, and — for histograms — the final count/p50/p99.

    Returns ``{"span": {...}, "rows": [row, ...]}`` where each row is
    ``{"component", "name", "kind", ...kind fields}`` sorted by
    (component, name).
    """
    rows: dict[tuple[str, str], dict[str, Any]] = {}
    rates: dict[tuple[str, str], list[float]] = {}
    for sample in samples:
        for component, names in sample.get("metrics", {}).items():
            for name, entry in names.items():
                key = (component, name)
                if isinstance(entry, dict) and "r" in entry:
                    rows[key] = {"component": component, "name": name,
                                 "kind": "rate", "total": entry["v"]}
                    # Sample 0's "delta since start()" rate is a
                    # startup artifact on the sim backend (time has not
                    # advanced); keep it — dt>0 guards division — but
                    # note peak/mean are over per-interval rates.
                    rates.setdefault(key, []).append(entry["r"])
                elif isinstance(entry, dict):  # histogram snapshot
                    row = {"component": component, "name": name,
                           "kind": "hist", "count": entry.get("count", 0)}
                    for field in ("mean", "p50", "p99", "max"):
                        if field in entry:
                            row[field] = entry[field]
                    rows[key] = row
                else:
                    rows[key] = {"component": component, "name": name,
                                 "kind": "gauge", "last": entry}
    for key, series in rates.items():
        nonzero = [r for r in series if r > 0]
        rows[key]["rate_mean"] = (sum(nonzero) / len(nonzero)
                                  if nonzero else 0.0)
        rows[key]["rate_peak"] = max(series) if series else 0.0
    span = {
        "samples": len(samples),
        "interval": meta.get("interval"),
        "backend": meta.get("backend", "unknown"),
        "t_first": samples[0]["t"] if samples else None,
        "t_last": samples[-1]["t"] if samples else None,
    }
    return {"span": span,
            "rows": [rows[k] for k in sorted(rows)]}
