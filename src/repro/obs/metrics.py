"""Counters, gauges, and log-bucketed histograms, per component.

A :class:`MetricsRegistry` is the single place a simulation registers
everything it wants counted. Instruments are keyed by
``(component, name)`` where *component* identifies one simulated entity
("net", "seq0", "replica/eris-r0.1", "fc", "sim") and *name* is a
lowercase_underscore measurement ("packets_sent", "stamp_latency").
The naming convention is documented in DESIGN.md.

Two instrument styles coexist:

- **push** — hot paths call ``Counter.inc`` / ``Histogram.record``;
- **pull** — a :class:`Gauge` wraps a zero-argument callable and is
  sampled only when a snapshot is taken, so wiring existing plain-int
  counters (``network.packets_sent``...) into the registry costs the
  hot path nothing at all.

Histograms bucket by powers of a growth factor (default 2), which keeps
memory constant regardless of sample count while preserving
order-of-magnitude latency shape; percentiles are answered at bucket
granularity. Exact nearest-rank percentile math lives in
:func:`nearest_rank_index`, shared with
:class:`repro.sim.stats.LatencyRecorder`.
"""

from __future__ import annotations

import math
from typing import Callable, Optional


def nearest_rank_index(n: int, p: float) -> int:
    """Index of the nearest-rank percentile ``p`` in a sorted sequence
    of length ``n``.

    Pinned semantics: p=0 is the minimum (rank 1), p=100 the maximum
    (rank n), p=50 the ceil(n/2)-th smallest. ``p`` outside [0, 100]
    is a caller bug and raises.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {p}")
    if n <= 0:
        raise ValueError("empty sequence has no percentiles")
    rank = math.ceil(p / 100.0 * n)
    return min(n, max(1, rank)) - 1


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def get(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value: either set directly or pulled from a
    callable at snapshot time.

    ``monotone=True`` declares the value non-decreasing over a run — a
    counter exposed through the pull interface (``packets_sent``,
    ``events_processed``...). The metrics sampler uses the declaration
    to emit per-interval deltas and rates for such series; plain gauges
    (heap size, queue depth) are sampled as point values only.
    """

    __slots__ = ("_value", "_fn", "monotone")

    def __init__(self, fn: Optional[Callable[[], float]] = None,
                 monotone: bool = False) -> None:
        self._value = 0.0
        self._fn = fn
        self.monotone = monotone

    def set(self, value: float) -> None:
        self._value = value

    def get(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """Log-bucketed distribution of non-negative samples.

    Bucket ``i`` holds samples in ``(scale * growth**(i-1),
    scale * growth**i]``; bucket 0 holds ``[0, scale]``. With the
    default microsecond ``scale`` and growth 2, forty buckets span
    sub-microsecond to hours.
    """

    __slots__ = ("scale", "growth", "_log_growth", "buckets", "count",
                 "total", "min", "max")

    def __init__(self, scale: float = 1e-6, growth: float = 2.0) -> None:
        if scale <= 0 or growth <= 1:
            raise ValueError("need scale > 0 and growth > 1")
        self.scale = scale
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0: {value}")
        if value <= self.scale:
            index = 0
        else:
            index = math.ceil(math.log(value / self.scale)
                              / self._log_growth)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def mean(self) -> float:
        if self.count == 0:
            return math.nan
        return self.total / self.count

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram in place.

        Merging is exact (bucket counts add) but only defined between
        histograms with identical bucket geometry: a sample landing in
        bucket *i* of one must land in bucket *i* of the other, which
        requires equal ``scale`` and ``growth``. Returns ``self`` so
        per-shard histograms can be folded in a reduce chain.
        """
        if not isinstance(other, Histogram):
            raise TypeError(f"cannot merge {type(other).__name__} "
                            "into Histogram")
        if other.scale != self.scale or other.growth != self.growth:
            raise ValueError(
                "incompatible histogram geometry: "
                f"scale {self.scale} / growth {self.growth} vs "
                f"scale {other.scale} / growth {other.growth}")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    def bucket_upper(self, index: int) -> float:
        """Inclusive upper bound of bucket ``index``."""
        if index == 0:
            return self.scale
        return self.scale * self.growth ** index

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile at bucket granularity: the upper
        bound of the bucket containing the ranked sample (exact min/max
        at p=0/p=100)."""
        if self.count == 0:
            return math.nan
        if p == 0.0:
            return self.min
        if p == 100.0:
            return self.max
        target = nearest_rank_index(self.count, p) + 1  # 1-based rank
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return min(self.bucket_upper(index), self.max)
        return self.max  # unreachable; defensive

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean(),
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """All instruments of one simulation, keyed (component, name)."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, str], object] = {}

    # -- registration (get-or-create, so call sites stay declarative) ------
    def counter(self, component: str, name: str) -> Counter:
        return self._get_or_create(component, name, Counter)

    def gauge(self, component: str, name: str,
              fn: Optional[Callable[[], float]] = None,
              monotone: bool = False) -> Gauge:
        key = (component, name)
        existing = self._instruments.get(key)
        if existing is None:
            existing = Gauge(fn, monotone=monotone)
            self._instruments[key] = existing
            return existing
        # Type-check before touching the instrument: assigning ``_fn``
        # onto a non-Gauge (slots) raised AttributeError instead of the
        # intended TypeError.
        if not isinstance(existing, Gauge):
            raise TypeError(f"{key} already registered as "
                            f"{type(existing).__name__}")
        if fn is not None:
            existing._fn = fn  # re-wiring after a rebuild is allowed
        if monotone:
            existing.monotone = True
        return existing

    def histogram(self, component: str, name: str,
                  scale: float = 1e-6, growth: float = 2.0) -> Histogram:
        return self._get_or_create(component, name, lambda:
                                   Histogram(scale=scale, growth=growth))

    def _get_or_create(self, component: str, name: str, factory):
        key = (component, name)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    # -- introspection ------------------------------------------------------
    def components(self) -> list[str]:
        return sorted({component for component, _ in self._instruments})

    def instruments(self) -> list[tuple[str, str, object]]:
        """Sorted ``(component, name, instrument)`` triples — the raw
        instruments, for consumers (the metrics sampler) that need more
        than :meth:`snapshot`'s rendered values (e.g. the ``monotone``
        flag on gauges)."""
        return [(component, name, instrument)
                for (component, name), instrument
                in sorted(self._instruments.items())]

    def snapshot(self) -> dict[str, dict[str, object]]:
        """``{component: {name: value}}`` with gauges sampled now and
        histograms summarized."""
        out: dict[str, dict[str, object]] = {}
        for (component, name), instrument in sorted(self._instruments.items()):
            bucket = out.setdefault(component, {})
            if isinstance(instrument, Histogram):
                bucket[name] = instrument.snapshot()
            else:
                bucket[name] = instrument.get()
        return out
