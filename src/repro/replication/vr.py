"""Viewstamped Replication (Oki & Liskov; Liskov & Cowling 2012).

A leader-based state-machine replication protocol, equivalent to
Multi-Paxos for our purposes: the leader assigns op numbers, backups
acknowledge, an op commits once a majority (leader + f backups) holds
it, and every replica executes committed ops in log order.

The baselines embed this as a base class: a Lock-Store or Granola shard
server *is* a :class:`VRReplica` whose ``execute_op`` applies protocol
operations ("prepare txn", "commit txn", ...) to the local store.
Application code at the leader calls :meth:`replicate`; the
``on_committed`` callback fires (leader-side only) with the execution
result once the op is durable and applied.

Normal case plus the view-change sub-protocol are implemented; state
transfer for recovering replicas is out of scope (crashed baseline
replicas stay down, as in the paper's experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.net.network import Network
from repro.replication.log import ReplicatedLog, ReplicatedLogEntry


@dataclass(frozen=True)
class VRPrepare:
    view: int
    op_num: int
    op: Any
    commit_num: int


@dataclass(frozen=True)
class VRPrepareOK:
    view: int
    op_num: int
    sender: Address


@dataclass(frozen=True)
class VRCommit:
    view: int
    commit_num: int


@dataclass(frozen=True)
class VRStateRequest:
    """Backup → leader: I am missing committed entries from ``from_op``."""

    view: int
    from_op: int
    sender: Address


@dataclass(frozen=True)
class VRStateTransfer:
    """Leader → backup: the missing committed log entries."""

    view: int
    from_op: int
    ops: tuple
    commit_num: int


@dataclass(frozen=True)
class VRStartViewChange:
    view: int
    sender: Address


@dataclass(frozen=True)
class VRDoViewChange:
    view: int
    log: tuple
    last_normal_view: int
    op_num: int
    commit_num: int
    sender: Address


@dataclass(frozen=True)
class VRStartView:
    view: int
    log: tuple
    op_num: int
    commit_num: int


@dataclass
class VRConfig:
    heartbeat_interval: float = 5e-3
    view_change_timeout: float = 50e-3


class VRReplica(Node):
    """One member of a replicated shard. Subclass and implement
    :meth:`execute_op`."""

    def __init__(self, address: Address, network: Network,
                 group: list[Address], index: int,
                 config: Optional[VRConfig] = None):
        super().__init__(address, network)
        self.group = list(group)
        self.index = index
        self.vr_config = config or VRConfig()
        self.view = 0
        self.vr_status = "normal"  # normal | view-change
        self.vr_log = ReplicatedLog()
        self.commit_num = 0
        self.executed_num = 0
        self._ack_counts: dict[int, set[Address]] = {}
        self._callbacks: dict[int, Callable[[Any], None]] = {}
        self._start_view_changes: dict[int, set[Address]] = {}
        self._do_view_changes: dict[int, dict[Address, VRDoViewChange]] = {}
        self._last_normal_view = 0
        self._heartbeat = self.periodic(self.vr_config.heartbeat_interval,
                                        self._send_heartbeat)
        self._vc_timer = self.timer(self.vr_config.view_change_timeout,
                                    self._on_leader_timeout)
        if self.is_leader:
            self._heartbeat.start()
        else:
            self._vc_timer.start()

    # -- roles ------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.group)

    @property
    def f(self) -> int:
        return (self.n_replicas - 1) // 2

    @property
    def leader_address(self) -> Address:
        return self.group[self.view % self.n_replicas]

    @property
    def is_leader(self) -> bool:
        return self.leader_address == self.address

    def _others(self) -> list[Address]:
        return [a for a in self.group if a != self.address]

    # -- the app-facing API --------------------------------------------------
    def replicate(self, op: Any,
                  on_committed: Optional[Callable[[Any], None]] = None) -> None:
        """Leader-only: append ``op`` and drive it to commit. When it
        executes locally, ``on_committed(result)`` fires."""
        assert self.is_leader and self.vr_status == "normal", \
            f"replicate() on non-leader or during view change at {self.address}"
        entry = self.vr_log.append(self.view, op)
        if on_committed is not None:
            self._callbacks[entry.op_num] = on_committed
        self._ack_counts[entry.op_num] = {self.address}
        for addr in self._others():
            self.send(addr, VRPrepare(self.view, entry.op_num, op,
                                      self.commit_num))
        if self.f == 0:
            self._advance_commit(entry.op_num)

    def execute_op(self, op: Any) -> Any:
        """Apply one committed op to the application state machine.
        Runs on every replica, in log order."""
        raise NotImplementedError

    # -- normal case ----------------------------------------------------------
    def on_VRPrepare(self, src: Address, msg: VRPrepare, packet: Packet) -> None:
        if msg.view < self.view or self.vr_status != "normal":
            return
        if msg.view > self.view:
            # We missed a view change; adopt the new view lazily.
            self._enter_view(msg.view)
        self._vc_timer.restart()
        if msg.op_num <= self.vr_log.last_op_num:
            # Duplicate prepare; re-ack.
            self.send(src, VRPrepareOK(self.view, msg.op_num, self.address))
            self._apply_commit(msg.commit_num)
            return
        if msg.op_num != self.vr_log.last_op_num + 1:
            # Gap: we missed a prepare. A full VR would do state
            # transfer; retransmission by the leader's heartbeat path
            # is handled by ignoring and letting the leader resend.
            return
        self.vr_log.append(msg.view, msg.op)
        self.send(src, VRPrepareOK(self.view, msg.op_num, self.address))
        self._apply_commit(msg.commit_num)

    def on_VRPrepareOK(self, src: Address, msg: VRPrepareOK,
                       packet: Packet) -> None:
        if msg.view != self.view or not self.is_leader:
            return
        acks = self._ack_counts.get(msg.op_num)
        if acks is None:
            return
        acks.add(msg.sender)
        if len(acks) >= self.f + 1:
            self._advance_commit(msg.op_num)

    def on_VRCommit(self, src: Address, msg: VRCommit, packet: Packet) -> None:
        if msg.view < self.view or self.vr_status != "normal":
            return
        if msg.view > self.view:
            self._enter_view(msg.view)
        self._vc_timer.restart()
        if msg.commit_num > self.vr_log.last_op_num:
            # We missed committed entries entirely (prepares lost while
            # the rest of the group advanced): ask for state transfer.
            self.send(src, VRStateRequest(
                view=self.view, from_op=self.vr_log.last_op_num + 1,
                sender=self.address))
        self._apply_commit(msg.commit_num)

    def on_VRStateRequest(self, src: Address, msg: VRStateRequest,
                          packet: Packet) -> None:
        if msg.view != self.view or not self.is_leader:
            return
        ops = tuple(self.vr_log.get(op_num).op
                    for op_num in range(msg.from_op,
                                        self.commit_num + 1))
        if ops:
            self.send(src, VRStateTransfer(view=self.view,
                                           from_op=msg.from_op, ops=ops,
                                           commit_num=self.commit_num))

    def on_VRStateTransfer(self, src: Address, msg: VRStateTransfer,
                           packet: Packet) -> None:
        if msg.view != self.view or self.vr_status != "normal":
            return
        for offset, op in enumerate(msg.ops):
            op_num = msg.from_op + offset
            if op_num == self.vr_log.last_op_num + 1:
                self.vr_log.append(self.view, op)
        self._apply_commit(msg.commit_num)

    def _advance_commit(self, op_num: int) -> None:
        if op_num > self.commit_num:
            self.commit_num = op_num
        self._execute_ready()

    def _apply_commit(self, commit_num: int) -> None:
        self.commit_num = max(self.commit_num,
                              min(commit_num, self.vr_log.last_op_num))
        self._execute_ready()

    def _execute_ready(self) -> None:
        while self.executed_num < self.commit_num:
            self.executed_num += 1
            entry = self.vr_log.get(self.executed_num)
            result = self.execute_op(entry.op)
            callback = self._callbacks.pop(self.executed_num, None)
            if callback is not None:
                callback(result)

    def _send_heartbeat(self) -> None:
        if not (self.is_leader and self.vr_status == "normal"
                and not self.crashed):
            return
        for addr in self._others():
            self.send(addr, VRCommit(self.view, self.commit_num))
        # Retransmit the uncommitted window: a lost VRPrepare would
        # otherwise stall that op (and everything behind it) forever.
        for op_num in range(self.commit_num + 1,
                            self.vr_log.last_op_num + 1):
            entry = self.vr_log.get(op_num)
            for addr in self._others():
                self.send(addr, VRPrepare(self.view, op_num, entry.op,
                                          self.commit_num))

    # -- view change ----------------------------------------------------------
    def _on_leader_timeout(self) -> None:
        if self.crashed or self.is_leader:
            return
        self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        self.view = new_view
        self.vr_status = "view-change"
        if self.tracer is not None:
            self.tracer.record(
                "view_change_start", self.address, protocol="vr",
                shard=getattr(self, "shard", -1), view=new_view)
        self._heartbeat.stop()
        votes = self._start_view_changes.setdefault(new_view, set())
        votes.add(self.address)
        for addr in self._others():
            self.send(addr, VRStartViewChange(new_view, self.address))
        self._vc_timer.restart()  # escalate again if this view also stalls
        self._maybe_do_view_change(new_view)

    def on_VRStartViewChange(self, src: Address, msg: VRStartViewChange,
                             packet: Packet) -> None:
        if msg.view > self.view:
            self._start_view_change(msg.view)
        if msg.view == self.view and self.vr_status == "view-change":
            self._start_view_changes.setdefault(msg.view, set()).add(msg.sender)
            self._maybe_do_view_change(msg.view)

    def _maybe_do_view_change(self, view: int) -> None:
        if view != self.view or self.vr_status != "view-change":
            return
        if len(self._start_view_changes.get(view, ())) < self.f + 1:
            return
        new_leader = self.group[view % self.n_replicas]
        msg = VRDoViewChange(
            view=view,
            log=tuple(self.vr_log.entries()),
            last_normal_view=self._last_normal_view,
            op_num=self.vr_log.last_op_num,
            commit_num=self.commit_num,
            sender=self.address,
        )
        if new_leader == self.address:
            self._record_do_view_change(msg)
        else:
            self.send(new_leader, msg)

    def on_VRDoViewChange(self, src: Address, msg: VRDoViewChange,
                          packet: Packet) -> None:
        if msg.view < self.view:
            return
        if msg.view > self.view:
            self._start_view_change(msg.view)
        self._record_do_view_change(msg)

    def _record_do_view_change(self, msg: VRDoViewChange) -> None:
        received = self._do_view_changes.setdefault(msg.view, {})
        received[msg.sender] = msg
        if len(received) < self.f + 1 or self.vr_status != "view-change":
            return
        if self.group[msg.view % self.n_replicas] != self.address:
            return
        # Adopt the log from the message with the highest
        # (last_normal_view, op_num); standard VR selection rule.
        best = max(received.values(),
                   key=lambda m: (m.last_normal_view, m.op_num))
        self.vr_log.replace_suffix(list(best.log))
        self.commit_num = max(m.commit_num for m in received.values())
        self._enter_view(msg.view)
        for addr in self._others():
            self.send(addr, VRStartView(self.view,
                                        tuple(self.vr_log.entries()),
                                        self.vr_log.last_op_num,
                                        self.commit_num))
        self._execute_ready()

    def on_VRStartView(self, src: Address, msg: VRStartView,
                       packet: Packet) -> None:
        if msg.view < self.view:
            return
        self.vr_log.replace_suffix(list(msg.log))
        self.commit_num = max(self.commit_num, msg.commit_num)
        self._enter_view(msg.view)
        self._execute_ready()

    def _enter_view(self, view: int) -> None:
        self.view = view
        self.vr_status = "normal"
        self._last_normal_view = view
        if self.tracer is not None:
            self.tracer.record(
                "view_change_complete", self.address, protocol="vr",
                shard=getattr(self, "shard", -1), view=view,
                role="leader" if self.leader_address == self.address
                else "follower")
        self._ack_counts = {}
        self._callbacks = {}
        self._start_view_changes = {v: s for v, s in
                                    self._start_view_changes.items()
                                    if v > view}
        self._do_view_changes = {v: d for v, d in
                                 self._do_view_changes.items() if v > view}
        if self.is_leader:
            self._vc_timer.stop()
            self._heartbeat.start()
            self.on_become_leader()
        else:
            self._heartbeat.stop()
            self._vc_timer.restart()

    def on_become_leader(self) -> None:
        """Hook for subclasses (e.g. to re-drive pending transactions)."""

    def crash(self) -> None:
        super().crash()
        self._heartbeat.stop()
        self._vc_timer.stop()
