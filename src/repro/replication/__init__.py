"""Intra-shard replication for the layered baselines.

Eris itself needs no replication protocol — the network-level multi-
sequencing plus the Eris application protocol replace it. The layered
baselines (Lock-Store, Granola) replicate each shard with Viewstamped
Replication (:mod:`repro.replication.vr`), the leader-based protocol
the paper calls "Multi-Paxos" overhead; the two are equivalent for this
purpose.
"""

from repro.replication.log import ReplicatedLog, ReplicatedLogEntry
from repro.replication.vr import VRConfig, VRReplica

__all__ = ["ReplicatedLog", "ReplicatedLogEntry", "VRConfig", "VRReplica"]
