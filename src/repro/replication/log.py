"""The replicated operation log shared by VR replicas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class ReplicatedLogEntry:
    """One slot: the op plus the view it was accepted in."""

    op_num: int
    view: int
    op: Any


class ReplicatedLog:
    """1-indexed append-only log (op numbers start at 1)."""

    def __init__(self) -> None:
        self._entries: list[ReplicatedLogEntry] = []

    def append(self, view: int, op: Any) -> ReplicatedLogEntry:
        entry = ReplicatedLogEntry(op_num=len(self._entries) + 1, view=view,
                                   op=op)
        self._entries.append(entry)
        return entry

    def get(self, op_num: int) -> Optional[ReplicatedLogEntry]:
        if 1 <= op_num <= len(self._entries):
            return self._entries[op_num - 1]
        return None

    def truncate_to(self, op_num: int) -> None:
        """Keep entries 1..op_num."""
        del self._entries[op_num:]

    def replace_suffix(self, entries: list[ReplicatedLogEntry]) -> None:
        """Adopt ``entries`` (a full log) wholesale — used when a view
        change installs the new canonical log."""
        self._entries = list(entries)

    @property
    def last_op_num(self) -> int:
        return len(self._entries)

    def entries(self) -> list[ReplicatedLogEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
