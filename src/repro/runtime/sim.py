"""The discrete-event simulator backend of the runtime interface.

The simulator's fabric, :class:`repro.net.network.Network`, *is* the
backend: it implements :class:`repro.runtime.interface.Runtime`
directly (clock = the event loop's simulated time, timers = simulator
timers, randomness = named streams split off the experiment seed, and
payload delivery by shared reference — or through the wire codec when
:attr:`~repro.net.network.NetConfig.paranoid_codec` is set). This
module re-exports it under its backend name and provides the one-call
constructor used by the cluster builder.

Backend properties (see the full matrix in DESIGN.md):

- **delivery** — sampled latency + optional loss; per-link FIFO by
  default; payloads shared by reference (codec round-trip in paranoid
  mode).
- **groupcast** — routed in-fabric to the installed sequencer node.
- **clock** — simulated seconds; advances only as events fire.
- **determinism** — bit-identical across runs for one seed.
"""

from __future__ import annotations

from typing import Optional

from repro.net.network import NetConfig, Network
from repro.sim.event_loop import EventLoop
from repro.sim.randomness import SplitRandom

#: The simulator runtime class (the fabric itself).
SimRuntime = Network


def make_sim_runtime(seed: int = 0, config: Optional[NetConfig] = None,
                     loop: Optional[EventLoop] = None) -> Network:
    """Build a simulator runtime: event loop + seeded fabric."""
    return Network(loop or EventLoop(), config or NetConfig(),
                   SplitRandom(seed))
