"""Typed wire codec: every protocol message to and from bytes.

The simulator passes payloads between endpoints as shared Python
object references; a real transport cannot. This codec gives every
message dataclass in the repository a compact, self-describing wire
form so the same protocol classes run over real sockets — and so the
simulator can round-trip deliveries ("paranoid codec" mode,
:attr:`repro.net.network.NetConfig.paranoid_codec`) to prove no
handler mutates a received message or relies on cross-recipient
payload aliasing.

Wire format: a 4-byte magic/version prefix (``EWC1``) followed by a
UTF-8 JSON document in which every composite value is a tagged array::

    ["t", ...]            tuple
    ["l", ...]            list
    ["s", ...]            set            ["fs", ...]  frozenset
    ["d", [k, v], ...]    dict (keys may be any encodable value)
    ["b", "<base64>"]     bytes
    ["m", "TxnReply", [<field values in declared order>]]   dataclass

Scalars (str, int, float, bool, None) encode natively, so the common
case stays small while the tags keep decoding unambiguous (a raw JSON
array never appears untagged). Message types are registered by class
name in a module-level registry; decoding an unregistered type, a
truncated buffer, or a malformed document raises :class:`CodecError`
rather than an arbitrary exception.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from typing import Any, Iterable

from repro.errors import ReproError


class CodecError(ReproError):
    """Raised for any encode/decode failure: unregistered or
    unsupported types, truncated buffers, malformed documents."""


_MAGIC = b"EWC1"

#: Class-name -> class for every registered wire dataclass.
_REGISTRY: dict[str, type] = {}
#: Class -> field names in declared order (values travel positionally).
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def register_message(cls: type) -> type:
    """Register a dataclass as a wire message (usable as a decorator).
    Registration is idempotent; two *different* classes sharing a name
    would make decoding ambiguous and raise."""
    if not dataclasses.is_dataclass(cls):
        raise CodecError(f"{cls!r} is not a dataclass")
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing is not cls:
            raise CodecError(
                f"duplicate wire-message name {name!r}: "
                f"{existing.__module__} vs {cls.__module__}")
        return cls
    _REGISTRY[name] = cls
    _FIELD_NAMES[cls] = tuple(f.name for f in dataclasses.fields(cls))
    return cls


def register_messages(classes: Iterable[type]) -> None:
    for cls in classes:
        register_message(cls)


def registered_message_types() -> dict[str, type]:
    """Snapshot of the registry (name -> class)."""
    _ensure_registry()
    return dict(_REGISTRY)


# -- value encoding -------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Recursively transform ``value`` into the tagged-JSON form."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    cls = type(value)
    if cls is tuple:
        return ["t", *[encode_value(v) for v in value]]
    if cls is list:
        return ["l", *[encode_value(v) for v in value]]
    if cls is dict:
        return ["d", *[[encode_value(k), encode_value(v)]
                       for k, v in value.items()]]
    if cls is set:
        return ["s", *[encode_value(v) for v in value]]
    if cls is frozenset:
        return ["fs", *[encode_value(v) for v in value]]
    if cls is bytes:
        return ["b", base64.b64encode(value).decode("ascii")]
    if dataclasses.is_dataclass(cls):
        fields = _FIELD_NAMES.get(cls)
        if fields is None:
            _ensure_registry()
            fields = _FIELD_NAMES.get(cls)
        if fields is None or _REGISTRY.get(cls.__name__) is not cls:
            raise CodecError(
                f"unregistered wire message type {cls.__module__}."
                f"{cls.__name__}")
        return ["m", cls.__name__,
                [encode_value(getattr(value, name)) for name in fields]]
    # Tuple subclasses (e.g. namedtuples) and other exotica are not
    # wire types; failing loudly beats silently flattening them.
    raise CodecError(f"cannot encode value of type {cls.__name__}: {value!r}")


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if not isinstance(obj, list) or not obj:
        raise CodecError(f"malformed wire value: {obj!r}")
    tag = obj[0]
    if tag == "t":
        return tuple(decode_value(v) for v in obj[1:])
    if tag == "l":
        return [decode_value(v) for v in obj[1:]]
    if tag == "d":
        try:
            return {decode_value(k): decode_value(v) for k, v in obj[1:]}
        except (TypeError, ValueError) as exc:
            raise CodecError(f"malformed dict entry: {obj!r}") from exc
    if tag == "s":
        return {decode_value(v) for v in obj[1:]}
    if tag == "fs":
        return frozenset(decode_value(v) for v in obj[1:])
    if tag == "b":
        if len(obj) != 2 or not isinstance(obj[1], str):
            raise CodecError(f"malformed bytes value: {obj!r}")
        try:
            return base64.b64decode(obj[1], validate=True)
        except Exception as exc:
            raise CodecError(f"malformed base64 payload: {obj[1]!r}") from exc
    if tag == "m":
        if len(obj) != 3 or not isinstance(obj[1], str) \
                or not isinstance(obj[2], list):
            raise CodecError(f"malformed message value: {obj!r}")
        _ensure_registry()
        cls = _REGISTRY.get(obj[1])
        if cls is None:
            raise CodecError(f"unknown wire message type {obj[1]!r}")
        fields = _FIELD_NAMES[cls]
        if len(obj[2]) != len(fields):
            raise CodecError(
                f"{obj[1]}: expected {len(fields)} fields, "
                f"got {len(obj[2])}")
        kwargs = {name: decode_value(v) for name, v in zip(fields, obj[2])}
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot rebuild {obj[1]}: {exc}") from exc
    raise CodecError(f"unknown wire tag {tag!r}")


# -- message / packet framing ---------------------------------------------

def encode_message(message: Any) -> bytes:
    """Serialize one protocol message (or any encodable value)."""
    try:
        body = json.dumps(encode_value(message), separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot serialize message: {exc}") from exc
    return _MAGIC + body.encode("utf-8")


def decode_message(buffer: bytes) -> Any:
    """Inverse of :func:`encode_message`."""
    if not isinstance(buffer, (bytes, bytearray, memoryview)):
        raise CodecError(f"expected bytes, got {type(buffer).__name__}")
    buffer = bytes(buffer)
    if len(buffer) < len(_MAGIC) or buffer[:len(_MAGIC)] != _MAGIC:
        raise CodecError("truncated or foreign buffer (bad magic)")
    try:
        obj = json.loads(buffer[len(_MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"truncated or malformed wire document: {exc}") \
            from exc
    return decode_value(obj)


def encode_packet(packet: Any) -> bytes:
    """Serialize a full :class:`~repro.net.message.Packet` envelope
    (headers + payload) for a real transport or a paranoid round-trip."""
    from repro.net.message import Packet

    if type(packet) is not Packet:
        raise CodecError(f"expected Packet, got {type(packet).__name__}")
    envelope = ["t", packet.src, packet.dst, encode_value(packet.payload),
                encode_value(packet.groupcast),
                encode_value(packet.multistamp), packet.sequenced,
                packet.packet_id, packet.trace_id]
    try:
        body = json.dumps(envelope, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot serialize packet: {exc}") from exc
    return _MAGIC + body.encode("utf-8")


def decode_packet(buffer: bytes) -> Any:
    """Inverse of :func:`encode_packet`. The decoded packet keeps the
    sender-assigned ``packet_id``/``trace_id`` so causal tracing and
    sequencer bookkeeping are stable across the wire."""
    from repro.net.message import GroupcastHeader, MultiStamp, Packet

    envelope = decode_message(buffer)
    if not isinstance(envelope, tuple) or len(envelope) != 8:
        raise CodecError(f"malformed packet envelope: {envelope!r}")
    (src, dst, payload, groupcast, multistamp, sequenced,
     packet_id, trace_id) = envelope
    if groupcast is not None and type(groupcast) is not GroupcastHeader:
        raise CodecError(f"malformed groupcast header: {groupcast!r}")
    if multistamp is not None and type(multistamp) is not MultiStamp:
        raise CodecError(f"malformed multi-stamp: {multistamp!r}")
    packet = object.__new__(Packet)
    packet.src = src
    packet.dst = dst
    packet.payload = payload
    packet.groupcast = groupcast
    packet.multistamp = multistamp
    packet.sequenced = bool(sequenced)
    packet.packet_id = packet_id
    packet.trace_id = trace_id
    return packet


# -- registry population --------------------------------------------------

_registry_loaded = False


def _ensure_registry() -> None:
    """Register every wire dataclass in the repository. Deferred (and
    import-cycle safe) because the protocol modules themselves import
    nothing from the codec."""
    global _registry_loaded
    if _registry_loaded:
        return
    _registry_loaded = True

    from repro.baselines import granola, lockstore, ntur, tapir
    from repro.core import log as core_log
    from repro.core import messages as core_messages
    from repro.core import transaction
    from repro.net import chainseq, controller, message
    from repro.replication import log as replication_log
    from repro.replication import vr

    register_messages([
        # network-layer headers
        message.GroupcastHeader,
        message.MultiStamp,
        # transaction identities
        transaction.TxnId,
        transaction.SlotId,
        transaction.IndependentTransaction,
        core_log.LogEntry,
        replication_log.ReplicatedLogEntry,
        # Eris protocol (§6)
        core_messages.IndependentTxnRequest,
        core_messages.TxnReply,
        core_messages.PeerTxnRequest,
        core_messages.PeerTxnResponse,
        core_messages.TxnRecord,
        core_messages.FindTxn,
        core_messages.TxnRequestMsg,
        core_messages.HasTxn,
        core_messages.TempDroppedTxn,
        core_messages.TxnFound,
        core_messages.TxnDropped,
        core_messages.ViewChange,
        core_messages.StartView,
        core_messages.EpochChangeReq,
        core_messages.EpochStateRequest,
        core_messages.EpochState,
        core_messages.StartEpoch,
        core_messages.StartEpochAck,
        core_messages.ReconRead,
        core_messages.ReconReply,
        core_messages.SyncLog,
        core_messages.SyncAck,
        # control plane
        controller.SequencerPing,
        controller.SequencerPong,
        # chain-replicated sequencer
        chainseq.ChainForward,
        chainseq.ChainStateRequest,
        chainseq.ChainState,
        chainseq.ChainInstall,
        chainseq.ChainInstallAck,
        # Viewstamped Replication
        vr.VRPrepare,
        vr.VRPrepareOK,
        vr.VRCommit,
        vr.VRStateRequest,
        vr.VRStateTransfer,
        vr.VRStartViewChange,
        vr.VRDoViewChange,
        vr.VRStartView,
        # Lock-Store
        lockstore.LSPrepare,
        lockstore.LSVote,
        lockstore.LSDecision,
        lockstore.LSAck,
        # Granola
        granola.GRequest,
        granola.GVote,
        granola.GReply,
        granola.GLockPrepare,
        granola.GLockReply,
        granola.GLockCommit,
        granola.GLockAck,
        # NT-UR
        ntur.NTURExecute,
        ntur.NTURRead,
        ntur.NTURWrite,
        ntur.NTURReply,
        # TAPIR
        tapir.TPrepare,
        tapir.TPrepareReply,
        tapir.TDecision,
        tapir.TDecisionAck,
        tapir.TSlowConfirm,
        tapir.TSlowConfirmAck,
        tapir.TFinalize,
    ])
