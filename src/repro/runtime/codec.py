"""Typed wire codec: every protocol message to and from bytes.

The simulator passes payloads between endpoints as shared Python
object references; a real transport cannot. This codec gives every
message dataclass in the repository a compact, self-describing wire
form so the same protocol classes run over real sockets — and so the
simulator can round-trip deliveries ("paranoid codec" mode,
:attr:`repro.net.network.NetConfig.paranoid_codec`) to prove no
handler mutates a received message or relies on cross-recipient
payload aliasing.

Two wire formats share one value model and one message registry:

**EWC1** (default, the paranoid-codec reference): a 4-byte
magic/version prefix followed by a UTF-8 JSON document in which every
composite value is a tagged array::

    ["t", ...]            tuple
    ["l", ...]            list
    ["s", ...]            set            ["fs", ...]  frozenset
    ["d", [k, v], ...]    dict (keys may be any encodable value)
    ["b", "<base64>"]     bytes
    ["m", "TxnReply", [<field values in declared order>]]   dataclass

Scalars (str, int, float, bool, None) encode natively, so the common
case stays small while the tags keep decoding unambiguous (a raw JSON
array never appears untagged). Scalar *subclasses* (``IntEnum``, str
subclasses) are rejected at encode time — they would silently decode
as their base type — and non-finite floats raise :class:`CodecError`
(JSON has no NaN/Infinity; only our own decoder would accept the
extension literals ``json.dumps`` emits by default).

**EWC2** (the fast path): a compact binary encoding behind the same
registry. One tag byte per value, LEB128 varints for lengths and
integers (zigzag for signed), 8-byte little-endian doubles, UTF-8
string bodies, and message dataclasses as a varint *interned type id*
— an index into the sorted registered-class table — followed by the
field values positionally. Small non-negative ints (0..127) fold into
the tag byte. Packet envelopes use a struct-packed frame header
(magic, frame tag, flags byte, varint ids, then the multicast headers)
and the decoder walks a :class:`memoryview`, so batched-datagram
parsing slices payload frames zero-copy out of the receive buffer.

**EWCB** is a length-prefixed multi-frame container: several EWC1/EWC2
packet frames packed into one datagram (``encode_datagram`` /
``decode_datagram``), the syscall-amortizing batching the eRPC paper
shows recovers most of the specialized-stack win on commodity UDP.

Message types are registered by class name in a module-level registry;
decoding an unregistered type, a truncated buffer, or a malformed
document raises :class:`CodecError` rather than an arbitrary
exception. Decoding is defensive on both formats: truncation at any
byte, trailing garbage, duplicate dict/set keys, unknown interned ids,
and nesting beyond :data:`MAX_DEPTH` all raise :class:`CodecError`.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import math
import struct
from typing import Any, Iterable

from repro.errors import ReproError


class CodecError(ReproError):
    """Raised for any encode/decode failure: unregistered or
    unsupported types, truncated buffers, malformed documents."""


_MAGIC = b"EWC1"
_MAGIC2 = b"EWC2"
_MAGIC_BATCH = b"EWCB"

#: Supported wire formats, in registry-stability order.
WIRE_CODECS = ("ewc1", "ewc2")

#: Composite nesting bound for both formats. Protocol messages nest a
#: handful of levels; a forged frame claiming unbounded nesting must
#: fail with a typed error, not a RecursionError.
MAX_DEPTH = 200

#: Sanity bound on frames per EWCB container (a 64 KiB datagram cannot
#: hold more real frames than this anyway).
MAX_DATAGRAM_FRAMES = 4096

#: Class-name -> class for every registered wire dataclass.
_REGISTRY: dict[str, type] = {}
#: Class -> field names in declared order (values travel positionally).
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}

# EWC2 interned-type tables, derived lazily from the registry (sorted
# by class name so both ends of a connection agree on the numbering
# without negotiation). Invalidated whenever a new type registers.
_TYPE_IDS: dict[type, int] | None = None
_TYPES_BY_ID: list[type] | None = None
# Classes safe to rebuild without running the constructor: no
# __post_init__ validator and no __slots__ anywhere in the MRO, so
# object.__new__ + a direct __dict__ assignment is equivalent to
# __init__ (frozen dataclasses pay per-field object.__setattr__ there —
# the dominant decode cost for message-heavy payloads). Classes *with*
# a __post_init__ (but still no __slots__) go in _VALIDATED_NEW: same
# rebuild, then the validator runs explicitly — a dataclass __init__
# is exactly "set every field, then call __post_init__", so decoded
# frames keep full validation while skipping the frozen setattr tax.
_FAST_NEW: set[type] = set()
_VALIDATED_NEW: set[type] = set()
_object_new = object.__new__


def register_message(cls: type) -> type:
    """Register a dataclass as a wire message (usable as a decorator).
    Registration is idempotent; two *different* classes sharing a name
    would make decoding ambiguous and raise."""
    global _TYPE_IDS, _TYPES_BY_ID
    if not dataclasses.is_dataclass(cls):
        raise CodecError(f"{cls!r} is not a dataclass")
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing is not cls:
            raise CodecError(
                f"duplicate wire-message name {name!r}: "
                f"{existing.__module__} vs {cls.__module__}")
        return cls
    _REGISTRY[name] = cls
    _FIELD_NAMES[cls] = tuple(f.name for f in dataclasses.fields(cls))
    _TYPE_IDS = _TYPES_BY_ID = None   # interned ids must be recomputed
    return cls


def register_messages(classes: Iterable[type]) -> None:
    for cls in classes:
        register_message(cls)


def registered_message_types() -> dict[str, type]:
    """Snapshot of the registry (name -> class)."""
    _ensure_registry()
    return dict(_REGISTRY)


def wire_type_table() -> tuple[str, ...]:
    """EWC2's interned-type table: index *i* is the class whose frames
    carry type id *i*. Deterministic (sorted by class name), so both
    ends derive it independently from the shared registry."""
    _ensure_registry()
    _intern_types()
    return tuple(cls.__name__ for cls in _TYPES_BY_ID)


def _intern_types() -> None:
    global _TYPE_IDS, _TYPES_BY_ID
    if _TYPE_IDS is not None:
        return
    _TYPES_BY_ID = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    _TYPE_IDS = {cls: i for i, cls in enumerate(_TYPES_BY_ID)}
    _FAST_NEW.clear()
    _VALIDATED_NEW.clear()
    for cls in _TYPES_BY_ID:
        if any("__slots__" in base.__dict__ for base in cls.__mro__[:-1]):
            continue
        if hasattr(cls, "__post_init__"):
            _VALIDATED_NEW.add(cls)
        else:
            _FAST_NEW.add(cls)


def check_wire(wire: str) -> str:
    if wire not in WIRE_CODECS:
        raise CodecError(
            f"unknown wire codec {wire!r}; pick one of {WIRE_CODECS}")
    return wire


# -- EWC1 value encoding ---------------------------------------------------

def encode_value(value: Any, _depth: int = 0) -> Any:
    """Recursively transform ``value`` into the tagged-JSON form."""
    # Exact-type scalar fast path: subclasses (IntEnum, str subclasses)
    # must NOT pass here — they would decode as plain int/str with no
    # error, silently narrowing the type across the wire.
    cls = value.__class__ if value is not None else type(None)
    if cls is str or cls is bool or cls is int:
        return value
    if value is None:
        return None
    if cls is float:
        if not math.isfinite(value):
            raise CodecError(f"non-finite float is not encodable: {value!r}")
        return value
    if _depth >= MAX_DEPTH:
        raise CodecError(f"nesting deeper than {MAX_DEPTH} levels")
    depth = _depth + 1
    if cls is tuple:
        return ["t", *[encode_value(v, depth) for v in value]]
    if cls is list:
        return ["l", *[encode_value(v, depth) for v in value]]
    if cls is dict:
        return ["d", *[[encode_value(k, depth), encode_value(v, depth)]
                       for k, v in value.items()]]
    if cls is set:
        return ["s", *[encode_value(v, depth) for v in value]]
    if cls is frozenset:
        return ["fs", *[encode_value(v, depth) for v in value]]
    if cls is bytes:
        return ["b", base64.b64encode(value).decode("ascii")]
    if dataclasses.is_dataclass(cls):
        fields = _FIELD_NAMES.get(cls)
        if fields is None:
            _ensure_registry()
            fields = _FIELD_NAMES.get(cls)
        if fields is None or _REGISTRY.get(cls.__name__) is not cls:
            raise CodecError(
                f"unregistered wire message type {cls.__module__}."
                f"{cls.__name__}")
        return ["m", cls.__name__,
                [encode_value(getattr(value, name), depth)
                 for name in fields]]
    # Scalar subclasses, tuple subclasses (e.g. namedtuples), and other
    # exotica are not wire types; failing loudly beats silently
    # narrowing or flattening them.
    raise CodecError(f"cannot encode value of type {cls.__name__}: {value!r}")


def decode_value(obj: Any, _depth: int = 0) -> Any:
    """Inverse of :func:`encode_value`."""
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if not isinstance(obj, list) or not obj:
        raise CodecError(f"malformed wire value: {obj!r}")
    if _depth >= MAX_DEPTH:
        raise CodecError(f"nesting deeper than {MAX_DEPTH} levels")
    depth = _depth + 1
    tag = obj[0]
    if tag == "t":
        return tuple(decode_value(v, depth) for v in obj[1:])
    if tag == "l":
        return [decode_value(v, depth) for v in obj[1:]]
    if tag == "d":
        try:
            decoded = {decode_value(k, depth): decode_value(v, depth)
                       for k, v in obj[1:]}
        except (TypeError, ValueError) as exc:
            raise CodecError(f"malformed dict entry: {obj!r}") from exc
        if len(decoded) != len(obj) - 1:
            raise CodecError(f"duplicate dict keys: {obj!r}")
        return decoded
    if tag == "s" or tag == "fs":
        try:
            decoded = {decode_value(v, depth) for v in obj[1:]}
        except TypeError as exc:
            raise CodecError(f"unhashable set element: {obj!r}") from exc
        if len(decoded) != len(obj) - 1:
            raise CodecError(f"duplicate set elements: {obj!r}")
        return decoded if tag == "s" else frozenset(decoded)
    if tag == "b":
        if len(obj) != 2 or not isinstance(obj[1], str):
            raise CodecError(f"malformed bytes value: {obj!r}")
        try:
            return base64.b64decode(obj[1], validate=True)
        except Exception as exc:
            raise CodecError(f"malformed base64 payload: {obj[1]!r}") from exc
    if tag == "m":
        if len(obj) != 3 or not isinstance(obj[1], str) \
                or not isinstance(obj[2], list):
            raise CodecError(f"malformed message value: {obj!r}")
        _ensure_registry()
        cls = _REGISTRY.get(obj[1])
        if cls is None:
            raise CodecError(f"unknown wire message type {obj[1]!r}")
        fields = _FIELD_NAMES[cls]
        if len(obj[2]) != len(fields):
            raise CodecError(
                f"{obj[1]}: expected {len(fields)} fields, "
                f"got {len(obj[2])}")
        kwargs = {name: decode_value(v, depth)
                  for name, v in zip(fields, obj[2])}
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot rebuild {obj[1]}: {exc}") from exc
    raise CodecError(f"unknown wire tag {tag!r}")


# -- EWC2 binary value encoding --------------------------------------------
#
# One tag byte per value; tags >= 0x80 are small non-negative ints
# folded into the tag itself (group ids, sequence numbers, and workload
# keys are overwhelmingly small). Varints are unsigned LEB128; signed
# integers zigzag first so small negatives stay one byte.

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_SET = 0x09
_T_FSET = 0x0A
_T_DICT = 0x0B
_T_MSG = 0x0C
_T_SREF = 0x0D        # back-reference to the n-th string of this frame
_T_PACKET = 0x0F      # frame-level tag, only valid right after magic
_SMALL_INT = 0x80     # 0x80 | n encodes int n in [0, 0x7F]

_pack_double = struct.Struct("<d").pack
_unpack_double = struct.Struct("<d").unpack_from


def _write_uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _write_svarint(out: bytearray, n: int) -> None:
    # Arbitrary-precision zigzag: non-negative -> even, negative -> odd.
    _write_uvarint(out, n << 1 if n >= 0 else ((-n) << 1) - 1)


def _read_uvarint(buf, pos: int, end: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise CodecError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 10_000:   # forged frame: unbounded continuation bytes
            raise CodecError("varint too long")


def _read_svarint(buf, pos: int, end: int) -> tuple[int, int]:
    u, pos = _read_uvarint(buf, pos, end)
    # zigzag inverse: even -> u/2, odd -> ~(u/2) (one branchless xor).
    return (u >> 1) ^ -(u & 1), pos


def _encode2(out: bytearray, value: Any, depth: int,
             interns: dict,
             # Hot constants/helpers bound as defaults: locals are one
             # array load in CPython, module globals a dict probe each.
             _SMALL_INT=_SMALL_INT, _T_INT=_T_INT, _T_STR=_T_STR,
             _T_SREF=_T_SREF, _T_NONE=_T_NONE, _T_TRUE=_T_TRUE,
             _T_FALSE=_T_FALSE, _T_FLOAT=_T_FLOAT, _T_TUPLE=_T_TUPLE,
             _T_LIST=_T_LIST, _T_DICT=_T_DICT, _T_SET=_T_SET,
             _T_FSET=_T_FSET, _T_BYTES=_T_BYTES, _T_MSG=_T_MSG,
             _write_uvarint=_write_uvarint, _write_svarint=_write_svarint,
             _pack_double=_pack_double, _isfinite=math.isfinite,
             MAX_DEPTH=MAX_DEPTH) -> None:
    """Append the EWC2 encoding of ``value`` to ``out``. ``interns``
    maps each string already written in this frame to its occurrence
    index: repeats encode as a tiny back-reference (protocol payloads
    repeat client ids, procedure names, and keys heavily, and a
    back-reference also decodes as a single list index)."""
    cls = value.__class__ if value is not None else type(None)
    if cls is int:
        if 0 <= value <= 0x7F:
            out.append(_SMALL_INT | value)
        else:
            out.append(_T_INT)
            _write_svarint(out, value)
        return
    if cls is str:
        ref = interns.get(value)
        if ref is not None:
            out.append(_T_SREF)
            if ref < 0x80:
                out.append(ref)
            else:
                _write_uvarint(out, ref)
            return
        interns[value] = len(interns)
        body = value.encode("utf-8")
        out.append(_T_STR)
        blen = len(body)
        if blen < 0x80:
            out.append(blen)
        else:
            _write_uvarint(out, blen)
        out += body
        return
    if value is None:
        out.append(_T_NONE)
        return
    if cls is bool:
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if cls is float:
        if not _isfinite(value):
            raise CodecError(f"non-finite float is not encodable: {value!r}")
        out.append(_T_FLOAT)
        out += _pack_double(value)
        return
    if depth >= MAX_DEPTH:
        raise CodecError(f"nesting deeper than {MAX_DEPTH} levels")
    depth += 1
    # After the loop-level peeks, messages are the most common value
    # still reaching this function — dispatch them before containers.
    if _TYPE_IDS is None:
        _ensure_registry()
        _intern_types()
    type_id = _TYPE_IDS.get(cls)
    if type_id is not None:
        out.append(_T_MSG)
        if type_id < 0x80:
            out.append(type_id)
        else:
            _write_uvarint(out, type_id)
        fields = getattr(value, "__dict__", None)
        if fields is not None and len(fields) == len(_FIELD_NAMES[cls]):
            items = fields.values()
        else:   # __slots__ classes carry no instance dict
            items = (getattr(value, name) for name in _FIELD_NAMES[cls])
        for item in items:
            icls = item.__class__
            if icls is int and 0 <= item <= 0x7F:
                out.append(_SMALL_INT | item)
            elif icls is str and interns.get(item, 0x80) < 0x80:
                out.append(_T_SREF)
                out.append(interns[item])
            else:
                _encode2(out, item, depth, interns)
        return
    # The container loops below fold small non-negative ints and
    # already-interned short strings in place (mirroring the
    # decode-side peek) — together they dominate real payloads and
    # skipping a recursive call per element is the main encode win.
    if cls is tuple or cls is list:
        out.append(_T_TUPLE if cls is tuple else _T_LIST)
        count = len(value)
        if count < 0x80:
            out.append(count)
        else:
            _write_uvarint(out, count)
        for item in value:
            icls = item.__class__
            if icls is int and 0 <= item <= 0x7F:
                out.append(_SMALL_INT | item)
            elif icls is str and interns.get(item, 0x80) < 0x80:
                out.append(_T_SREF)
                out.append(interns[item])
            else:
                _encode2(out, item, depth, interns)
        return
    if cls is dict:
        out.append(_T_DICT)
        count = len(value)
        if count < 0x80:
            out.append(count)
        else:
            _write_uvarint(out, count)
        for key, item in value.items():
            if key.__class__ is str and interns.get(key, 0x80) < 0x80:
                out.append(_T_SREF)
                out.append(interns[key])
            else:
                _encode2(out, key, depth, interns)
            icls = item.__class__
            if icls is int and 0 <= item <= 0x7F:
                out.append(_SMALL_INT | item)
            elif icls is str and interns.get(item, 0x80) < 0x80:
                out.append(_T_SREF)
                out.append(interns[item])
            else:
                _encode2(out, item, depth, interns)
        return
    if cls is set or cls is frozenset:
        out.append(_T_SET if cls is set else _T_FSET)
        count = len(value)
        if count < 0x80:
            out.append(count)
        else:
            _write_uvarint(out, count)
        for item in value:
            icls = item.__class__
            if icls is int and 0 <= item <= 0x7F:
                out.append(_SMALL_INT | item)
            elif icls is str and interns.get(item, 0x80) < 0x80:
                out.append(_T_SREF)
                out.append(interns[item])
            else:
                _encode2(out, item, depth, interns)
        return
    if cls is bytes:
        out.append(_T_BYTES)
        _write_uvarint(out, len(value))
        out += value
        return
    if dataclasses.is_dataclass(cls):
        raise CodecError(
            f"unregistered wire message type {cls.__module__}."
            f"{cls.__name__}")
    raise CodecError(f"cannot encode value of type {cls.__name__}: {value!r}")


def _decode2(buf, pos: int, end: int, depth: int,
             strings: list,
             # Hot constants/helpers bound as defaults: locals are one
             # array load in CPython, module globals a dict probe each.
             _SMALL_INT=_SMALL_INT, _T_STR=_T_STR, _T_INT=_T_INT,
             _T_NONE=_T_NONE, _T_TRUE=_T_TRUE, _T_FALSE=_T_FALSE,
             _T_FLOAT=_T_FLOAT, _T_BYTES=_T_BYTES,
             _read_uvarint=_read_uvarint, _read_svarint=_read_svarint,
             _unpack_double=_unpack_double) -> tuple[Any, int]:
    """Decode one EWC2 value from ``buf[pos:end]``; returns
    ``(value, next_pos)``. ``buf`` may be bytes or a memoryview —
    slices taken for string/bytes bodies are zero-copy until
    materialized. ``strings`` accumulates every string decoded so far
    in this frame, the target space for ``_T_SREF`` back-references.
    Single-byte varints (the overwhelmingly common length/count case)
    are read inline to keep the hot path free of extra function
    calls."""
    if pos >= end:
        raise CodecError("truncated EWC2 value")
    tag = buf[pos]
    pos += 1
    if tag & _SMALL_INT:
        return tag & 0x7F, pos
    # Composite tags (and SREF) numerically follow the scalar tags;
    # one range compare routes them past the scalar if-chain. After
    # the loop-level peeks, most values that still reach this function
    # are messages and containers, so they are dispatched first.
    if tag >= _T_BYTES:
        return _decode2_composite(buf, pos, end, depth, strings, tag)
    if tag == _T_STR:
        if pos >= end:
            raise CodecError("truncated varint")
        length = buf[pos]
        if length < 0x80:
            pos += 1
        else:
            length, pos = _read_uvarint(buf, pos, end)
        stop = pos + length
        if stop > end:
            raise CodecError("truncated EWC2 string")
        try:
            value = str(buf[pos:stop], "utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"malformed UTF-8 string body: {exc}") from exc
        strings.append(value)
        return value, stop
    if tag == _T_INT:
        return _read_svarint(buf, pos, end)
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FLOAT:
        if pos + 8 > end:
            raise CodecError("truncated EWC2 float")
        return _unpack_double(buf, pos)[0], pos + 8
    raise CodecError(f"unknown EWC2 tag byte 0x{tag:02x}")




def _decode2_composite(buf, pos: int, end: int, depth: int,
                       strings: list, tag: int,
                       _T_SREF=_T_SREF, _T_MSG=_T_MSG, _T_TUPLE=_T_TUPLE,
                       _T_LIST=_T_LIST, _T_DICT=_T_DICT, _T_SET=_T_SET,
                       _T_FSET=_T_FSET, _T_BYTES=_T_BYTES,
                       _read_uvarint=_read_uvarint,
                       _object_new=_object_new,
                       MAX_DEPTH=MAX_DEPTH) -> tuple[Any, int]:
    """Container/message/back-reference arm of :func:`_decode2` (tags
    ``>= _T_BYTES``), split out so the scalar hot path stays short."""
    if tag == _T_SREF:
        if pos >= end:
            raise CodecError("truncated varint")
        ref = buf[pos]
        if ref < 0x80:
            pos += 1
        else:
            ref, pos = _read_uvarint(buf, pos, end)
        if ref >= len(strings):
            raise CodecError(f"string back-reference {ref} out of range")
        return strings[ref], pos
    if depth >= MAX_DEPTH:
        raise CodecError(f"nesting deeper than {MAX_DEPTH} levels")
    depth += 1
    if pos >= end:
        raise CodecError("truncated varint")
    count = buf[pos]       # every composite starts with a count/id varint
    if count < 0x80:
        pos += 1
    else:
        count, pos = _read_uvarint(buf, pos, end)
    # The container loops peek one byte and fold small-int elements and
    # single-byte string back-references in place — together they
    # dominate real payloads (group ids, sequence numbers, repeated
    # client ids / proc names / keys), and skipping the recursive call
    # for them is the single biggest decode win. An out-of-range
    # back-reference falls through to the recursive path, which raises
    # the canonical CodecError.
    if tag == _T_MSG:       # checked first: one per message/log entry
        if _TYPES_BY_ID is None:
            _ensure_registry()
            _intern_types()
        if count >= len(_TYPES_BY_ID):
            raise CodecError(f"unknown interned wire type id {count}")
        cls = _TYPES_BY_ID[count]
        if cls in _FAST_NEW:
            # No validator to run: skip __init__ (per-field frozen
            # __setattr__ calls) and install decoded fields directly.
            obj = _object_new(cls)
            fields = obj.__dict__
            for name in _FIELD_NAMES[cls]:
                if pos < end:
                    b = buf[pos]
                    if b & 0x80:
                        fields[name] = b & 0x7F
                        pos += 1
                        continue
                    if b == _T_SREF and pos + 1 < end \
                            and buf[pos + 1] < 0x80 \
                            and buf[pos + 1] < len(strings):
                        fields[name] = strings[buf[pos + 1]]
                        pos += 2
                        continue
                    if b >= _T_BYTES and b != _T_SREF:
                        fields[name], pos = _decode2_composite(
                            buf, pos + 1, end, depth, strings, b)
                        continue
                fields[name], pos = _decode2(buf, pos, end, depth,
                                             strings)
            return obj, pos
        if cls in _VALIDATED_NEW:
            obj = _object_new(cls)
            fields = obj.__dict__
            for name in _FIELD_NAMES[cls]:
                if pos < end:
                    b = buf[pos]
                    if b & 0x80:
                        fields[name] = b & 0x7F
                        pos += 1
                        continue
                    if b == _T_SREF and pos + 1 < end \
                            and buf[pos + 1] < 0x80 \
                            and buf[pos + 1] < len(strings):
                        fields[name] = strings[buf[pos + 1]]
                        pos += 2
                        continue
                    if b >= _T_BYTES and b != _T_SREF:
                        fields[name], pos = _decode2_composite(
                            buf, pos + 1, end, depth, strings, b)
                        continue
                fields[name], pos = _decode2(buf, pos, end, depth,
                                             strings)
            try:
                obj.__post_init__()
            except (TypeError, ValueError) as exc:
                raise CodecError(
                    f"cannot rebuild {cls.__name__}: {exc}") from exc
            return obj, pos
        kwargs = {}   # __slots__ classes: no instance dict to fill
        for name in _FIELD_NAMES[cls]:
            if pos < end and buf[pos] & 0x80:
                kwargs[name] = buf[pos] & 0x7F
                pos += 1
            else:
                kwargs[name], pos = _decode2(buf, pos, end, depth, strings)
        try:
            return cls(**kwargs), pos
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"cannot rebuild {cls.__name__}: {exc}") from exc
    if tag == _T_TUPLE or tag == _T_LIST:
        items = []
        append = items.append
        for _ in range(count):
            if pos < end:
                b = buf[pos]
                if b & 0x80:
                    append(b & 0x7F)
                    pos += 1
                    continue
                if b == _T_SREF and pos + 1 < end \
                        and buf[pos + 1] < 0x80 \
                        and buf[pos + 1] < len(strings):
                    append(strings[buf[pos + 1]])
                    pos += 2
                    continue
                if b >= _T_BYTES and b != _T_SREF:
                    item, pos = _decode2_composite(
                        buf, pos + 1, end, depth, strings, b)
                    append(item)
                    continue
            item, pos = _decode2(buf, pos, end, depth, strings)
            append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        decoded = {}
        for _ in range(count):
            key, pos = _decode2(buf, pos, end, depth, strings)
            if pos < end and buf[pos] & 0x80:
                item = buf[pos] & 0x7F
                pos += 1
            else:
                item, pos = _decode2(buf, pos, end, depth, strings)
            try:
                decoded[key] = item
            except TypeError as exc:
                raise CodecError(f"unhashable dict key: {key!r}") from exc
        if len(decoded) != count:
            raise CodecError("duplicate dict keys in EWC2 frame")
        return decoded, pos
    if tag == _T_SET or tag == _T_FSET:
        decoded = set()
        add = decoded.add
        for _ in range(count):
            if pos < end:
                b = buf[pos]
                if b & 0x80:
                    add(b & 0x7F)
                    pos += 1
                    continue
                if b == _T_SREF and pos + 1 < end \
                        and buf[pos + 1] < 0x80 \
                        and buf[pos + 1] < len(strings):
                    add(strings[buf[pos + 1]])
                    pos += 2
                    continue
            item, pos = _decode2(buf, pos, end, depth, strings)
            try:
                add(item)
            except TypeError as exc:
                raise CodecError(
                    f"unhashable set element: {item!r}") from exc
        if len(decoded) != count:
            raise CodecError("duplicate set elements in EWC2 frame")
        return (decoded if tag == _T_SET else frozenset(decoded)), pos
    if tag == _T_BYTES:
        stop = pos + count
        if stop > end:
            raise CodecError("truncated EWC2 bytes")
        return bytes(buf[pos:stop]), stop
    raise CodecError(f"unknown EWC2 tag byte 0x{tag:02x}")


# -- message / packet framing ---------------------------------------------

def encode_message(message: Any, wire: str = "ewc1") -> bytes:
    """Serialize one protocol message (or any encodable value)."""
    if wire == "ewc1":
        try:
            body = json.dumps(encode_value(message), separators=(",", ":"),
                              allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot serialize message: {exc}") from exc
        return _MAGIC + body.encode("utf-8")
    check_wire(wire)
    out = bytearray(_MAGIC2)
    _encode2(out, message, 0, {})
    return bytes(out)


def decode_message(buffer: bytes) -> Any:
    """Inverse of :func:`encode_message` (wire format auto-detected
    from the magic prefix)."""
    if not isinstance(buffer, (bytes, bytearray, memoryview)):
        raise CodecError(f"expected bytes, got {type(buffer).__name__}")
    if len(buffer) < 4:
        raise CodecError("truncated or foreign buffer (bad magic)")
    magic = bytes(buffer[:4])
    if magic == _MAGIC2:
        # bytes indexing is faster than memoryview indexing; only keep
        # a view when the caller handed us one (zero-copy container
        # slices) or a mutable buffer.
        view = buffer if type(buffer) is bytes else memoryview(buffer)
        value, pos = _decode2(view, 4, len(view), 0, [])
        if pos != len(view):
            raise CodecError(
                f"{len(view) - pos} trailing bytes after EWC2 value")
        return value
    if magic != _MAGIC:
        raise CodecError("truncated or foreign buffer (bad magic)")
    buffer = bytes(buffer)
    try:
        obj = json.loads(buffer[4:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError,
            RecursionError) as exc:
        raise CodecError(f"truncated or malformed wire document: {exc}") \
            from exc
    try:
        return decode_value(obj)
    except RecursionError as exc:
        raise CodecError("nesting too deep to decode") from exc


# Packet/header classes, bound lazily (repro.net.message imports this
# module; a per-call ``from ... import`` would pay a sys.modules probe
# on every packet).
_Packet = _GroupcastHeader = _MultiStamp = None


def _bind_packet_types() -> None:
    global _Packet, _GroupcastHeader, _MultiStamp
    from repro.net.message import GroupcastHeader, MultiStamp, Packet
    _Packet = Packet
    _GroupcastHeader = GroupcastHeader
    _MultiStamp = MultiStamp


# Packet frame header flag bits (EWC2).
_F_SEQUENCED = 0x01
_F_HAS_DST = 0x02
_F_HAS_GROUPCAST = 0x04
_F_HAS_MULTISTAMP = 0x08
_F_HAS_TRACE = 0x10


def encode_packet(packet: Any, wire: str = "ewc1") -> bytes:
    """Serialize a full :class:`~repro.net.message.Packet` envelope
    (headers + payload) for a real transport or a paranoid round-trip."""
    if _Packet is None:
        _bind_packet_types()
    if type(packet) is not _Packet:
        raise CodecError(f"expected Packet, got {type(packet).__name__}")
    if wire == "ewc1":
        envelope = ["t", packet.src, packet.dst,
                    encode_value(packet.payload),
                    encode_value(packet.groupcast),
                    encode_value(packet.multistamp), packet.sequenced,
                    packet.packet_id, packet.trace_id]
        try:
            body = json.dumps(envelope, separators=(",", ":"),
                              allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot serialize packet: {exc}") from exc
        return _MAGIC + body.encode("utf-8")
    check_wire(wire)
    flags = 0
    if packet.sequenced:
        flags |= _F_SEQUENCED
    if packet.dst is not None:
        flags |= _F_HAS_DST
    if packet.groupcast is not None:
        flags |= _F_HAS_GROUPCAST
    if packet.multistamp is not None:
        flags |= _F_HAS_MULTISTAMP
    if packet.trace_id is not None:
        flags |= _F_HAS_TRACE
    out = bytearray(_MAGIC2)
    append = out.append
    append(_T_PACKET)
    append(flags)
    # Header varints are written inline for the single-byte case —
    # packet ids, group ids, epochs and sequence numbers are small in
    # steady state, and the helper call is most of the cost.
    z = packet.packet_id
    z = z << 1 if z >= 0 else ((-z) << 1) - 1
    append(z) if z < 0x80 else _write_uvarint(out, z)
    if packet.trace_id is not None:
        z = packet.trace_id
        z = z << 1 if z >= 0 else ((-z) << 1) - 1
        append(z) if z < 0x80 else _write_uvarint(out, z)
    src = packet.src.encode("utf-8")
    n = len(src)
    append(n) if n < 0x80 else _write_uvarint(out, n)
    out += src
    if packet.dst is not None:
        dst = packet.dst.encode("utf-8")
        n = len(dst)
        append(n) if n < 0x80 else _write_uvarint(out, n)
        out += dst
    if packet.groupcast is not None:
        groups = packet.groupcast.groups
        n = len(groups)
        append(n) if n < 0x80 else _write_uvarint(out, n)
        for gid in groups:
            z = gid << 1 if gid >= 0 else ((-gid) << 1) - 1
            append(z) if z < 0x80 else _write_uvarint(out, z)
    if packet.multistamp is not None:
        stamp = packet.multistamp
        z = stamp.epoch
        z = z << 1 if z >= 0 else ((-z) << 1) - 1
        append(z) if z < 0x80 else _write_uvarint(out, z)
        stamps = stamp.stamps
        n = len(stamps)
        append(n) if n < 0x80 else _write_uvarint(out, n)
        for gid, seq in stamps:
            z = gid << 1 if gid >= 0 else ((-gid) << 1) - 1
            append(z) if z < 0x80 else _write_uvarint(out, z)
            z = seq << 1 if seq >= 0 else ((-seq) << 1) - 1
            append(z) if z < 0x80 else _write_uvarint(out, z)
    _encode2(out, packet.payload, 0, {})
    return bytes(out)


def _read_str(buf, pos: int, end: int) -> tuple[str, int]:
    length, pos = _read_uvarint(buf, pos, end)
    stop = pos + length
    if stop > end:
        raise CodecError("truncated EWC2 string")
    try:
        return str(buf[pos:stop], "utf-8"), stop
    except UnicodeDecodeError as exc:
        raise CodecError(f"malformed UTF-8 string body: {exc}") from exc


def decode_packet(buffer: bytes) -> Any:
    """Inverse of :func:`encode_packet` (wire format auto-detected).
    The decoded packet keeps the sender-assigned
    ``packet_id``/``trace_id`` so causal tracing and sequencer
    bookkeeping are stable across the wire."""
    if _Packet is None:
        _bind_packet_types()
    if not isinstance(buffer, (bytes, bytearray, memoryview)):
        raise CodecError(f"expected bytes, got {type(buffer).__name__}")
    if len(buffer) >= 5 and bytes(buffer[:4]) == _MAGIC2:
        view = buffer if type(buffer) is bytes else memoryview(buffer)
        end = len(view)
        if view[4] != _T_PACKET:
            raise CodecError("EWC2 frame is not a packet envelope")
        if end < 6:
            raise CodecError("truncated EWC2 packet frame")
        flags = view[5]
        pos = 6
        # Header varints are read inline for the single-byte case,
        # mirroring the encode side.
        if pos < end and view[pos] < 0x80:
            b = view[pos]
            packet_id = (b >> 1) ^ -(b & 1)
            pos += 1
        else:
            packet_id, pos = _read_svarint(view, pos, end)
        trace_id = None
        if flags & _F_HAS_TRACE:
            if pos < end and view[pos] < 0x80:
                b = view[pos]
                trace_id = (b >> 1) ^ -(b & 1)
                pos += 1
            else:
                trace_id, pos = _read_svarint(view, pos, end)
        src, pos = _read_str(view, pos, end)
        dst = None
        if flags & _F_HAS_DST:
            dst, pos = _read_str(view, pos, end)
        groupcast = None
        if flags & _F_HAS_GROUPCAST:
            if pos < end and view[pos] < 0x80:
                count = view[pos]
                pos += 1
            else:
                count, pos = _read_uvarint(view, pos, end)
            groups = []
            for _ in range(count):
                if pos < end and view[pos] < 0x80:
                    b = view[pos]
                    gid = (b >> 1) ^ -(b & 1)
                    pos += 1
                else:
                    gid, pos = _read_svarint(view, pos, end)
                groups.append(gid)
            try:
                groupcast = _GroupcastHeader(tuple(groups))
            except ValueError as exc:
                raise CodecError(f"malformed groupcast header: {exc}") \
                    from exc
        multistamp = None
        if flags & _F_HAS_MULTISTAMP:
            if pos < end and view[pos] < 0x80:
                b = view[pos]
                epoch = (b >> 1) ^ -(b & 1)
                pos += 1
            else:
                epoch, pos = _read_svarint(view, pos, end)
            if pos < end and view[pos] < 0x80:
                count = view[pos]
                pos += 1
            else:
                count, pos = _read_uvarint(view, pos, end)
            stamps = []
            for _ in range(count):
                if pos < end and view[pos] < 0x80:
                    b = view[pos]
                    gid = (b >> 1) ^ -(b & 1)
                    pos += 1
                else:
                    gid, pos = _read_svarint(view, pos, end)
                if pos < end and view[pos] < 0x80:
                    b = view[pos]
                    seq = (b >> 1) ^ -(b & 1)
                    pos += 1
                else:
                    seq, pos = _read_svarint(view, pos, end)
                stamps.append((gid, seq))
            multistamp = _MultiStamp(epoch=epoch, stamps=tuple(stamps))
        payload, pos = _decode2(view, pos, end, 0, [])
        if pos != end:
            raise CodecError(
                f"{end - pos} trailing bytes after EWC2 packet frame")
        packet = _object_new(_Packet)
        packet.src = src
        packet.dst = dst
        packet.payload = payload
        packet.groupcast = groupcast
        packet.multistamp = multistamp
        packet.sequenced = bool(flags & _F_SEQUENCED)
        packet.packet_id = packet_id
        packet.trace_id = trace_id
        return packet

    envelope = decode_message(buffer)
    if not isinstance(envelope, tuple) or len(envelope) != 8:
        raise CodecError(f"malformed packet envelope: {envelope!r}")
    (src, dst, payload, groupcast, multistamp, sequenced,
     packet_id, trace_id) = envelope
    if groupcast is not None and type(groupcast) is not _GroupcastHeader:
        raise CodecError(f"malformed groupcast header: {groupcast!r}")
    if multistamp is not None and type(multistamp) is not _MultiStamp:
        raise CodecError(f"malformed multi-stamp: {multistamp!r}")
    packet = _object_new(_Packet)
    packet.src = src
    packet.dst = dst
    packet.payload = payload
    packet.groupcast = groupcast
    packet.multistamp = multistamp
    packet.sequenced = bool(sequenced)
    packet.packet_id = packet_id
    packet.trace_id = trace_id
    return packet


# -- multi-frame datagram container (EWCB) ---------------------------------

def encode_datagram(frames: list[bytes]) -> bytes:
    """Pack encoded packet frames into one datagram. A single frame is
    passed through unchanged (no container overhead); several frames
    get the length-prefixed EWCB container."""
    if not frames:
        raise CodecError("cannot encode an empty datagram")
    if len(frames) == 1:
        return frames[0]
    out = bytearray(_MAGIC_BATCH)
    _write_uvarint(out, len(frames))
    for frame in frames:
        _write_uvarint(out, len(frame))
        out += frame
    return bytes(out)


def decode_datagram(buffer: bytes) -> list:
    """Decode one received datagram into its packets: either a bare
    EWC1/EWC2 packet frame or an EWCB container of several. Frames are
    sliced out of the receive buffer as memoryviews (zero-copy); each
    slice is decoded with :func:`decode_packet`."""
    if not isinstance(buffer, (bytes, bytearray, memoryview)):
        raise CodecError(f"expected bytes, got {type(buffer).__name__}")
    if len(buffer) < 4 or bytes(buffer[:4]) != _MAGIC_BATCH:
        return [decode_packet(buffer)]
    view = memoryview(buffer)
    end = len(view)
    count, pos = _read_uvarint(view, 4, end)
    if count == 0:
        raise CodecError("EWCB container with zero frames")
    if count > MAX_DATAGRAM_FRAMES:
        raise CodecError(f"EWCB container claims {count} frames")
    packets = []
    for _ in range(count):
        length, pos = _read_uvarint(view, pos, end)
        stop = pos + length
        if stop > end:
            raise CodecError("truncated EWCB frame")
        packets.append(decode_packet(view[pos:stop]))
        pos = stop
    if pos != end:
        raise CodecError(f"{end - pos} trailing bytes after EWCB frames")
    return packets


# -- registry population --------------------------------------------------

_registry_loaded = False


def _ensure_registry() -> None:
    """Register every wire dataclass in the repository. Deferred (and
    import-cycle safe) because the protocol modules themselves import
    nothing from the codec."""
    global _registry_loaded
    if _registry_loaded:
        return
    _registry_loaded = True

    from repro.baselines import granola, lockstore, ntur, tapir
    from repro.core import log as core_log
    from repro.core import messages as core_messages
    from repro.core import transaction
    from repro.net import chainseq, controller, message
    from repro.replication import log as replication_log
    from repro.replication import vr

    register_messages([
        # network-layer headers
        message.GroupcastHeader,
        message.MultiStamp,
        # transaction identities
        transaction.TxnId,
        transaction.SlotId,
        transaction.IndependentTransaction,
        core_log.LogEntry,
        replication_log.ReplicatedLogEntry,
        # Eris protocol (§6)
        core_messages.IndependentTxnRequest,
        core_messages.TxnReply,
        core_messages.TxnReplyBatch,
        core_messages.PeerTxnRequest,
        core_messages.PeerTxnResponse,
        core_messages.TxnRecord,
        core_messages.FindTxn,
        core_messages.TxnRequestMsg,
        core_messages.HasTxn,
        core_messages.TempDroppedTxn,
        core_messages.TxnFound,
        core_messages.TxnDropped,
        core_messages.ViewChange,
        core_messages.StartView,
        core_messages.EpochChangeReq,
        core_messages.EpochStateRequest,
        core_messages.EpochState,
        core_messages.StartEpoch,
        core_messages.StartEpochAck,
        core_messages.ReconRead,
        core_messages.ReconReply,
        core_messages.SyncLog,
        core_messages.SyncAck,
        # coordination-free fast paths
        core_messages.CommutativeTxnRequest,
        core_messages.AppliedUpto,
        core_messages.FastReadRequest,
        core_messages.FastReadReply,
        # control plane
        controller.SequencerPing,
        controller.SequencerPong,
        controller.EpochInstall,
        # chain-replicated sequencer
        chainseq.ChainForward,
        chainseq.ChainForwardBatch,
        chainseq.ChainStateRequest,
        chainseq.ChainState,
        chainseq.ChainInstall,
        chainseq.ChainInstallAck,
        # Viewstamped Replication
        vr.VRPrepare,
        vr.VRPrepareOK,
        vr.VRCommit,
        vr.VRStateRequest,
        vr.VRStateTransfer,
        vr.VRStartViewChange,
        vr.VRDoViewChange,
        vr.VRStartView,
        # Lock-Store
        lockstore.LSPrepare,
        lockstore.LSVote,
        lockstore.LSDecision,
        lockstore.LSAck,
        # Granola
        granola.GRequest,
        granola.GVote,
        granola.GReply,
        granola.GLockPrepare,
        granola.GLockReply,
        granola.GLockCommit,
        granola.GLockAck,
        # NT-UR
        ntur.NTURExecute,
        ntur.NTURRead,
        ntur.NTURWrite,
        ntur.NTURReply,
        # TAPIR
        tapir.TPrepare,
        tapir.TPrepareReply,
        tapir.TDecision,
        tapir.TDecisionAck,
        tapir.TSlowConfirm,
        tapir.TSlowConfirmAck,
        tapir.TFinalize,
    ])
