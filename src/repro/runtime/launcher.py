"""Process-per-node launcher and its control-plane protocol.

The :class:`ClusterLauncher` turns a :class:`~repro.harness.cluster.
ClusterConfig` into a real multi-process deployment: one OS process per
role (``python -m repro node --role ...``), supervised from the driver
process. Coordination runs over a tiny TCP control plane — length-
prefixed frames carrying the same EWC-codec dataclasses the data plane
uses, so the control protocol gets the codec's validation and
versioning for free.

Bootstrap is a two-phase port-map exchange, because UDP ports are
ephemeral (no static assignment could survive collisions across
processes):

1. every worker binds its endpoints' sockets, connects back to the
   launcher, and reports ``address -> port`` in :class:`WorkerHello`;
2. the launcher merges all hellos with the driver's own local ports
   and broadcasts the complete map in :class:`ClusterStart`; workers
   install it, bring their transport up, and ack.

After the workload, :class:`StateRequest` collects per-replica
:class:`~repro.harness.snapshot.ReplicaSnapshot` payloads (the
state-collection RPC behind the distributed §6.7 checkers), and
:class:`ClusterStop` asks workers to export their trace/metrics shards
and exit cleanly. Supervision is poll-based: a worker that exits
before it was told to is a failure, and the launcher tears the rest
down and raises.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import struct
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ExperimentError
from repro.harness.snapshot import ReplicaSnapshot
from repro.runtime.codec import (
    CodecError,
    decode_message,
    encode_message,
    register_messages,
)

#: Control frames above this size are treated as protocol corruption
#: (a length prefix read out of sync would otherwise allocate wildly).
_MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


# -- control-plane messages ------------------------------------------------

@dataclass(frozen=True)
class WorkerHello:
    """Worker -> launcher, immediately after binding its sockets."""

    role: str
    rank: int
    pid: int
    #: (protocol address, bound UDP port) for every local endpoint,
    #: including the runtime-control endpoint ``_rt.<rank>``.
    ports: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class ClusterStart:
    """Launcher -> every worker: the complete merged port map."""

    host: str
    port_map: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class StartAck:
    rank: int


@dataclass(frozen=True)
class StateRequest:
    """Launcher -> worker: quiesce for ``drain`` seconds, then report
    end-of-run state."""

    drain: float


@dataclass(frozen=True)
class StateReply:
    rank: int
    role: str
    snapshots: tuple[ReplicaSnapshot, ...]
    #: Runtime counters (name, value), aggregated into the smoke result.
    counters: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class ClusterStop:
    reason: str = ""


@dataclass(frozen=True)
class StopAck:
    rank: int
    trace_events: int = 0
    metrics_samples: int = 0


register_messages([WorkerHello, ClusterStart, StartAck, StateRequest,
                   StateReply, ClusterStop, StopAck])


# -- framing ---------------------------------------------------------------

def write_frame(writer: asyncio.StreamWriter, message: Any) -> None:
    """Queue one length-prefixed EWC1 control frame."""
    data = encode_message(message, "ewc1")
    writer.write(_LEN.pack(len(data)) + data)


async def read_frame(reader: asyncio.StreamReader) -> Any:
    """Read one control frame; raises ``IncompleteReadError`` on EOF."""
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise CodecError(f"control frame of {length} bytes exceeds "
                         f"{_MAX_FRAME_BYTES}")
    return decode_message(await reader.readexactly(length))


# -- the launcher ----------------------------------------------------------

@dataclass
class _Worker:
    rank: int
    role: str
    proc: subprocess.Popen
    log_path: str
    hello: Optional[WorkerHello] = None
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    stopped: bool = field(default=False)

    @property
    def recorder_path(self) -> str:
        return os.path.join(os.path.dirname(self.log_path),
                            f"recorder-{self.rank}.jsonl")


class ClusterLauncher:
    """Spawns, coordinates, and supervises one worker process per role.

    All coroutine methods must run on the driver runtime's event loop
    (``runtime.aloop``) so control-plane I/O interleaves with the
    driver's own UDP traffic on a single thread.
    """

    def __init__(self, run_dir: str, host: str = "127.0.0.1"):
        self.run_dir = run_dir
        self.host = host
        self.control_port: Optional[int] = None
        self.workers: dict[int, _Worker] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._pending_conns: list[tuple[WorkerHello,
                                        asyncio.StreamReader,
                                        asyncio.StreamWriter]] = []
        os.makedirs(run_dir, exist_ok=True)

    # -- control server ----------------------------------------------------
    async def open(self) -> int:
        """Start the control-plane listener; returns its TCP port."""
        self._server = await asyncio.start_server(
            self._on_connect, self.host, 0)
        self.control_port = self._server.sockets[0].getsockname()[1]
        return self.control_port

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            hello = await read_frame(reader)
        except (asyncio.IncompleteReadError, CodecError, OSError):
            writer.close()
            return
        if not isinstance(hello, WorkerHello):
            writer.close()
            return
        self._pending_conns.append((hello, reader, writer))

    # -- spawning ----------------------------------------------------------
    def spawn(self, roles: list[str], spec: dict) -> None:
        """One worker process per role; ranks start at 1 (the driver is
        rank 0). Worker stdout/stderr go to per-rank log files in the
        run directory so a post-mortem can see every process's view."""
        if self.control_port is None:
            raise ExperimentError("launcher control server not open")
        import repro
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (src_root + os.pathsep + existing
                             if existing else src_root)
        for rank, role in enumerate(roles, start=1):
            log_path = os.path.join(
                self.run_dir, f"worker-{rank}-{role.replace(':', '.')}.log")
            log = open(log_path, "w")
            try:
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro", "node",
                     "--role", role, "--rank", str(rank),
                     "--control-host", self.host,
                     "--control-port", str(self.control_port),
                     "--spec", json.dumps(spec)],
                    stdout=log, stderr=subprocess.STDOUT, env=env)
            finally:
                log.close()
            self.workers[rank] = _Worker(rank=rank, role=role, proc=proc,
                                         log_path=log_path)

    # -- bootstrap ---------------------------------------------------------
    async def await_hellos(self, timeout: float = 30.0) -> None:
        """Wait for every spawned worker to connect and report ports."""
        deadline = asyncio.get_event_loop().time() + timeout
        expected = len(self.workers)
        connected = 0
        while connected < expected:
            while self._pending_conns:
                hello, reader, writer = self._pending_conns.pop()
                worker = self.workers.get(hello.rank)
                if worker is None or worker.hello is not None:
                    writer.close()
                    continue
                worker.hello = hello
                worker.reader = reader
                worker.writer = writer
                connected += 1
            if connected >= expected:
                break
            self.check_children()
            if asyncio.get_event_loop().time() > deadline:
                missing = [w.role for w in self.workers.values()
                           if w.hello is None]
                raise ExperimentError(
                    f"workers never reported in: {missing} "
                    f"(logs in {self.run_dir})")
            await asyncio.sleep(0.01)

    def merged_port_map(self, driver_ports: dict[str, int]) -> dict[str,
                                                                    int]:
        """Union of every worker's reported ports and the driver's own
        local ports; duplicate protocol addresses are a wiring bug."""
        merged: dict[str, int] = dict(driver_ports)
        for worker in self.workers.values():
            for address, port in worker.hello.ports:
                if address in merged:
                    raise ExperimentError(
                        f"address {address!r} bound by two processes")
                merged[address] = port
        return merged

    async def broadcast_start(self, port_map: dict[str, int],
                              timeout: float = 30.0) -> None:
        """Ship the merged map; wait for every worker's ack."""
        start = ClusterStart(host=self.host,
                             port_map=tuple(sorted(port_map.items())))
        for worker in self.workers.values():
            write_frame(worker.writer, start)
            await worker.writer.drain()
        for worker in self.workers.values():
            ack = await asyncio.wait_for(read_frame(worker.reader), timeout)
            if not isinstance(ack, StartAck) or ack.rank != worker.rank:
                raise ExperimentError(
                    f"worker {worker.role} sent {ack!r} instead of a "
                    f"start ack")

    # -- supervision -------------------------------------------------------
    def check_children(self) -> None:
        """Raise if any worker exited before it was told to stop. The
        raising path names the dead worker's log and recorder-dump
        locations: the child dumps its flight-recorder ring on the way
        down (SIGTERM / crash handler), which is the evidence a
        post-mortem starts from."""
        for worker in self.workers.values():
            code = worker.proc.poll()
            if code is not None and not worker.stopped:
                self.emergency_teardown()
                dump = worker.recorder_path
                dump_note = (f"; recorder dump: {dump}"
                             if os.path.exists(dump) else "")
                raise ExperimentError(
                    f"worker {worker.role} (rank {worker.rank}, pid "
                    f"{worker.proc.pid}) exited with code {code} "
                    f"mid-run; log: {worker.log_path}{dump_note}")

    # -- state collection --------------------------------------------------
    async def collect_states(self, drain: float,
                             timeout: float = 30.0) -> list[StateReply]:
        """The end-of-run state-collection RPC: every worker quiesces
        for ``drain`` seconds, snapshots its replicas, and replies.
        The driver's own loop keeps running while it awaits, so its
        in-flight client traffic drains over the same interval."""
        request = StateRequest(drain=drain)
        for worker in self.workers.values():
            write_frame(worker.writer, request)
            await worker.writer.drain()
        replies = []
        for worker in self.workers.values():
            reply = await asyncio.wait_for(read_frame(worker.reader),
                                           timeout + drain)
            if not isinstance(reply, StateReply):
                raise ExperimentError(
                    f"worker {worker.role} sent {reply!r} instead of a "
                    f"state reply")
            replies.append(reply)
        return replies

    # -- shutdown ----------------------------------------------------------
    async def shutdown(self, timeout: float = 15.0) -> list[StopAck]:
        """Graceful stop: workers export their shards, ack, and exit 0."""
        acks = []
        for worker in self.workers.values():
            if worker.writer is None:
                continue
            worker.stopped = True
            write_frame(worker.writer, ClusterStop())
            await worker.writer.drain()
        for worker in self.workers.values():
            if worker.reader is None:
                continue
            try:
                ack = await asyncio.wait_for(read_frame(worker.reader),
                                             timeout)
                if isinstance(ack, StopAck):
                    acks.append(ack)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    CodecError, OSError):
                pass
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        for worker in self.workers.values():
            while worker.proc.poll() is None and loop.time() < deadline:
                await asyncio.sleep(0.01)
            if worker.proc.poll() is None:
                worker.proc.kill()
                worker.proc.wait()
        self._close_server()
        return acks

    def emergency_teardown(self) -> None:
        """Non-graceful teardown after a failure: SIGTERM everyone (so
        the survivors still dump their recorder rings), then SIGKILL
        stragglers. Synchronous on purpose — callable from except/
        finally blocks outside the event loop."""
        for worker in self.workers.values():
            worker.stopped = True
            if worker.proc.poll() is None:
                try:
                    worker.proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        for worker in self.workers.values():
            try:
                worker.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
        self._close_server()

    def _close_server(self) -> None:
        for worker in self.workers.values():
            if worker.writer is not None:
                worker.writer.close()
                worker.writer = None
        if self._server is not None:
            self._server.close()
            self._server = None
