"""Asyncio + real UDP sockets: the loopback backend of the runtime.

Every registered endpoint gets its own UDP socket bound to
``127.0.0.1:<ephemeral>``; a logical-address → port map plays the role
of DNS. Packets are serialized with the typed wire codec
(:mod:`repro.runtime.codec`), cross the kernel's loopback path, and are
decoded on receive — so unlike the simulator nothing is ever shared by
reference, and the exact bytes a real deployment would emit are what
travels.

Groupcast is provided the way §5.4's end-host deployment provides it:
a sequencer endpoint (the unmodified :class:`~repro.net.sequencer.
MultiSequencer`) receives sequenced groupcasts over its own socket,
stamps them, and fans unicast copies back out. The SDN controller's
"route installation" becomes an entry in this runtime's routing state.

Backend properties (full matrix in DESIGN.md):

- **delivery** — whatever the kernel does on loopback: effectively
  reliable and FIFO, but UDP makes no promises and neither do we.
- **groupcast** — user-space sequencer endpoint over UDP.
- **clock** — the asyncio event loop's monotonic clock (real seconds).
- **determinism** — none; scheduling is the OS's business here. The
  §6.7 safety checkers still must pass on every run.

The runtime is single-process and single-threaded: drive it with
:meth:`AsyncioUdpRuntime.run_for` / :meth:`run_until` from ordinary
synchronous harness code. Protocol callbacks run inside the asyncio
loop exactly as they run inside the simulated event loop.

Two performance knobs, both off by default:

- ``wire="ewc2"`` serializes frames with the compact binary format
  instead of the tagged-JSON reference codec (same registry, same
  message set; receivers auto-detect by magic).
- ``batch_frames=N`` packs up to N frames per datagram in a
  length-prefixed EWCB container, flushed once per event-loop
  iteration, so a sequencer wakeup's burst of stamped copies (or a
  replica's coalesced replies) shares syscalls and headers.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.net.groupcast import GroupMembership
from repro.net.message import Address, Packet
from repro.runtime.codec import (
    MAX_DATAGRAM_FRAMES,
    CodecError,
    check_wire,
    decode_datagram,
    encode_datagram,
    encode_packet,
)
from repro.runtime.interface import Runtime, TimerHandle
from repro.sim.randomness import SplitRandom

#: Stay under the 65,507-byte UDP payload ceiling with headroom: a
#: batch flushes early once its frames would exceed this many bytes.
_MAX_DATAGRAM_BYTES = 60_000


class _AsyncioTimer:
    """Restartable one-shot timer over ``loop.call_later`` with the
    same semantics as the simulator's :class:`repro.sim.process.Timer`:
    ``start()`` (re)arms, discarding any previous deadline."""

    def __init__(self, loop: asyncio.AbstractEventLoop, delay: float,
                 fn: Callable[..., Any], *args: Any):
        self._loop = loop
        self.delay = delay
        self._fn = fn
        self._args = args
        self._handle: Optional[asyncio.TimerHandle] = None

    def start(self, delay: Optional[float] = None) -> None:
        d = self.delay if delay is None else delay
        if self._handle is not None:
            self._handle.cancel()
        self._handle = self._loop.call_later(d, self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def restart(self, delay: Optional[float] = None) -> None:
        self.start(delay)

    @property
    def active(self) -> bool:
        return self._handle is not None and not self._handle.cancelled()

    def _fire(self) -> None:
        self._handle = None
        self._fn(*self._args)


class _AsyncioPeriodic:
    """Periodic timer matching :class:`repro.sim.process.PeriodicTimer`."""

    def __init__(self, loop: asyncio.AbstractEventLoop, period: float,
                 fn: Callable[..., Any], *args: Any):
        self._loop = loop
        self.period = period
        self._fn = fn
        self._args = args
        self._handle: Optional[asyncio.TimerHandle] = None
        self._stopped = True

    def start(self, initial_delay: Optional[float] = None) -> None:
        self.stop()
        self._stopped = False
        delay = self.period if initial_delay is None else initial_delay
        self._handle = self._loop.call_later(delay, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        return not self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self._handle = self._loop.call_later(self.period, self._fire)
        self._fn(*self._args)


class _NodeProtocol(asyncio.DatagramProtocol):
    """Receive path of one endpoint's socket."""

    def __init__(self, runtime: "AsyncioUdpRuntime", address: Address):
        self.runtime = runtime
        self.address = address

    def datagram_received(self, data: bytes, addr) -> None:
        self.runtime._on_datagram(self.address, data)

    def error_received(self, exc: OSError) -> None:
        self.runtime.socket_errors += 1


class _EgressProtocol(asyncio.DatagramProtocol):
    """Send-side protocol: asyncio's DatagramTransport never raises
    EAGAIN from ``sendto`` (it buffers internally and retries), so
    kernel-reported errors — ICMP port-unreachable, buffer exhaustion —
    surface asynchronously through ``error_received``. Counting them is
    the only honest way to observe send failures on this transport."""

    def __init__(self, runtime: "AsyncioUdpRuntime"):
        self.runtime = runtime

    def error_received(self, exc: OSError) -> None:
        self.runtime.socket_errors += 1


class AsyncioUdpRuntime(Runtime):
    """Runtime over real UDP sockets on loopback, driven by asyncio."""

    backend = "asyncio-udp"

    def __init__(self, seed: int = 0, host: str = "127.0.0.1",
                 wire: str = "ewc1", batch_frames: int = 1):
        super().__init__()
        self.host = host
        self.wire = check_wire(wire)
        if not 1 <= batch_frames <= MAX_DATAGRAM_FRAMES:
            raise NetworkError(
                f"batch_frames must be in [1, {MAX_DATAGRAM_FRAMES}]: "
                f"{batch_frames}")
        #: Frames packed per datagram (1 = one packet per datagram, the
        #: historical behaviour; >1 enables EWCB containers).
        self.batch_frames = batch_frames
        self.aloop = asyncio.new_event_loop()
        self.base_rng = SplitRandom(seed)
        self.groups = GroupMembership()
        self.sequencer_address: Optional[Address] = None
        self._endpoints: dict[Address, Any] = {}
        self._socks: dict[Address, socket.socket] = {}
        self._ports: dict[Address, int] = {}
        self._transports: dict[Address, asyncio.DatagramTransport] = {}
        self._egress: Optional[asyncio.DatagramTransport] = None
        self._pending_sends: list[tuple[Address, bytes]] = []
        # Per-destination frame queues (keyed by resolved socket
        # address), drained by one call_soon callback per loop
        # iteration so every frame queued within a callback burst
        # shares a datagram (batch_frames > 1 only).
        self._frame_queues: dict[tuple[str, int], list[bytes]] = {}
        self._flush_scheduled = False
        self._started = False
        self._closed = False
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.decode_errors = 0
        #: Per-recipient copies made by fan_out. Mirrors the simulated
        #: fabric's counter of the same name: ``packets_sent`` counts
        #: protocol-level sends, fan-out multiplication is accounted
        #: here — previously these copies were invisible to both.
        self.fanout_copies = 0
        #: Encoded packet frames handed to the transport (each frame is
        #: one packet; with batching several frames share a datagram).
        self.frames_sent = 0
        #: Actual datagrams written to the socket.
        self.datagrams_sent = 0
        #: Synchronous ``sendto`` failures (OSError raised in-line).
        self.send_errors = 0
        #: Asynchronous socket errors the kernel reported after the
        #: fact (``error_received``: ICMP unreachable, ENOBUFS...).
        self.socket_errors = 0
        self.tracer = None
        # Health instrumentation, attached by instrument(); each hot
        # path pays one ``is not None`` check while unattached.
        self._hist_datagram_bytes = None
        self._hist_batch_depth = None
        self._hist_loop_lag = None
        self._lag_probe_interval = 0.005
        self._lag_probe_expected: Optional[float] = None

    # -- clock / scheduling / randomness -----------------------------------
    @property
    def now(self) -> float:
        return self.aloop.time()

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any):
        return self.aloop.call_later(max(0.0, delay), fn, *args)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any):
        return self.aloop.call_at(time, fn, *args)

    def timer(self, delay: float, fn: Callable[..., Any],
              *args: Any) -> TimerHandle:
        return _AsyncioTimer(self.aloop, delay, fn, *args)

    def periodic(self, period: float, fn: Callable[..., Any],
                 *args: Any) -> TimerHandle:
        return _AsyncioPeriodic(self.aloop, period, fn, *args)

    def rng_stream(self, name: str) -> SplitRandom:
        return self.base_rng.split(name)

    # -- registration ------------------------------------------------------
    def register(self, node: Any) -> None:
        address = node.address
        if address in self._endpoints:
            raise NetworkError(f"duplicate endpoint address {address!r}")
        # Bind synchronously so the logical address resolves (and the
        # kernel buffers early arrivals) before the asyncio transport
        # is attached at start().
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.bind((self.host, 0))
        self._endpoints[address] = node
        self._socks[address] = sock
        self._ports[address] = sock.getsockname()[1]
        if self._started:
            if self.aloop.is_running():
                self.aloop.create_task(self._open_endpoint(address))
            else:
                self.aloop.run_until_complete(self._open_endpoint(address))

    def unregister(self, address: Address) -> None:
        self._endpoints.pop(address, None)
        self._ports.pop(address, None)
        transport = self._transports.pop(address, None)
        if transport is not None:
            transport.close()
        sock = self._socks.pop(address, None)
        if sock is not None and transport is None:
            sock.close()

    def endpoint(self, address: Address) -> Any:
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"unknown endpoint {address!r}") from None

    def has_endpoint(self, address: Address) -> bool:
        return address in self._endpoints

    # -- routing (exercised by the SDN controller) -------------------------
    def install_sequencer_route(self, address: Optional[Address]) -> None:
        self.sequencer_address = address

    # -- sending -----------------------------------------------------------
    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        if self.tracer is not None:
            self.tracer.packet_send(packet)
        if packet.groupcast is not None and packet.multistamp is None:
            self._route_groupcast(packet)
        else:
            if packet.dst is None:
                raise NetworkError("unicast packet without destination")
            self._transmit(packet)

    def fan_out(self, packet: Packet,
                destinations: tuple[Address, ...]) -> None:
        self.fanout_copies += len(destinations)
        for dst in destinations:
            self._transmit(packet.copy_to(dst))

    def _route_groupcast(self, packet: Packet) -> None:
        if not packet.sequenced:
            for group in packet.groupcast.groups:
                self.fan_out(packet, self.groups.members(group))
            return
        if (self.sequencer_address is None
                or self._resolve(self.sequencer_address) is None):
            self._drop(packet, "no-sequencer-route")
            return
        self._transmit(packet.copy_to(self.sequencer_address))

    def _drop(self, packet: Packet, reason: str) -> None:
        self.packets_dropped += 1
        if self.tracer is not None:
            self.tracer.packet_drop(packet, reason)

    def _resolve(self, dst: Optional[Address]) -> Optional[tuple[str, int]]:
        """Logical address → socket address, or ``None`` if unknown.

        The single place name resolution happens: this runtime knows
        only its locally bound endpoints, while the multi-process
        subclass overlays a remote host/port map distributed by the
        launcher. Everything downstream (transmit, batching, pending
        flush) is location-transparent."""
        port = self._ports.get(dst)
        if port is None:
            return None
        return (self.host, port)

    def _transmit(self, packet: Packet) -> None:
        addr = self._resolve(packet.dst)
        if addr is None:
            self._drop(packet, "dead-destination")
            return
        data = encode_packet(packet, self.wire)
        if self.tracer is not None:
            self.tracer.packet_tx(packet)
        if not self._egress_up():
            # Transport not up yet (e.g. the controller pings its
            # sequencers at build time); flushed by start().
            self._pending_sends.append((packet.dst, data))
            return
        self.frames_sent += 1
        if self.batch_frames <= 1:
            self._sendto(data, addr)
            return
        # Batching: park the frame on the destination's queue and drain
        # every queue in one call_soon callback, so all frames queued
        # within the current callback burst (a sequencer wakeup, a
        # chain pipeline flush, a reply coalesce) share datagrams.
        self._frame_queues.setdefault(addr, []).append(data)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.aloop.call_soon(self._flush_frames)

    def _egress_up(self) -> bool:
        """Whether the send path is ready (subclasses with a different
        egress mechanism override this alongside :meth:`_sendto`)."""
        return self._egress is not None

    def _flush_frames(self) -> None:
        self._flush_scheduled = False
        queues, self._frame_queues = self._frame_queues, {}
        if not self._egress_up():  # stop() raced the callback
            return
        limit = self.batch_frames
        for addr, frames in queues.items():
            if self._hist_batch_depth is not None:
                self._hist_batch_depth.record(len(frames))
            chunk: list[bytes] = []
            chunk_bytes = 0
            for frame in frames:
                if chunk and (len(chunk) >= limit
                              or chunk_bytes + len(frame) > _MAX_DATAGRAM_BYTES):
                    self._sendto(encode_datagram(chunk), addr)
                    chunk = []
                    chunk_bytes = 0
                chunk.append(frame)
                chunk_bytes += len(frame)
            if chunk:
                self._sendto(encode_datagram(chunk), addr)

    def _sendto(self, data: bytes, addr: tuple[str, int]) -> None:
        """Single datagram egress point: accounting, size histogram,
        and synchronous-error counting all live here."""
        self.datagrams_sent += 1
        if self._hist_datagram_bytes is not None:
            self._hist_datagram_bytes.record(len(data))
        try:
            self._egress.sendto(data, addr)
        except OSError:
            self.send_errors += 1

    # -- receiving ---------------------------------------------------------
    def _on_datagram(self, address: Address, data: bytes) -> None:
        try:
            packets = decode_datagram(data)
        except CodecError:
            self.decode_errors += 1
            return
        node = self._endpoints.get(address)
        for packet in packets:
            if node is None:
                self._drop(packet, "dead-destination")
                continue
            self.packets_delivered += 1
            if self.tracer is not None:
                self.tracer.packet_deliver(packet)
            node.deliver(packet)

    # -- observability -----------------------------------------------------
    def instrument(self, registry) -> None:
        """Register this runtime's health metrics with ``registry``.

        Counter-style plain ints are exposed as monotone pull gauges
        (zero hot-path cost); three push histograms capture the shape
        eRPC says matters on commodity UDP — datagram sizes, batch
        queue depths, and event-loop lag (scheduled-vs-actual callback
        latency, the real-transport analog of simulated-time exactness).
        """
        registry.gauge("udp", "packets_sent",
                       lambda: self.packets_sent, monotone=True)
        registry.gauge("udp", "packets_delivered",
                       lambda: self.packets_delivered, monotone=True)
        registry.gauge("udp", "packets_dropped",
                       lambda: self.packets_dropped, monotone=True)
        registry.gauge("udp", "decode_errors",
                       lambda: self.decode_errors, monotone=True)
        registry.gauge("udp", "fanout_copies",
                       lambda: self.fanout_copies, monotone=True)
        registry.gauge("udp", "frames_sent",
                       lambda: self.frames_sent, monotone=True)
        registry.gauge("udp", "datagrams_sent",
                       lambda: self.datagrams_sent, monotone=True)
        registry.gauge("udp", "send_errors",
                       lambda: self.send_errors, monotone=True)
        registry.gauge("udp", "socket_errors",
                       lambda: self.socket_errors, monotone=True)
        registry.gauge("udp", "endpoints", lambda: len(self._endpoints))
        registry.gauge(
            "udp", "egress_buffer_bytes",
            lambda: (self._egress.get_write_buffer_size()
                     if self._egress is not None else 0))
        # Datagrams are 64 B .. 64 KB: a coarser base bucket keeps the
        # histogram readable in that range.
        self._hist_datagram_bytes = registry.histogram(
            "udp", "datagram_bytes", scale=64.0)
        self._hist_batch_depth = registry.histogram(
            "udp", "batch_queue_depth", scale=1.0)
        self._hist_loop_lag = registry.histogram("runtime", "loop_lag")
        if self._started and not self._closed:
            self._arm_lag_probe()

    def _arm_lag_probe(self) -> None:
        self._lag_probe_expected = self.now + self._lag_probe_interval
        self.aloop.call_later(self._lag_probe_interval, self._lag_probe_fire)

    def _lag_probe_fire(self) -> None:
        if self._closed or self._hist_loop_lag is None:
            return
        expected = self._lag_probe_expected
        if expected is not None:
            self._hist_loop_lag.record(max(0.0, self.now - expected))
        self._arm_lag_probe()

    # -- lifecycle ---------------------------------------------------------
    async def _open_endpoint(self, address: Address) -> None:
        sock = self._socks.get(address)
        if sock is None or address in self._transports:
            return
        transport, _ = await self.aloop.create_datagram_endpoint(
            lambda: _NodeProtocol(self, address), sock=sock)
        self._transports[address] = transport

    async def _open_all(self) -> None:
        egress = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        egress.setblocking(False)
        egress.bind((self.host, 0))
        self._egress, _ = await self.aloop.create_datagram_endpoint(
            lambda: _EgressProtocol(self), sock=egress)
        for address in list(self._endpoints):
            await self._open_endpoint(address)

    def start(self) -> None:
        """Attach asyncio transports to every bound socket and flush
        sends queued during cluster construction."""
        if self._started:
            return
        self._started = True
        self.aloop.run_until_complete(self._open_all())
        pending, self._pending_sends = self._pending_sends, []
        for dst, data in pending:
            addr = self._resolve(dst)
            if addr is not None:
                self.frames_sent += 1
                self._sendto(data, addr)
        if self._hist_loop_lag is not None:
            self._arm_lag_probe()

    def stop(self) -> None:
        """Close every transport and the event loop (irreversible)."""
        if self._closed:
            return
        self._closed = True
        self._frame_queues.clear()
        # A socket attached to a transport is OWNED by that transport:
        # the transport closes it in its own (asynchronous) close
        # callback. Hard-closing it here as well releases the fd while
        # the transport still holds it — by the time its callback runs,
        # the fd number may have been reused by a new socket, and the
        # transport would then close someone else's descriptor. Only
        # orphan sockets (bound in register() but never attached to a
        # transport, e.g. when stop() runs before start()) are closed
        # directly.
        owned = set(self._transports)
        for transport in list(self._transports.values()):
            transport.close()
        self._transports.clear()
        if self._egress is not None:
            self._egress.close()
            self._egress = None
        for address, sock in self._socks.items():
            if address not in owned:
                sock.close()
        self._socks.clear()
        if not self.aloop.is_running():
            # Let asyncio finish the transport close callbacks.
            self.aloop.run_until_complete(asyncio.sleep(0))
            self.aloop.close()

    # -- driving (synchronous harness surface) -----------------------------
    def run_for(self, duration: float) -> None:
        """Run the loop for ``duration`` real seconds."""
        self.aloop.run_until_complete(asyncio.sleep(duration))

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  poll: float = 0.002) -> bool:
        """Run the loop until ``predicate()`` holds (polled every
        ``poll`` seconds) or ``timeout`` elapses; returns whether the
        predicate held."""

        async def _wait() -> bool:
            deadline = self.aloop.time() + timeout
            while self.aloop.time() < deadline:
                if predicate():
                    return True
                await asyncio.sleep(poll)
            return predicate()

        return self.aloop.run_until_complete(_wait())
