"""Runtime/transport abstraction: one protocol stack, many fabrics.

Every protocol participant in this repository (Eris replicas and
clients, the Failure Coordinator, the sequencers, the SDN controller,
VR, and all four baselines) is written against the narrow
:class:`~repro.runtime.interface.Runtime` interface — send, groupcast,
timers, clock, seeded randomness, endpoint lifecycle — and never
against a concrete fabric. Two backends implement it:

- :mod:`repro.runtime.sim` — the discrete-event simulator (the
  repository's original fabric; deterministic, microsecond-scale).
- :mod:`repro.runtime.asyncio_udp` — real UDP sockets on loopback
  driven by asyncio, with groupcast provided by a user-space sequencer
  endpoint, exactly as §5.4's end-host deployment.

Messages crossing a real transport are serialized with the typed wire
codec in :mod:`repro.runtime.codec`; the simulator can opt into the
same round-trip per delivery ("paranoid codec" mode) to prove that no
handler relies on cross-recipient payload aliasing.
"""

from repro.runtime.codec import (
    CodecError,
    decode_message,
    decode_packet,
    encode_message,
    encode_packet,
    registered_message_types,
)
from repro.runtime.interface import Runtime, TimerHandle

__all__ = [
    "Runtime",
    "TimerHandle",
    "CodecError",
    "encode_message",
    "decode_message",
    "encode_packet",
    "decode_packet",
    "registered_message_types",
]
