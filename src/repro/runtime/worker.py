"""Worker process entry point: ``python -m repro node --role ...``.

One worker hosts one role's protocol objects (see
:mod:`repro.harness.topology`) on a :class:`~repro.runtime.udp_mp.
WorkerUdpRuntime` and follows the launcher's control-plane protocol:

1. bind sockets, connect to the launcher, send :class:`WorkerHello`;
2. wait for :class:`ClusterStart`, install the merged port map, bring
   the transport (and, for the controller role, the controller) up,
   ack;
3. serve until told to stop — the UDP data plane runs on the same
   event loop as the control connection, so protocol traffic flows
   while the worker waits for control frames;
4. on :class:`StateRequest`, quiesce and reply with replica snapshots
   and runtime counters; on :class:`ClusterStop`, export trace and
   metrics shards and exit 0.

Failure paths always leave evidence: SIGTERM and unexpected crashes
dump the flight-recorder ring to the run directory before exiting
nonzero, and a dead control connection (the launcher vanished) does
the same.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Any, Optional, Sequence

from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.sampler import MetricsSampler
from repro.obs.trace import CAUSE_ID_STRIDE, Tracer
from repro.obs.metrics import MetricsRegistry
from repro.runtime.launcher import (
    ClusterStart,
    ClusterStop,
    StartAck,
    StateReply,
    StateRequest,
    StopAck,
    WorkerHello,
    read_frame,
    write_frame,
)
from repro.runtime.udp_mp import WorkerUdpRuntime

#: Exit codes: abnormal-termination dumps use distinct codes so the
#: supervisor's error message says *how* the worker died.
EXIT_OK = 0
EXIT_CRASH = 2
EXIT_ORPHANED = 3
EXIT_SIGTERM = 143


def build_node_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli node",
        description="Run one multi-process cluster worker (spawned by "
                    "the launcher; not meant to be run by hand).")
    parser.add_argument("--role", required=True,
                        help="role string (replica:<shard>:<i>, "
                             "seq:<i>, chain:<i>, controller, fc)")
    parser.add_argument("--rank", type=int, required=True)
    parser.add_argument("--control-host", default="127.0.0.1")
    parser.add_argument("--control-port", type=int, required=True)
    parser.add_argument("--spec", required=True,
                        help="cluster spec as a JSON object")
    return parser


class Worker:
    """One role's runtime, protocol objects, and control client."""

    def __init__(self, role: str, rank: int, spec: dict):
        from repro.harness.topology import (
            build_worker_role,
            define_groups,
            eris_topology,
        )
        from repro.harness.udp_smoke import smoke_cluster_config
        from repro.store import ProcedureRegistry
        from repro.workloads import (
            Partitioner,
            register_counters_procedures,
            register_ycsb_procedures,
        )

        self.role = role
        self.rank = rank
        self.spec = spec
        self.run_dir = spec["run_dir"]
        config = smoke_cluster_config(
            n_shards=spec["shards"], n_replicas=spec["replicas"],
            seed=spec["seed"], chain=spec["chain"], wire=spec["wire"],
            batch=spec["batch"],
            fast_path=bool(spec.get("fast_path", False)))
        self.runtime = WorkerUdpRuntime(
            rank=rank, seed=config.seed, wire=config.net.wire,
            batch_frames=config.udp_batch_frames,
            timer_slack=spec.get("timer_slack", 0.0))
        self.recorder = FlightRecorder(
            capacity=spec.get("recorder_capacity", DEFAULT_CAPACITY))
        # Disjoint causal-id space per process: ids assigned here never
        # alias ids assigned by any other rank, so the driver can merge
        # the per-process shards into one causally-consistent stream.
        self.tracer = self.runtime.attach_tracer(Tracer(
            recorder=self.recorder, retain=bool(spec.get("trace")),
            cause_base=rank * CAUSE_ID_STRIDE))
        registry = ProcedureRegistry()
        register_ycsb_procedures(registry)
        # Counters procedures ride along unconditionally: workers don't
        # know which workload the driver generates, and an unused
        # registration costs nothing.
        register_counters_procedures(registry)
        partitioner = Partitioner(spec["shards"])
        topology = eris_topology(config)
        define_groups(self.runtime, topology)
        self.built = build_worker_role(role, config, topology,
                                       self.runtime, registry,
                                       partitioner, spec["keys"])
        self.metrics: Optional[MetricsRegistry] = None
        self.sampler: Optional[MetricsSampler] = None
        if spec.get("metrics"):
            self.metrics = MetricsRegistry()
            self.runtime.instrument(self.metrics)
            for sequencer in self.built["sequencers"]:
                sequencer.instrument(self.metrics)
            if self.built["fc"] is not None:
                self.built["fc"].instrument(self.metrics)
            for replica in self.built["replicas"]:
                instrument = getattr(replica, "instrument", None)
                if instrument is not None:
                    instrument(self.metrics)
            self.sampler = MetricsSampler(
                self.runtime, self.metrics,
                interval=spec.get("metrics_interval", 0.05))

    # -- shard paths -------------------------------------------------------
    def _shard_path(self, prefix: str) -> str:
        return os.path.join(self.run_dir, f"{prefix}-{self.rank}.jsonl")

    def dump_recorder(self, reason: str) -> Optional[str]:
        if not len(self.recorder):
            return None
        path = self._shard_path("recorder")
        self.recorder.dump(path, reason=reason,
                           context={"origin": "worker", "role": self.role,
                                    "rank": self.rank})
        return path

    # -- state -------------------------------------------------------------
    def _counters(self) -> tuple[tuple[str, int], ...]:
        rt = self.runtime
        return (
            ("packets_sent", rt.packets_sent),
            ("packets_delivered", rt.packets_delivered),
            ("packets_dropped", rt.packets_dropped),
            ("fanout_copies", rt.fanout_copies),
            ("frames_sent", rt.frames_sent),
            ("datagrams_sent", rt.datagrams_sent),
            ("recv_wakeups", rt.recv_wakeups),
            ("recv_datagrams", rt.recv_datagrams),
            ("decode_errors", rt.decode_errors),
            ("send_errors", rt.send_errors),
            ("socket_errors", rt.socket_errors),
        )

    def state_reply(self) -> StateReply:
        from repro.harness.snapshot import snapshot_replica

        return StateReply(
            rank=self.rank, role=self.role,
            snapshots=tuple(snapshot_replica(r)
                            for r in self.built["replicas"]),
            counters=self._counters())

    def export_shards(self) -> StopAck:
        trace_events = 0
        metrics_samples = 0
        if self.spec.get("trace"):
            trace_events = self.tracer.export(self._shard_path("trace"))
        if self.sampler is not None:
            self.sampler.stop()
            metrics_samples = self.sampler.export(
                self._shard_path("metrics"))
        return StopAck(rank=self.rank, trace_events=trace_events,
                       metrics_samples=metrics_samples)

    # -- the control-plane session ----------------------------------------
    async def serve(self, host: str, port: int) -> int:
        reader, writer = await asyncio.open_connection(host, port)
        write_frame(writer, WorkerHello(
            role=self.role, rank=self.rank, pid=os.getpid(),
            ports=tuple(sorted(self.runtime._ports.items()))))
        await writer.drain()

        start = await read_frame(reader)
        if not isinstance(start, ClusterStart):
            raise RuntimeError(f"expected ClusterStart, got {start!r}")
        self.runtime.install_port_map(start.host, dict(start.port_map))
        self.runtime.start()
        if self.built["controller"] is not None:
            self.built["controller"].start()
        if self.sampler is not None:
            self.sampler.start()
        write_frame(writer, StartAck(rank=self.rank))
        await writer.drain()

        while True:
            message = await read_frame(reader)
            if isinstance(message, StateRequest):
                # Quiesce: the loop keeps delivering datagrams and
                # firing protocol timers while we sleep, so in-flight
                # syncs and FC traffic settle before the snapshot.
                await asyncio.sleep(message.drain)
                write_frame(writer, self.state_reply())
                await writer.drain()
            elif isinstance(message, ClusterStop):
                write_frame(writer, self.export_shards())
                await writer.drain()
                writer.close()
                return EXIT_OK
            else:
                raise RuntimeError(f"unexpected control frame "
                                   f"{message!r}")


def worker_main(argv: Sequence[str]) -> int:
    args = build_node_parser().parse_args(list(argv))
    spec = json.loads(args.spec)
    worker = Worker(args.role, args.rank, spec)

    def on_sigterm(_signum: int, _frame: Any) -> None:
        # The supervisor (or an operator) is tearing us down outside
        # the normal stop protocol: leave the flight-recorder window
        # behind, then exit without unwinding through asyncio.
        worker.dump_recorder(reason="sigterm")
        os._exit(EXIT_SIGTERM)

    signal.signal(signal.SIGTERM, on_sigterm)
    try:
        return worker.runtime.aloop.run_until_complete(
            worker.serve(args.control_host, args.control_port))
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        # Control connection died: the launcher process is gone, so
        # there is nobody left to tell — dump and exit.
        dump = worker.dump_recorder(reason=f"control connection lost: "
                                           f"{exc}")
        print(f"worker {worker.role}: control connection lost ({exc}); "
              f"recorder dump: {dump}", file=sys.stderr)
        return EXIT_ORPHANED
    except Exception as exc:  # noqa: BLE001 - terminal crash report
        dump = worker.dump_recorder(reason=f"worker crash: {exc}")
        print(f"worker {worker.role}: crashed: {exc!r}; recorder "
              f"dump: {dump}", file=sys.stderr)
        return EXIT_CRASH
    finally:
        try:
            worker.runtime.stop()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass
