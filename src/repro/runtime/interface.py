"""The runtime interface every protocol class is written against.

The seam follows eRPC's observation ("Datacenter RPCs can be General
and Fast"): protocol logic written once against a narrow transport
interface runs unchanged over very different fabrics. The interface is
the union of what the protocol stack actually needs — nothing more:

==================  =====================================================
capability           methods
==================  =====================================================
transport            :meth:`Runtime.send`, :meth:`Runtime.fan_out`
endpoint registry    :meth:`register` / :meth:`unregister` /
                     :meth:`endpoint` / :meth:`has_endpoint`
groupcast routing    :attr:`groups`, :meth:`install_sequencer_route`
clock                :attr:`now` (seconds; monotonic within a run)
scheduling           :meth:`call_later` / :meth:`call_at`,
                     :meth:`timer` / :meth:`periodic`
randomness           :meth:`rng_stream` (seeded, named sub-streams)
identity             :meth:`fresh_tag` (runtime-owned txn-tag counter)
observability        :attr:`tracer` (optional causal tracer)
lifecycle            :meth:`start` / :meth:`stop`
==================  =====================================================

Backends differ in *how* the capabilities are realized (see the
backend matrix in DESIGN.md), never in what the protocol observes:
the simulator keys its clock to the event loop and delivers payloads
by reference (or, in paranoid-codec mode, through the wire codec);
the asyncio-UDP backend keys its clock to ``loop.time()`` and every
message crosses a real socket serialized by the codec.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Protocol, TYPE_CHECKING, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.groupcast import GroupMembership
    from repro.net.message import Address, Packet
    from repro.sim.randomness import SplitRandom


@runtime_checkable
class TimerHandle(Protocol):
    """A restartable one-shot or periodic timer.

    ``start()`` (re)arms; for one-shot timers a restart discards the
    previous deadline — the usual semantics for retransmission timers
    pushed back on every response. ``stop()`` cancels; stopping an
    unarmed timer is harmless.
    """

    delay: float

    def start(self, delay: Optional[float] = None) -> None: ...

    def stop(self) -> None: ...

    def restart(self, delay: Optional[float] = None) -> None: ...

    @property
    def active(self) -> bool: ...


class Runtime:
    """Abstract runtime. Backends subclass and implement the transport,
    registry, clock, and scheduling surface; the shared txn-tag counter
    lives here so every backend hands out per-runtime-unique tags."""

    #: Short backend identifier ("sim", "asyncio-udp", ...).
    backend: str = "abstract"

    #: Optional :class:`repro.obs.trace.Tracer`; hot paths guard every
    #: hook with one ``is not None`` check.
    tracer: Any = None

    #: Groupcast membership (:class:`repro.net.groupcast.GroupMembership`).
    groups: "GroupMembership"

    def __init__(self) -> None:
        # Per-runtime (per-cluster) transaction-tag counter: two
        # back-to-back in-process runs each start at 1, so repeated
        # experiments are deterministic (a module-global counter kept
        # counting across runs).
        self._tag_counter = itertools.count(1)

    # -- identity ----------------------------------------------------------
    def fresh_tag(self, prefix: str) -> str:
        """A transaction tag unique within this runtime."""
        return f"{prefix}:{next(self._tag_counter)}"

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current time in seconds. Simulated time for the simulator,
        the asyncio loop's monotonic clock for real transports."""
        raise NotImplementedError

    # -- scheduling --------------------------------------------------------
    def call_later(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> Any:
        """Run ``fn(*args)`` ``delay`` seconds from now; returns a
        backend-specific cancellable handle."""
        raise NotImplementedError

    def call_at(self, time: float, fn: Callable[..., Any],
                *args: Any) -> Any:
        """Run ``fn(*args)`` at absolute time ``time`` (same clock as
        :attr:`now`)."""
        raise NotImplementedError

    def timer(self, delay: float, fn: Callable[..., Any],
              *args: Any) -> TimerHandle:
        """A restartable one-shot timer (created unarmed)."""
        raise NotImplementedError

    def periodic(self, period: float, fn: Callable[..., Any],
                 *args: Any) -> TimerHandle:
        """A periodic timer (created unarmed)."""
        raise NotImplementedError

    # -- randomness --------------------------------------------------------
    def rng_stream(self, name: str) -> "SplitRandom":
        """A named, seeded RNG stream derived from the runtime seed."""
        raise NotImplementedError

    # -- endpoint registry -------------------------------------------------
    def register(self, node: Any) -> None:
        raise NotImplementedError

    def unregister(self, address: "Address") -> None:
        raise NotImplementedError

    def endpoint(self, address: "Address") -> Any:
        """The co-located endpoint object registered under ``address``.

        Control-plane convenience (the SDN controller installs epochs
        into sequencers through it); only valid for endpoints living in
        this runtime's process.
        """
        raise NotImplementedError

    def has_endpoint(self, address: "Address") -> bool:
        raise NotImplementedError

    # -- transport ---------------------------------------------------------
    def send(self, packet: "Packet") -> None:
        """Inject a packet. Unicast goes to ``packet.dst``; groupcast
        fans out (via the installed sequencer when ``packet.sequenced``)."""
        raise NotImplementedError

    def fan_out(self, packet: "Packet",
                destinations: tuple["Address", ...]) -> None:
        """Deliver per-recipient copies (used by sequencers)."""
        raise NotImplementedError

    def install_sequencer_route(self, address: Optional["Address"]) -> None:
        """Point the groupcast route at a sequencer (None = black hole)."""
        raise NotImplementedError

    # -- observability -----------------------------------------------------
    def attach_tracer(self, tracer: Any = None) -> Any:
        """Attach a :class:`repro.obs.trace.Tracer` clocked off *this*
        runtime's monotonic clock.

        Rebinding ``tracer.clock`` here — rather than trusting whatever
        clock the tracer was built with — makes the span-arithmetic
        invariant hold by construction: every timestamp in a trace
        comes from :attr:`now`, so phase durations telescope exactly
        and can never go negative under wall-clock steps. Passing no
        tracer creates a fresh one. Returns the attached tracer.
        """
        from repro.obs.trace import Tracer

        if tracer is None:
            tracer = Tracer()
        tracer.clock = lambda: self.now
        self.tracer = tracer
        return tracer

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Bring the transport up (no-op for the simulator)."""

    def stop(self) -> None:
        """Tear the transport down (no-op for the simulator)."""
