"""Multi-process variant of the asyncio-UDP runtime.

One :class:`WorkerUdpRuntime` per OS process. It hosts only the
endpoints of its own role (one replica, one sequencer, the controller,
the FC, or the driver's clients) and resolves every other protocol
address through a **remote port map** distributed by the launcher at
bootstrap — no process ever holds a reference to another process's
protocol objects, so every interaction that the single-process runtime
could have satisfied in memory is forced onto the wire.

Differences from the parent (single-process) runtime:

- **receive fast path** — sockets are serviced by ``loop.add_reader``
  callbacks that drain each socket to EAGAIN with ``recvmsg_into`` on
  one preallocated buffer: one loop wakeup amortizes over every
  datagram the kernel has queued, and the receive path allocates only
  the exact-size copy handed to the decoder (eRPC's batched-socket
  observation, on commodity UDP).
- **raw-socket egress** — sends go through a plain non-blocking
  ``socket.sendto`` instead of an asyncio DatagramTransport. The
  runtime owns its file descriptors outright (no transport-ownership
  close hazard), and the per-destination egress queues of the parent's
  ``batch_frames`` path flush straight into EWCB datagrams.
- **coalesced timers** — with ``timer_slack`` > 0, relative timer
  deadlines are quantized onto a slack-sized grid so nearby protocol
  timers (sync, ping, retry) share loop wakeups. Slack only ever
  *delays* a timer, never fires it early, so protocol timeouts remain
  conservative.
- **synchronous lifecycle** — :meth:`start` never enters the event
  loop, so a worker can bring the transport up from inside a running
  coroutine (the control-plane handshake) without nesting
  ``run_until_complete``.

Routing state is wire-distributed too: the controller's
``install_sequencer_route`` becomes a :class:`RouteInstall` broadcast
to every process's ``_rt.<rank>`` runtime-control endpoint, because a
groupcast is routed to the sequencer by the *sender's* runtime and the
senders live in other processes.
"""

from __future__ import annotations

import math
import socket
from typing import Any, Callable, Optional

from dataclasses import dataclass

from repro.errors import NetworkError
from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.runtime.asyncio_udp import (
    AsyncioUdpRuntime,
    _AsyncioPeriodic,
    _AsyncioTimer,
)
from repro.runtime.codec import register_messages

#: Receive buffer: the maximum UDP payload fits with room to spare.
_RECV_BUFFER_BYTES = 65536

#: Datagrams drained per reader wakeup before yielding back to the
#: loop, so one chatty peer cannot starve timers and the control plane.
_RECV_BATCH = 128


@dataclass(frozen=True)
class RouteInstall:
    """Controller-process runtime -> every other process's runtime:
    point the sequenced-groupcast route at ``address`` (None = black
    hole, used while no sequencer is routable)."""

    address: Optional[Address]


register_messages([RouteInstall])


def control_address(rank: int) -> Address:
    """The runtime-control endpoint address of process ``rank``."""
    return f"_rt.{rank}"


class _RuntimeControl(Node):
    """Per-process endpoint for runtime-level control messages. It is
    a real endpoint with a real socket, so routing state propagates
    over exactly the same data plane the protocol uses."""

    def __init__(self, runtime: "WorkerUdpRuntime", rank: int):
        super().__init__(control_address(rank), runtime)

    def on_RouteInstall(self, src: Address, msg: RouteInstall,
                        packet: Packet) -> None:
        self.runtime._install_route_local(msg.address)


class _TimerLoopShim:
    """Loop stand-in handed to the parent's timer classes so their
    rearm path goes through the runtime's (slack-quantizing)
    ``call_later`` instead of raw ``loop.call_later``."""

    __slots__ = ("_runtime",)

    def __init__(self, runtime: "WorkerUdpRuntime"):
        self._runtime = runtime

    def call_later(self, delay: float, fn: Callable[..., Any],
                   *args: Any):
        return self._runtime.call_later(delay, fn, *args)

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any):
        return self._runtime.aloop.call_at(when, fn, *args)

    def time(self) -> float:
        return self._runtime.aloop.time()


class WorkerUdpRuntime(AsyncioUdpRuntime):
    """One process's slice of a multi-process UDP cluster."""

    backend = "asyncio-udp-mp"

    def __init__(self, rank: int, seed: int = 0, host: str = "127.0.0.1",
                 wire: str = "ewc1", batch_frames: int = 1,
                 timer_slack: float = 0.0):
        super().__init__(seed=seed, host=host, wire=wire,
                         batch_frames=batch_frames)
        if rank < 0:
            raise NetworkError(f"rank must be >= 0: {rank}")
        if timer_slack < 0:
            raise NetworkError(f"timer_slack must be >= 0: {timer_slack}")
        self.rank = rank
        self.timer_slack = timer_slack
        #: Remote protocol address -> (host, port), installed from the
        #: launcher's merged port map. Local addresses stay in
        #: ``_ports`` and take precedence.
        self._remote: dict[Address, tuple[str, int]] = {}
        #: Runtime-control endpoints of the *other* processes (route
        #: broadcast fan-out list).
        self._peer_controls: list[Address] = []
        self._egress_sock: Optional[socket.socket] = None
        self._recv_buf = bytearray(_RECV_BUFFER_BYTES)
        self._timer_shim = _TimerLoopShim(self)
        #: Reader callback invocations vs datagrams drained: the ratio
        #: is the syscall amortization the fast path exists to buy.
        self.recv_wakeups = 0
        self.recv_datagrams = 0
        self.route_installs = 0
        self._control = _RuntimeControl(self, rank)

    # -- name resolution ---------------------------------------------------
    def install_port_map(self, host: str,
                         port_map: dict[Address, int]) -> None:
        """Adopt the launcher's merged address plan. Local endpoints
        keep their own sockets; everything else resolves to a remote
        socket address from here on."""
        self._peer_controls = []
        for address, port in port_map.items():
            if address not in self._ports:
                self._remote[address] = (host, port)
            if address.startswith("_rt.") \
                    and address != self._control.address:
                self._peer_controls.append(address)

    def _resolve(self, dst: Optional[Address]) -> Optional[tuple[str, int]]:
        port = self._ports.get(dst)
        if port is not None:
            return (self.host, port)
        return self._remote.get(dst)

    # -- routing -----------------------------------------------------------
    def _install_route_local(self, address: Optional[Address]) -> None:
        self.route_installs += 1
        self.sequencer_address = address

    def install_sequencer_route(self, address: Optional[Address]) -> None:
        """Install locally and broadcast to every peer process: the
        route is consulted by whichever runtime *sends* a sequenced
        groupcast, and senders are everywhere."""
        self._install_route_local(address)
        for peer in self._peer_controls:
            self.send(Packet(src=self._control.address, dst=peer,
                             payload=RouteInstall(address)))

    # -- timers (coalesced) ------------------------------------------------
    def call_later(self, delay: float, fn: Callable[..., Any],
                   *args: Any):
        slack = self.timer_slack
        if slack <= 0.0:
            return super().call_later(delay, fn, *args)
        # Quantize the absolute deadline up onto the slack grid: timers
        # due within the same slack window fire in one loop wakeup.
        deadline = self.aloop.time() + max(0.0, delay)
        return self.aloop.call_at(math.ceil(deadline / slack) * slack,
                                  fn, *args)

    def timer(self, delay: float, fn: Callable[..., Any], *args: Any):
        return _AsyncioTimer(self._timer_shim, delay, fn, *args)

    def periodic(self, period: float, fn: Callable[..., Any], *args: Any):
        return _AsyncioPeriodic(self._timer_shim, period, fn, *args)

    # -- egress ------------------------------------------------------------
    def _egress_up(self) -> bool:
        return self._egress_sock is not None

    def _sendto(self, data: bytes, addr: tuple[str, int]) -> None:
        self.datagrams_sent += 1
        if self._hist_datagram_bytes is not None:
            self._hist_datagram_bytes.record(len(data))
        try:
            self._egress_sock.sendto(data, addr)
        except BlockingIOError:
            # Kernel send buffer full: UDP gives no delivery promise
            # anyway, and Eris's §6.3/§6.5 drop machinery recovers lost
            # stamps, so counting the loss is the honest response.
            self.send_errors += 1
        except OSError:
            self.send_errors += 1

    # -- ingress -----------------------------------------------------------
    def _attach_reader(self, address: Address, sock: socket.socket) -> None:
        self.aloop.add_reader(sock.fileno(), self._on_readable,
                              address, sock)

    def _on_readable(self, address: Address, sock: socket.socket) -> None:
        """Drain the socket: one wakeup, many datagrams, zero receive
        allocations beyond the exact-size copy handed to the decoder."""
        self.recv_wakeups += 1
        buf = self._recv_buf
        for _ in range(_RECV_BATCH):
            try:
                nbytes, _ancdata, _flags, _addr = sock.recvmsg_into([buf])
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self.socket_errors += 1
                return
            self.recv_datagrams += 1
            self._on_datagram(address, bytes(buf[:nbytes]))

    # -- registration ------------------------------------------------------
    def register(self, node: Any) -> None:
        address = node.address
        if address in self._endpoints:
            raise NetworkError(f"duplicate endpoint address {address!r}")
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.bind((self.host, 0))
        self._endpoints[address] = node
        self._socks[address] = sock
        self._ports[address] = sock.getsockname()[1]
        if self._started:
            self._attach_reader(address, sock)

    def unregister(self, address: Address) -> None:
        self._endpoints.pop(address, None)
        self._ports.pop(address, None)
        sock = self._socks.pop(address, None)
        if sock is not None:
            if self._started and not self._closed:
                try:
                    self.aloop.remove_reader(sock.fileno())
                except (OSError, ValueError):
                    pass
            sock.close()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Attach readers and open the egress socket. Fully
        synchronous: never enters the event loop, so it is callable
        both from harness code and from inside a running coroutine."""
        if self._started:
            return
        self._started = True
        for address, sock in self._socks.items():
            self._attach_reader(address, sock)
        egress = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        egress.setblocking(False)
        egress.bind((self.host, 0))
        self._egress_sock = egress
        pending, self._pending_sends = self._pending_sends, []
        for dst, data in pending:
            addr = self._resolve(dst)
            if addr is not None:
                self.frames_sent += 1
                self._sendto(data, addr)
        if self._hist_loop_lag is not None:
            self._arm_lag_probe()

    def stop(self) -> None:
        """Detach readers and close every socket this runtime owns
        (there are no transports, hence no ownership hazard)."""
        if self._closed:
            return
        self._closed = True
        self._frame_queues.clear()
        for sock in self._socks.values():
            if self._started:
                try:
                    self.aloop.remove_reader(sock.fileno())
                except (OSError, ValueError):
                    pass
            sock.close()
        self._socks.clear()
        if self._egress_sock is not None:
            self._egress_sock.close()
            self._egress_sock = None
        if not self.aloop.is_running():
            self.aloop.close()

    # -- observability -----------------------------------------------------
    def instrument(self, registry) -> None:
        super().instrument(registry)
        registry.gauge("udp", "recv_wakeups",
                       lambda: self.recv_wakeups, monotone=True)
        registry.gauge("udp", "recv_datagrams",
                       lambda: self.recv_datagrams, monotone=True)
        registry.gauge("udp", "route_installs",
                       lambda: self.route_installs, monotone=True)
        registry.gauge("udp", "remote_addresses",
                       lambda: len(self._remote))
