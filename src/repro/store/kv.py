"""In-memory key-value store.

Keys are arbitrary hashable values; the workloads use strings
(``"user4821"``) and tuples (``("stock", w_id, i_id)`` for TPC-C rows).
Values are opaque. The store itself is deliberately unsynchronized —
per the H-Store-style execution model (§4.1), each partition executes
transactions serially on a single logical thread, so no latching is
needed, which is precisely the overhead the architecture eliminates.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator


class _Missing:
    """Sentinel for 'key absent' (distinct from a stored ``None``)."""

    _instance = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<MISSING>"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()


class KVStore:
    """A dictionary with a MISSING-aware interface and counters."""

    def __init__(self) -> None:
        self._data: dict[Hashable, Any] = {}
        self.reads = 0
        self.writes = 0

    def get(self, key: Hashable) -> Any:
        """Value for ``key``, or :data:`MISSING` if absent."""
        self.reads += 1
        return self._data.get(key, MISSING)

    def put(self, key: Hashable, value: Any) -> None:
        self.writes += 1
        self._data[key] = value

    def delete(self, key: Hashable) -> None:
        self.writes += 1
        self._data.pop(key, None)

    def contains(self, key: Hashable) -> bool:
        return key in self._data

    def restore(self, key: Hashable, value: Any) -> None:
        """Rollback helper: reinstate a value or remove the key."""
        if value is MISSING:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def scan_prefix(self, prefix: tuple) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(key, value)`` for tuple keys starting with
        ``prefix`` (used by TPC-C secondary lookups). O(n); the TPC-C
        procedures keep their own indexes for hot paths."""
        for key, value in self._data.items():
            if isinstance(key, tuple) and key[: len(prefix)] == prefix:
                yield key, value

    def snapshot(self) -> dict:
        """A shallow copy of the entire state (state transfer, checks)."""
        return dict(self._data)

    def load(self, data: dict) -> None:
        """Replace contents wholesale (application state transfer)."""
        self._data = dict(data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data
