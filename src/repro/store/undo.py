"""Undo logging.

Transactions that may abort after writing (Lock-Store prepares, Eris
general transactions between their preliminary and conclusory halves,
TPC-C's 1%-abort new-order) record pre-images here; :meth:`rollback`
reinstates them in reverse order.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.store.kv import KVStore


class UndoLog:
    """Pre-images for one transaction, applied LIFO on rollback."""

    def __init__(self) -> None:
        self._entries: list[tuple[Hashable, Any]] = []
        self._seen: set[Hashable] = set()

    def record(self, key: Hashable, old_value: Any) -> None:
        """Record a pre-image; only the first write to a key matters."""
        if key in self._seen:
            return
        self._seen.add(key)
        self._entries.append((key, old_value))

    def rollback(self, store: KVStore) -> None:
        for key, old_value in reversed(self._entries):
            store.restore(key, old_value)
        self.clear()

    def clear(self) -> None:
        self._entries.clear()
        self._seen.clear()

    def __len__(self) -> int:
        return len(self._entries)
