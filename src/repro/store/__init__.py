"""Storage substrate shared by Eris and every baseline.

- :mod:`repro.store.kv` — the in-memory key-value store.
- :mod:`repro.store.undo` — undo logging for abortable transactions.
- :mod:`repro.store.procedures` — stored procedures and the transaction
  execution context they run in.
- :mod:`repro.store.locks` — per-key read/write locks with queueing and
  wait-die policies (used by the general-transaction layer, Lock-Store,
  and Granola's locking mode).
"""

from repro.store.kv import KVStore, MISSING
from repro.store.locks import LockManager, LockMode, LockOutcome, LockRequest
from repro.store.procedures import OpClass, ProcedureRegistry, TxnContext
from repro.store.undo import UndoLog

__all__ = [
    "KVStore",
    "MISSING",
    "LockManager",
    "LockMode",
    "LockOutcome",
    "LockRequest",
    "OpClass",
    "ProcedureRegistry",
    "TxnContext",
    "UndoLog",
]
