"""Per-key read/write locks with queueing and wait-die.

Used three ways in the reproduction:

- **Eris general transactions (§7):** a preliminary transaction acquires
  its whole lock set in one atomic step inside the linearizable
  independent-transaction layer, so requests either fully grant or
  queue; cycles in the wait-for graph are impossible and no deadlock
  handling is needed (``QUEUE`` policy).
- **Lock-Store (2PL):** locks are held from prepare to commit across
  client round trips. Deadlocks are possible, so the ``WAIT_DIE``
  policy aborts a younger requester that conflicts with an older holder
  (the client retries with its original timestamp, guaranteeing
  progress).
- **Granola's locking mode** for non-independent transactions.

Grant order is FIFO over queued requests, with the all-or-nothing rule:
a queued request is granted only when *every* lock it needs is free,
which both avoids partial-hold deadlocks and models the paper's
atomic lock acquisition step.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional


class LockMode(enum.Enum):
    READ = "read"
    WRITE = "write"


class LockOutcome(enum.Enum):
    GRANTED = "granted"
    QUEUED = "queued"
    ABORTED = "aborted"


class LockPolicy(enum.Enum):
    QUEUE = "queue"          # always wait (deadlock-free callers only)
    WAIT_DIE = "wait-die"    # younger requester aborts on conflict


_request_ids = itertools.count()


@dataclass
class LockRequest:
    """One transaction's (whole) lock set request.

    ``timestamp`` is any totally ordered value; wait-die callers must
    guarantee uniqueness (e.g. a ``(time, tag)`` tuple), since equal
    timestamps would let neither side of a conflict die and allow
    cross-shard waits to form a cycle.
    """

    txn: Hashable
    read_keys: frozenset
    write_keys: frozenset
    timestamp: object
    on_grant: Optional[Callable[[], None]] = None
    on_abort: Optional[Callable[[], None]] = None
    policy: "LockPolicy" = None  # filled in by LockManager.request
    request_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def all_keys(self) -> frozenset:
        return self.read_keys | self.write_keys


class LockManager:
    """Key-granularity shared/exclusive locks for one shard."""

    def __init__(self) -> None:
        self._readers: dict[Hashable, set] = {}   # key -> {txn}
        self._writer: dict[Hashable, Hashable] = {}  # key -> txn
        self._held_by: dict[Hashable, set] = {}   # txn -> {key}
        self._ts: dict[Hashable, float] = {}      # txn -> timestamp
        self._queue: list[LockRequest] = []
        self.grants = 0
        self.waits = 0
        self.aborts = 0

    # -- queries --------------------------------------------------------
    def holds_any(self, txn: Hashable) -> bool:
        return bool(self._held_by.get(txn))

    def is_locked(self, key: Hashable, mode: LockMode = LockMode.WRITE) -> bool:
        """Would a request for ``key`` in ``mode`` conflict right now?"""
        if key in self._writer:
            return True
        if mode is LockMode.WRITE and self._readers.get(key):
            return True
        return False

    def queue_length(self) -> int:
        return len(self._queue)

    # -- acquisition --------------------------------------------------------
    def request(
        self,
        txn: Hashable,
        read_keys,
        write_keys,
        timestamp: object = 0.0,
        policy: LockPolicy = LockPolicy.QUEUE,
        on_grant: Optional[Callable[[], None]] = None,
        on_abort: Optional[Callable[[], None]] = None,
    ) -> LockOutcome:
        """Atomically request a read/write lock set.

        Returns GRANTED (locks now held), QUEUED (``on_grant`` fires
        when every lock becomes available — or ``on_abort`` if wait-die
        later dooms the queued request), or ABORTED (wait-die now).
        """
        req = LockRequest(
            txn=txn,
            read_keys=frozenset(read_keys) - frozenset(write_keys),
            write_keys=frozenset(write_keys),
            timestamp=timestamp,
            on_grant=on_grant,
            on_abort=on_abort,
            policy=policy,
        )
        conflicts = self._conflicting_holders(req)
        if not conflicts:
            self._grant(req)
            self.grants += 1
            self._reap_doomed()
            return LockOutcome.GRANTED
        if policy is LockPolicy.WAIT_DIE and self._doomed(req, conflicts):
            # A younger transaction dies rather than waiting on an older
            # holder; the client retries keeping its original timestamp.
            self.aborts += 1
            return LockOutcome.ABORTED
        self._queue.append(req)
        self.waits += 1
        return LockOutcome.QUEUED

    # -- release ----------------------------------------------------------
    def release_all(self, txn: Hashable) -> list[LockRequest]:
        """Drop every lock ``txn`` holds (and any queued request), then
        grant now-satisfiable queued requests in FIFO order.

        Returns the newly granted requests; their ``on_grant`` callbacks
        have already been invoked.
        """
        for key in self._held_by.pop(txn, set()):
            if self._writer.get(key) == txn:
                del self._writer[key]
            readers = self._readers.get(key)
            if readers:
                readers.discard(txn)
                if not readers:
                    del self._readers[key]
        self._ts.pop(txn, None)
        self._queue = [r for r in self._queue if r.txn != txn]
        return self._pump()

    # -- internals ----------------------------------------------------------
    def _conflicting_holders(self, req: LockRequest) -> set:
        holders: set = set()
        for key in req.write_keys:
            writer = self._writer.get(key)
            if writer is not None and writer != req.txn:
                holders.add(writer)
            for reader in self._readers.get(key, ()):
                if reader != req.txn:
                    holders.add(reader)
        for key in req.read_keys:
            writer = self._writer.get(key)
            if writer is not None and writer != req.txn:
                holders.add(writer)
        return holders

    def _grant(self, req: LockRequest) -> None:
        held = self._held_by.setdefault(req.txn, set())
        for key in req.write_keys:
            self._writer[key] = req.txn
            held.add(key)
        for key in req.read_keys:
            self._readers.setdefault(key, set()).add(req.txn)
            held.add(key)
        self._ts.setdefault(req.txn, req.timestamp)

    def _doomed(self, req: LockRequest, conflicts: set) -> bool:
        """Wait-die death sentence: some conflicting holder is older."""
        ts = req.timestamp
        return any(self._ts.get(holder) is not None
                   and self._ts.get(holder) < ts
                   for holder in conflicts)

    def _reap_doomed(self) -> list[LockRequest]:
        """Re-apply wait-die to *queued* requests: a waiter that now
        conflicts with an older holder must die, or a younger-waits-on-
        older edge would survive and cross-shard cycles could form."""
        doomed: list[LockRequest] = []
        kept: list[LockRequest] = []
        for req in self._queue:
            if req.policy is LockPolicy.WAIT_DIE:
                conflicts = self._conflicting_holders(req)
                if conflicts and self._doomed(req, conflicts):
                    doomed.append(req)
                    continue
            kept.append(req)
        if doomed:
            self._queue = kept
            self.aborts += len(doomed)
            for req in doomed:
                if req.on_abort is not None:
                    req.on_abort()
        return doomed

    def _pump(self) -> list[LockRequest]:
        granted: list[LockRequest] = []
        made_progress = True
        while made_progress:
            made_progress = False
            for i, req in enumerate(self._queue):
                if not self._conflicting_holders(req):
                    del self._queue[i]
                    self._grant(req)
                    self.grants += 1
                    granted.append(req)
                    made_progress = True
                    break
        self._reap_doomed()
        for req in granted:
            if req.on_grant is not None:
                req.on_grant()
        return granted
