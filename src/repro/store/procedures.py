"""Stored procedures and their execution context.

All systems in the evaluation run transactions as stored procedures
(§8): a named function registered in a :class:`ProcedureRegistry`,
executed against a shard-local :class:`TxnContext`. The context

- resolves key ownership (so one procedure body runs correctly on every
  participant shard, touching only its local keys — the H-Store model),
- tracks read/write sets (used by OCC validation and lock acquisition),
- records undo pre-images so the transaction can be rolled back, and
- lets the procedure abort deterministically via :meth:`TxnContext.abort`.

Determinism matters: an independent transaction's commit/abort decision
must come out identically on every participant without communication
(§4.1), so procedures may only consult their arguments and local state
that is identical across participants (e.g. TPC-C's replicated item
table).

Procedures additionally carry an **operation class** (:class:`OpClass`)
declaring their algebraic structure. The default, ``GENERIC``, promises
nothing and always takes the full multi-stamp path of §3.2. Two
stronger classes unlock the coordination-free fast paths layered on top
of the base protocol:

- ``COMMUTATIVE`` — the procedure's effect on the store commutes with
  every other COMMUTATIVE procedure (Abelian updates such as counter
  increments, or semilattice joins such as set union). Replicas may
  apply these out of order within an epoch and still converge, so the
  ordering constraint of §3.2 is relaxed for them; an optional
  ``merge`` function documents (and lets tests verify) the algebraic
  structure being claimed.
- ``READ_ONLY`` — the procedure never writes. When the sequencing
  element's dirty-set says the read's keys have no in-flight
  conflicting writes, the read can be served by a single replica
  instead of the §5.1 full-quorum path (Harmonia-style in-network
  conflict detection).

The classes are *declarations*: the registry records them, the
transaction layer ships them on the wire, and the §6.7 checkers verify
after the fact that no GENERIC operation slipped through a relaxed
path.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from repro.errors import TransactionAborted, UnknownProcedureError
from repro.store.kv import KVStore, MISSING
from repro.store.undo import UndoLog

Procedure = Callable[["TxnContext", dict], Any]


class OpClass:
    """Operation-class annotations for stored procedures.

    Plain string constants (not an enum) so the values pass through
    both wire codecs as ordinary scalars.
    """

    #: Unrestricted read-write procedure: full §3.2 ordering applies.
    GENERIC = "generic"
    #: Abelian/semilattice update: commutes with every other
    #: COMMUTATIVE procedure, so in-epoch ordering may be relaxed.
    COMMUTATIVE = "commutative"
    #: Never writes: eligible for single-replica service when the
    #: dirty-set check comes back clean.
    READ_ONLY = "read_only"

    ALL = (GENERIC, COMMUTATIVE, READ_ONLY)


class TxnContext:
    """What a stored procedure sees while executing on one shard."""

    def __init__(
        self,
        store: KVStore,
        shard: int = 0,
        owns: Optional[Callable[[Hashable], bool]] = None,
        undo: Optional[UndoLog] = None,
    ):
        self.store = store
        self.shard = shard
        self._owns = owns
        self.undo = undo
        self.read_set: set[Hashable] = set()
        self.write_set: set[Hashable] = set()

    def owns(self, key: Hashable) -> bool:
        """Does this shard store ``key``? Procedures guard remote keys
        with this so the same body runs on every participant."""
        if self._owns is None:
            return True
        return self._owns(key)

    def get(self, key: Hashable) -> Any:
        self.read_set.add(key)
        return self.store.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        if self.undo is not None:
            self.undo.record(key, self.store.get(key))
        self.write_set.add(key)
        self.store.put(key, value)

    def delete(self, key: Hashable) -> None:
        if self.undo is not None:
            self.undo.record(key, self.store.get(key))
        self.write_set.add(key)
        self.store.delete(key)

    def scan_prefix(self, prefix: tuple):
        return self.store.scan_prefix(prefix)

    def abort(self, reason: str = "application abort") -> None:
        """Deterministically abort the transaction on every participant."""
        raise TransactionAborted(reason)


class ProcedureRegistry:
    """Name → stored procedure. Shared by all replicas of all systems
    in one experiment so every node executes identical code."""

    def __init__(self) -> None:
        self._procs: dict[str, Procedure] = {}
        self._op_classes: dict[str, str] = {}
        self._merges: dict[str, Callable[[Any, Any], Any]] = {}

    def register(self, name: str, fn: Procedure,
                 op_class: str = OpClass.GENERIC,
                 merge: Optional[Callable[[Any, Any], Any]] = None) -> None:
        """Register ``fn`` under ``name``.

        ``op_class`` declares the procedure's algebraic structure (see
        :class:`OpClass`); ``merge`` optionally records the Abelian /
        semilattice combine function a COMMUTATIVE procedure's effect
        corresponds to, for documentation and property tests.
        """
        if op_class not in OpClass.ALL:
            raise ValueError(f"unknown op_class {op_class!r} for {name!r}")
        if merge is not None and op_class != OpClass.COMMUTATIVE:
            raise ValueError(
                f"merge function only makes sense for COMMUTATIVE "
                f"procedures, but {name!r} is {op_class!r}")
        self._procs[name] = fn
        self._op_classes[name] = op_class
        if merge is not None:
            self._merges[name] = merge

    def procedure(self, name: str) -> Procedure:
        try:
            return self._procs[name]
        except KeyError:
            raise UnknownProcedureError(name) from None

    def op_class(self, name: str) -> str:
        """The declared :class:`OpClass` of a registered procedure."""
        if name not in self._procs:
            raise UnknownProcedureError(name)
        return self._op_classes.get(name, OpClass.GENERIC)

    def merge_fn(self, name: str) -> Optional[Callable[[Any, Any], Any]]:
        """The declared combine function (COMMUTATIVE procedures only)."""
        if name not in self._procs:
            raise UnknownProcedureError(name)
        return self._merges.get(name)

    def execute(self, name: str, ctx: TxnContext, args: dict) -> Any:
        """Run a procedure; aborts propagate as TransactionAborted."""
        return self.procedure(name)(ctx, args)

    def names(self) -> list[str]:
        return sorted(self._procs)

    def __contains__(self, name: str) -> bool:
        return name in self._procs
