"""Stored procedures and their execution context.

All systems in the evaluation run transactions as stored procedures
(§8): a named function registered in a :class:`ProcedureRegistry`,
executed against a shard-local :class:`TxnContext`. The context

- resolves key ownership (so one procedure body runs correctly on every
  participant shard, touching only its local keys — the H-Store model),
- tracks read/write sets (used by OCC validation and lock acquisition),
- records undo pre-images so the transaction can be rolled back, and
- lets the procedure abort deterministically via :meth:`TxnContext.abort`.

Determinism matters: an independent transaction's commit/abort decision
must come out identically on every participant without communication
(§4.1), so procedures may only consult their arguments and local state
that is identical across participants (e.g. TPC-C's replicated item
table).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from repro.errors import TransactionAborted, UnknownProcedureError
from repro.store.kv import KVStore, MISSING
from repro.store.undo import UndoLog

Procedure = Callable[["TxnContext", dict], Any]


class TxnContext:
    """What a stored procedure sees while executing on one shard."""

    def __init__(
        self,
        store: KVStore,
        shard: int = 0,
        owns: Optional[Callable[[Hashable], bool]] = None,
        undo: Optional[UndoLog] = None,
    ):
        self.store = store
        self.shard = shard
        self._owns = owns
        self.undo = undo
        self.read_set: set[Hashable] = set()
        self.write_set: set[Hashable] = set()

    def owns(self, key: Hashable) -> bool:
        """Does this shard store ``key``? Procedures guard remote keys
        with this so the same body runs on every participant."""
        if self._owns is None:
            return True
        return self._owns(key)

    def get(self, key: Hashable) -> Any:
        self.read_set.add(key)
        return self.store.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        if self.undo is not None:
            self.undo.record(key, self.store.get(key))
        self.write_set.add(key)
        self.store.put(key, value)

    def delete(self, key: Hashable) -> None:
        if self.undo is not None:
            self.undo.record(key, self.store.get(key))
        self.write_set.add(key)
        self.store.delete(key)

    def scan_prefix(self, prefix: tuple):
        return self.store.scan_prefix(prefix)

    def abort(self, reason: str = "application abort") -> None:
        """Deterministically abort the transaction on every participant."""
        raise TransactionAborted(reason)


class ProcedureRegistry:
    """Name → stored procedure. Shared by all replicas of all systems
    in one experiment so every node executes identical code."""

    def __init__(self) -> None:
        self._procs: dict[str, Procedure] = {}

    def register(self, name: str, fn: Procedure) -> None:
        self._procs[name] = fn

    def procedure(self, name: str) -> Procedure:
        try:
            return self._procs[name]
        except KeyError:
            raise UnknownProcedureError(name) from None

    def execute(self, name: str, ctx: TxnContext, args: dict) -> Any:
        """Run a procedure; aborts propagate as TransactionAborted."""
        return self.procedure(name)(ctx, args)

    def names(self) -> list[str]:
        return sorted(self._procs)

    def __contains__(self, name: str) -> bool:
        return name in self._procs
