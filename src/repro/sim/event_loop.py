"""A minimal, fast discrete-event loop.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The sequence number breaks ties deterministically, so two runs with the
same seed and the same scheduling order replay identically — a property
the protocol tests rely on.

Time is a float in **seconds**; the network and CPU models use
microsecond-scale constants (``5e-6`` is 5 µs).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback. Cancel with :meth:`EventLoop.cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} seq={self.seq}{state} {self.fn!r}>"


class EventLoop:
    """Time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event. Cancelling twice is harmless."""
        event.cancelled = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events in time order.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` callbacks, whichever is first.
        With ``until`` set, ``now`` is advanced to exactly ``until`` on
        return so subsequent relative scheduling is anchored there.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        processed = 0
        try:
            heap = self._heap
            while heap:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(heap)
                self.now = event.time
                event.fn(*event.args)
                processed += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self.events_processed += processed
            self._running = False

    def instrument(self, registry) -> None:
        """Register the loop's live counters as pull-gauges on a
        :class:`repro.obs.metrics.MetricsRegistry`. Pull-based, so the
        event dispatch hot path is untouched."""
        registry.gauge("sim", "now", fn=lambda: self.now)
        registry.gauge("sim", "events_processed",
                       fn=lambda: self.events_processed)
        registry.gauge("sim", "events_pending", fn=lambda: self.pending)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        self.run(max_events=max_events)
        if self._heap and all(not e.cancelled for e in self._heap):
            raise SimulationError(
                f"run_until_idle exceeded {max_events} events; "
                "likely a livelock (e.g. an un-cancelled periodic timer)"
            )

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
