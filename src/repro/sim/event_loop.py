"""A minimal, fast discrete-event loop.

Events are kept in a binary heap of ``(time, seq, Event)`` triples. The
sequence number breaks ties deterministically, so two runs with the same
seed and the same scheduling order replay identically — a property the
protocol tests rely on. Keeping the sort key in the tuple (rather than
comparing :class:`Event` objects) lets the heap operations run entirely
on C-level tuple comparisons, which is where a pure-Python simulator
spends most of its time.

Three hot-path properties are maintained:

* ``pending`` is O(1): the loop tracks the cancelled-but-heaped entry
  count instead of scanning the heap (the live count is the difference
  from the heap size, so the schedule/dispatch hot path never touches
  a counter — only the rare cancel path does).
* Cancelled entries cannot accumulate without bound: when they
  outnumber live entries and the heap is large (> ``COMPACT_MIN``),
  the heap is compacted in place. Compaction only removes entries that
  could never fire, and re-heapifying cannot change the pop order of
  the survivors (their ``(time, seq)`` keys are untouched and globally
  unique), so the event sequence is bit-identical with or without it.
* ``reschedule`` re-arms an already-scheduled event without pushing a
  replacement entry: when the new deadline is not earlier than the
  in-heap key, the event just records it and is re-keyed lazily when
  the old key surfaces. Each call consumes exactly one sequence number
  — the same one a cancel-plus-``schedule`` pair would have given the
  replacement event — so the fired ``(time, seq)`` stream is identical
  to the naive implementation.

Time is a float in **seconds**; the network and CPU models use
microsecond-scale constants (``5e-6`` is 5 µs).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError

_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A scheduled callback. Cancel with :meth:`EventLoop.cancel`,
    re-arm with :meth:`EventLoop.reschedule`.

    ``time``/``seq`` are the heap key the entry was pushed with; after a
    deferred :meth:`~EventLoop.reschedule` they are updated to the new
    deadline when the stale key surfaces, so they always reflect the key
    the event will actually fire under once it is dispatched.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "in_heap",
                 "deadline", "deadline_seq")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # True while a heap entry keyed (time, seq) references this
        # event; the entry may already be logically dead (cancelled).
        self.in_heap = False
        # Pending deferred reschedule: when ``deadline_seq >= 0`` the
        # event fires at (deadline, deadline_seq) instead of its heap
        # key; the run loop re-keys it lazily.
        self.deadline = 0.0
        self.deadline_seq = -1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        if self.deadline_seq >= 0:
            state += f" ->t={self.deadline:.9f}"
        return f"<Event t={self.time:.9f} seq={self.seq}{state} {self.fn!r}>"


_new_event = Event.__new__


class EventLoop:
    """Time-ordered event queue with deterministic tie-breaking."""

    #: Compaction is considered only above this heap size; below it the
    #: lazy-deletion garbage is too small to matter.
    COMPACT_MIN = 1024

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        # Cancelled-but-still-heaped entry count. The *dead* count is
        # tracked (rather than the live one) so the schedule/dispatch
        # hot path never touches a counter; only the rare cancel path
        # does. Live count = len(_heap) - _dead.
        self._dead = 0
        self._running = False
        self.events_processed = 0
        self.compactions = 0
        #: Optional per-dispatch hook ``hook(event)``, called just
        #: before each callback runs (used by the determinism tests to
        #: fingerprint the fired ``(time, seq)`` stream). Sampled once
        #: at the top of :meth:`run`; ``None`` costs one local-variable
        #: check per event.
        self.on_event: Optional[Callable[[Event], None]] = None

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        This is the simulator's single hottest call (one per packet hop,
        timer arm, and CPU-model step), so it is a flat inline of
        :meth:`schedule_at` rather than a delegation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        # Inline Event construction (bypassing __init__) measurably
        # beats the constructor call at this call frequency.
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.in_heap = True
        event.deadline_seq = -1
        _heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.in_heap = True
        event.deadline_seq = -1
        _heappush(self._heap, (time, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event. Cancelling twice is harmless."""
        if event.cancelled:
            return
        event.cancelled = True
        if event.in_heap:
            event.deadline_seq = -1
            self._dead += 1
            self._maybe_compact()

    def reschedule(self, event: Event, time: float) -> Event:
        """Move ``event`` to fire at absolute ``time``; returns the
        (possibly new) :class:`Event` handle to keep.

        Equivalent to cancelling ``event`` and scheduling its callback
        afresh — including consuming exactly one sequence number, so the
        fired event order is identical — but without growing the heap in
        the common case (deadline pushed later, e.g. a retransmission
        timer re-armed on every reply): the in-heap entry is re-keyed
        lazily when its old key surfaces. A fired event's handle may be
        passed back in; the object is then re-armed without allocating.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot reschedule at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if event.in_heap:
            if not event.cancelled:
                if time >= event.time:
                    # Fast path: defer re-keying until the stale entry
                    # surfaces in the run loop.
                    event.deadline = time
                    event.deadline_seq = seq
                    return event
                # New deadline sorts before the in-heap key; the stale
                # entry cannot stand in for it. Lazy-cancel and push a
                # fresh entry.
                event.cancelled = True
                self._dead += 1
            # The (now dead) entry still references this object, so a
            # fresh Event is required.
            new = Event(time, seq, event.fn, event.args)
            new.in_heap = True
            _heappush(self._heap, (time, seq, new))
            self._maybe_compact()
            return new
        # Already fired (or compacted away after a cancel): re-arm the
        # same object without allocating.
        event.time = time
        event.seq = seq
        event.cancelled = False
        event.deadline_seq = -1
        event.in_heap = True
        _heappush(self._heap, (time, seq, event))
        return event

    def _maybe_compact(self) -> None:
        """Drop cancelled entries when they dominate a large heap.

        Mutates the heap list in place (``run`` holds a reference to
        it) and re-heapifies; survivor keys are untouched and globally
        unique, so the pop order is unchanged.
        """
        heap = self._heap
        n = len(heap)
        if n > self.COMPACT_MIN and 2 * self._dead > n:
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._dead = 0
            self.compactions += 1

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events in time order.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` callbacks, whichever is first.
        With ``until`` set, ``now`` is advanced to exactly ``until`` on
        return so subsequent relative scheduling is anchored there.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        processed = 0
        heappop = _heappop
        heappush = _heappush
        hook = self.on_event
        # Sentinels avoid a None test per event in the loop below.
        horizon = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        try:
            heap = self._heap
            while heap:
                time, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    event.in_heap = False
                    self._dead -= 1
                    continue
                dseq = event.deadline_seq
                if dseq >= 0:
                    # Deferred reschedule: re-key at the real deadline.
                    heappop(heap)
                    time = event.deadline
                    event.time = time
                    event.seq = dseq
                    event.deadline_seq = -1
                    heappush(heap, (time, dseq, event))
                    continue
                if time > horizon:
                    break
                if processed >= budget:
                    break
                heappop(heap)
                event.in_heap = False
                self.now = time
                if hook is not None:
                    hook(event)
                event.fn(*event.args)
                processed += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self.events_processed += processed
            self._running = False

    def instrument(self, registry) -> None:
        """Register the loop's live counters as pull-gauges on a
        :class:`repro.obs.metrics.MetricsRegistry`. Pull-based, so the
        event dispatch hot path is untouched."""
        registry.gauge("sim", "now", fn=lambda: self.now)
        registry.gauge("sim", "events_processed",
                       fn=lambda: self.events_processed, monotone=True)
        registry.gauge("sim", "events_pending", fn=lambda: self.pending)
        registry.gauge("sim", "heap_size", fn=lambda: len(self._heap))
        registry.gauge("sim", "dead_entries", fn=lambda: self._dead)
        registry.gauge("sim", "heap_compactions",
                       fn=lambda: self.compactions, monotone=True)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        self.run(max_events=max_events)
        # Live entries left over mean the budget was exhausted with real
        # work still queued — a livelock. Stale cancelled entries alone
        # are fine (they could never fire); checking the O(1) live count
        # is equivalent to ``any(not e.cancelled for e in heap)``.
        if len(self._heap) - self._dead > 0:
            raise SimulationError(
                f"run_until_idle exceeded {max_events} events; "
                "likely a livelock (e.g. an un-cancelled periodic timer)"
            )

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued. O(1)."""
        return len(self._heap) - self._dead
