"""Discrete-event simulation kernel.

The kernel is deliberately small: a time-ordered event queue
(:mod:`repro.sim.event_loop`), cancellable and periodic timers
(:mod:`repro.sim.process`), deterministic seeded randomness
(:mod:`repro.sim.randomness`), and measurement utilities
(:mod:`repro.sim.stats`). Everything above it — the network fabric,
protocol nodes, clients — is expressed as callbacks scheduled on one
:class:`~repro.sim.event_loop.EventLoop`.
"""

from repro.sim.event_loop import Event, EventLoop
from repro.sim.process import PeriodicTimer, Timer
from repro.sim.randomness import SplitRandom
from repro.sim.stats import LatencyRecorder, ThroughputMeter, TimeSeries

__all__ = [
    "Event",
    "EventLoop",
    "Timer",
    "PeriodicTimer",
    "SplitRandom",
    "LatencyRecorder",
    "ThroughputMeter",
    "TimeSeries",
]
