"""Measurement utilities: latency recording, throughput, time series.

The harness opens a measurement window after warmup; recorders ignore
samples outside the window so steady-state numbers are not polluted by
cold-start or drain effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import nearest_rank_index


class LatencyRecorder:
    """Collects latency samples inside an optional measurement window."""

    def __init__(self) -> None:
        self.samples: list[float] = []
        self.window_start: Optional[float] = None
        self.window_end: Optional[float] = None

    def open_window(self, start: float, end: Optional[float] = None) -> None:
        self.window_start = start
        self.window_end = end

    def record(self, at_time: float, latency: float) -> None:
        if self.window_start is not None and at_time < self.window_start:
            return
        if self.window_end is not None and at_time > self.window_end:
            return
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100].

        p=0 is the minimum, p=100 the maximum (rank-clamping lives in
        :func:`repro.obs.metrics.nearest_rank_index`, shared with the
        log-bucketed histograms); p outside [0, 100] raises.
        """
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        return ordered[nearest_rank_index(len(ordered), p)]

    def median(self) -> float:
        return self.percentile(50)


class ThroughputMeter:
    """Counts completions inside a window and reports a rate."""

    def __init__(self) -> None:
        self.count = 0
        self.total_count = 0
        self.window_start: Optional[float] = None
        self.window_end: Optional[float] = None

    def open_window(self, start: float, end: float) -> None:
        self.window_start = start
        self.window_end = end

    def record(self, at_time: float, n: int = 1) -> None:
        self.total_count += n
        if self.window_start is not None and at_time < self.window_start:
            return
        if self.window_end is not None and at_time > self.window_end:
            return
        self.count += n

    def rate(self) -> float:
        """Completions per second over the measurement window."""
        if self.window_start is None or self.window_end is None:
            return math.nan
        duration = self.window_end - self.window_start
        if duration <= 0:
            return math.nan
        return self.count / duration


@dataclass
class TimeSeries:
    """Bucketized event counts, for throughput-over-time plots (Fig 14)."""

    bucket_width: float
    origin: float = 0.0
    buckets: dict[int, int] = field(default_factory=dict)

    def record(self, at_time: float, n: int = 1) -> None:
        index = int((at_time - self.origin) // self.bucket_width)
        self.buckets[index] = self.buckets.get(index, 0) + n

    def series(self) -> list[tuple[float, float]]:
        """(bucket midpoint time, rate per second) pairs, sorted by time."""
        if not self.buckets:
            return []
        lo = min(self.buckets)
        hi = max(self.buckets)
        out = []
        for i in range(lo, hi + 1):
            midpoint = self.origin + (i + 0.5) * self.bucket_width
            rate = self.buckets.get(i, 0) / self.bucket_width
            out.append((midpoint, rate))
        return out
