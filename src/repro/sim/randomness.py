"""Deterministic, splittable randomness for simulations.

Every stochastic component (network latency, drop decisions, workload
key choice, client think time) draws from its own named stream derived
from one experiment seed, so adding a new component never perturbs the
draws seen by existing ones — a standard trick for reproducible and
comparable simulation experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


class SplitRandom:
    """A seeded RNG that can mint independent child streams by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def split(self, name: str) -> "SplitRandom":
        """Derive an independent stream; same (seed, name) → same stream."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return SplitRandom(int.from_bytes(digest[:8], "big"))

    # -- thin passthroughs (kept explicit for discoverability) ----------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def randrange(self, n: int) -> int:
        return self._rng.randrange(n)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)
