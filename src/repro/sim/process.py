"""Timer abstractions over the event loop.

Protocol nodes use :class:`Timer` for one-shot retransmission/failure
timeouts (restartable, cancellable) and :class:`PeriodicTimer` for
heartbeats and the Eris synchronization protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.event_loop import Event, EventLoop


class Timer:
    """A restartable one-shot timer.

    ``start()`` (re)arms the timer; if it was already armed, the previous
    deadline is discarded — this is the usual semantics for protocol
    retransmission timers that are pushed back on every response.
    """

    def __init__(self, loop: EventLoop, delay: float, fn: Callable[..., Any],
                 *args: Any):
        self._loop = loop
        self.delay = delay
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None

    def start(self, delay: Optional[float] = None) -> None:
        d = self.delay if delay is None else delay
        event = self._event
        if event is None:
            self._event = self._loop.schedule(d, self._fire)
        else:
            # Re-arm in place: a restart usually pushes the deadline
            # later, which ``reschedule`` handles without growing the
            # heap or allocating a replacement event.
            self._event = self._loop.reschedule(event, self._loop.now + d)

    def stop(self) -> None:
        if self._event is not None:
            self._loop.cancel(self._event)
            self._event = None

    def restart(self, delay: Optional[float] = None) -> None:
        self.start(delay)

    @property
    def active(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def _fire(self) -> None:
        self._event = None
        self._fn(*self._args)


class PeriodicTimer:
    """Fires ``fn`` every ``period`` seconds until stopped."""

    def __init__(self, loop: EventLoop, period: float, fn: Callable[..., Any],
                 *args: Any):
        self._loop = loop
        self.period = period
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None
        self._stopped = True

    def start(self, initial_delay: Optional[float] = None) -> None:
        self.stop()
        self._stopped = False
        delay = self.period if initial_delay is None else initial_delay
        self._event = self._loop.schedule(delay, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._loop.cancel(self._event)
            self._event = None

    @property
    def active(self) -> bool:
        return not self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        # The event that just fired is out of the heap; re-arming it via
        # ``reschedule`` reuses the object instead of allocating one per
        # period.
        event = self._event
        if event is not None:
            self._event = self._loop.reschedule(event,
                                                self._loop.now + self.period)
        else:  # pragma: no cover - defensive; start() always arms
            self._event = self._loop.schedule(self.period, self._fire)
        self._fn(*self._args)
