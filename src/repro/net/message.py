"""Packets and the in-network headers from Section 5.

A :class:`Packet` is what the fabric moves between endpoints. Its
``payload`` is an application-level protocol message (an Eris REPLY, a
2PC PREPARE, ...). Groupcast packets additionally carry a
:class:`GroupcastHeader` naming their destination groups, and — once
they have passed through the sequencer — a :class:`MultiStamp`.

A multi-stamp is the paper's key idea (§5.3): a set of
``(group-id, sequence-num)`` pairs, one per destination group, plus the
sequencer's epoch number. A receiver in group *g* looks only at its own
pair to enforce ordering and detect drops, but the full stamp lets any
node answer "do you have the packet that was assigned sequence *n* for
group *g*?" during failure recovery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

Address = str
GroupId = int

_packet_ids = itertools.count()


@dataclass(frozen=True)
class GroupcastHeader:
    """The header between IP and UDP naming the destination groups."""

    groups: tuple[GroupId, ...]

    def __post_init__(self) -> None:
        if len(set(self.groups)) != len(self.groups):
            raise ValueError(f"duplicate destination groups: {self.groups}")


@dataclass(frozen=True)
class MultiStamp:
    """Epoch number plus one sequence number per destination group."""

    epoch: int
    stamps: tuple[tuple[GroupId, int], ...]

    def seq_for(self, group: GroupId) -> int:
        for gid, seq in self.stamps:
            if gid == group:
                return seq
        raise KeyError(f"group {group} not in multi-stamp {self.stamps}")

    def has_group(self, group: GroupId) -> bool:
        return any(gid == group for gid, _ in self.stamps)

    @property
    def groups(self) -> tuple[GroupId, ...]:
        return tuple(gid for gid, _ in self.stamps)


@dataclass(slots=True)
class Packet:
    """One message in flight. Copied (shallowly) at fan-out points."""

    src: Address
    dst: Optional[Address]
    payload: Any
    groupcast: Optional[GroupcastHeader] = None
    multistamp: Optional[MultiStamp] = None
    sequenced: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Causal id assigned by an attached tracer at injection time; all
    #: fan-out copies of one logical message share it (None untraced).
    trace_id: Optional[int] = None

    def copy_to(self, dst: Address) -> "Packet":
        """A per-recipient copy: only the header differs — the payload,
        groupcast header, multi-stamp, and causal id are shared
        references. Fan-out is the fabric's hottest allocation site, so
        the copy bypasses the dataclass constructor and writes the
        slots directly (each copy still gets a fresh ``packet_id``)."""
        clone = object.__new__(Packet)
        clone.src = self.src
        clone.dst = dst
        clone.payload = self.payload
        clone.groupcast = self.groupcast
        clone.multistamp = self.multistamp
        clone.sequenced = self.sequenced
        clone.packet_id = next(_packet_ids)
        clone.trace_id = self.trace_id
        return clone
