"""Group membership for the groupcast primitive (§5.2).

A *group* is a set of endpoint addresses — in Eris, the replica set of
one shard. The membership table is owned by the network (conceptually,
by the SDN controller, which installs the forwarding rules).
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.net.message import Address, GroupId


class GroupMembership:
    """Mapping from group id to its member addresses."""

    def __init__(self) -> None:
        self._members: dict[GroupId, tuple[Address, ...]] = {}

    def define(self, group: GroupId, members: list[Address] | tuple[Address, ...]) -> None:
        if not members:
            raise NetworkError(f"group {group} must have at least one member")
        self._members[group] = tuple(members)

    def members(self, group: GroupId) -> tuple[Address, ...]:
        try:
            return self._members[group]
        except KeyError:
            raise NetworkError(f"unknown group {group}") from None

    def groups(self) -> tuple[GroupId, ...]:
        return tuple(sorted(self._members))

    def all_members(self) -> tuple[Address, ...]:
        """Union of every group's members (used by total-global OUM)."""
        seen: dict[Address, None] = {}
        for group in sorted(self._members):
            for member in self._members[group]:
                seen.setdefault(member, None)
        return tuple(seen)

    def __contains__(self, group: GroupId) -> bool:
        return group in self._members

    def __len__(self) -> int:
        return len(self._members)
