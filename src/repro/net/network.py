"""The simulated fabric — the simulator backend of the runtime
interface.

The network delivers :class:`~repro.net.message.Packet` objects between
registered endpoints with sampled one-way latency and an optional drop
probability (used by the Figure 13 experiment). Sequenced groupcast
packets are routed through the currently installed sequencer — exactly
the behaviour the SDN rules create in the paper — and the sequencer
re-emits stamped per-recipient copies.

Latency is sampled independently per packet, so the fabric naturally
reorders messages under jitter; that is intentional, since tolerating
reordering is precisely what multi-sequencing provides.

:class:`Network` implements :class:`repro.runtime.interface.Runtime`:
protocol nodes reach the clock, timers, and randomness through it and
never touch the event loop directly, so the same protocol classes run
over :mod:`repro.runtime.asyncio_udp` unchanged. Payloads are passed
by reference for speed; :attr:`NetConfig.paranoid_codec` makes every
delivery round-trip through the wire codec instead, which catches any
handler that mutates a received message or relies on cross-recipient
payload aliasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import NetworkError
from repro.net.groupcast import GroupMembership
from repro.net.message import Address, Packet
from repro.runtime.interface import Runtime, TimerHandle
from repro.sim.event_loop import EventLoop
from repro.sim.process import PeriodicTimer, Timer
from repro.sim.randomness import SplitRandom

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.endpoint import Node


@dataclass
class NetConfig:
    """Fabric parameters. Times are seconds (microsecond scale)."""

    base_latency: float = 10e-6      # one-way propagation + switching
    jitter: float = 2e-6             # uniform extra delay in [0, jitter]
    drop_rate: float = 0.0           # per-hop independent drop probability
    #: Deliver in FIFO order per (src, dst) pair — packets between two
    #: endpoints follow one path in a datacenter, so they rarely
    #: reorder; loss, not reordering, is the dominant anomaly. Set
    #: False to stress the protocols with arbitrary reordering.
    fifo_links: bool = True
    #: Round-trip every payload through the wire codec at delivery.
    #: Each recipient then gets its own decoded copy, so any handler
    #: that mutates a received message — or relies on fan-out copies
    #: aliasing one payload object — breaks loudly instead of silently
    #: corrupting its peers. Costs ~one encode+decode per delivery;
    #: off by default.
    paranoid_codec: bool = False
    #: Wire format used by the paranoid round-trip: ``"ewc1"`` (tagged
    #: JSON, the reference) or ``"ewc2"`` (compact binary). Both must
    #: preserve every payload bit-exactly, so digests are identical.
    wire: str = "ewc1"

    def validate(self) -> None:
        if self.base_latency < 0 or self.jitter < 0:
            raise NetworkError("latencies must be non-negative")
        if not 0.0 <= self.drop_rate < 1.0:
            raise NetworkError(f"drop_rate must be in [0, 1): {self.drop_rate}")
        from repro.runtime.codec import check_wire
        check_wire(self.wire)


class Network(Runtime):
    """Registry of endpoints plus the delivery engine.

    This is the simulator's implementation of the runtime interface:
    the clock is the event loop's simulated time, timers are simulator
    timers, and randomness is split off the experiment seed.
    """

    backend = "sim"

    def __init__(self, loop: EventLoop, config: Optional[NetConfig] = None,
                 rng: Optional[SplitRandom] = None):
        super().__init__()
        config = config or NetConfig()
        config.validate()
        self.loop = loop
        self.config = config
        self.base_rng = rng or SplitRandom(0)
        self.rng = self.base_rng.split("network")
        self.groups = GroupMembership()
        self._endpoints: dict[Address, "Node"] = {}
        self.sequencer_address: Optional[Address] = None
        self._link_clock: dict[tuple[Address, Address], float] = {}
        # Counters for tests and for sanity checks in benchmarks.
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_delivered = 0
        # Per-recipient copies made by fan_out (sequencer emission).
        # Kept separate from packets_sent deliberately: ``send`` counts
        # protocol-level sends and fan-out copies are a fabric-level
        # multiplication, so the two never double-count. Both backends
        # follow this split (see AsyncioUdpRuntime.fanout_copies).
        self.fanout_copies = 0
        # Addresses exempt from random drops (e.g. the FC control plane
        # when an experiment only wants to stress the data path).
        self.lossless: set[Address] = set()
        #: Deterministic drop hook for tests: packets for which this
        #: returns True are silently discarded.
        self.drop_filter: Optional[Callable[[Packet], bool]] = None
        #: Optional :class:`repro.obs.trace.Tracer`. Hot paths guard
        #: every hook with one ``is not None`` check so the disabled
        #: path stays effectively free.
        self.tracer = None

    # -- runtime interface: clock / scheduling / randomness ---------------
    @property
    def now(self) -> float:
        return self.loop.now

    def call_later(self, delay: float, fn: Callable[..., Any],
                   *args: Any):
        return self.loop.schedule(delay, fn, *args)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any):
        return self.loop.schedule_at(time, fn, *args)

    def timer(self, delay: float, fn: Callable[..., Any],
              *args: Any) -> TimerHandle:
        return Timer(self.loop, delay, fn, *args)

    def periodic(self, period: float, fn: Callable[..., Any],
                 *args: Any) -> TimerHandle:
        return PeriodicTimer(self.loop, period, fn, *args)

    def rng_stream(self, name: str) -> SplitRandom:
        return self.base_rng.split(name)

    # -- registration ----------------------------------------------------
    def register(self, node: "Node") -> None:
        if node.address in self._endpoints:
            raise NetworkError(f"duplicate endpoint address {node.address!r}")
        self._endpoints[node.address] = node

    def unregister(self, address: Address) -> None:
        self._endpoints.pop(address, None)
        # Drop the departed endpoint's FIFO link state so the clock map
        # stays bounded under endpoint churn (clients come and go; the
        # map would otherwise grow one entry per link forever).
        if self._link_clock:
            stale = [link for link in self._link_clock
                     if address in link]
            for link in stale:
                del self._link_clock[link]

    def endpoint(self, address: Address) -> "Node":
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"unknown endpoint {address!r}") from None

    def has_endpoint(self, address: Address) -> bool:
        return address in self._endpoints

    # -- observability -----------------------------------------------------
    def instrument(self, registry) -> None:
        """Register pull-gauges over the fabric's live counters on a
        :class:`repro.obs.metrics.MetricsRegistry` (zero hot-path cost)."""
        registry.gauge("net", "packets_sent", fn=lambda: self.packets_sent,
                       monotone=True)
        registry.gauge("net", "packets_dropped",
                       fn=lambda: self.packets_dropped, monotone=True)
        registry.gauge("net", "packets_delivered",
                       fn=lambda: self.packets_delivered, monotone=True)
        registry.gauge("net", "fanout_copies", fn=lambda: self.fanout_copies,
                       monotone=True)
        registry.gauge("net", "endpoints", fn=lambda: len(self._endpoints))

    # -- routing control (exercised by the SDN controller) ---------------
    def install_sequencer_route(self, address: Optional[Address]) -> None:
        """Point the groupcast route at a sequencer (None = black hole).

        While no route is installed — e.g. during sequencer failover —
        sequenced groupcast traffic is silently lost, as in a real
        network between failure and rule re-installation.
        """
        self.sequencer_address = address

    # -- sending ----------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Inject a packet. Unicast goes to ``packet.dst``; groupcast
        fans out (via the sequencer when ``packet.sequenced``)."""
        self.packets_sent += 1
        if self.tracer is not None:
            self.tracer.packet_send(packet)
        if packet.groupcast is not None and packet.multistamp is None:
            self._route_groupcast(packet)
        else:
            if packet.dst is None:
                raise NetworkError("unicast packet without destination")
            self._transmit(packet)

    def fan_out(self, packet: Packet, destinations: tuple[Address, ...]) -> None:
        """Deliver per-recipient copies (used by sequencers)."""
        transmit = self._transmit
        copy_to = packet.copy_to
        self.fanout_copies += len(destinations)
        for dst in destinations:
            transmit(copy_to(dst))

    # -- internals ----------------------------------------------------------
    def _route_groupcast(self, packet: Packet) -> None:
        if not packet.sequenced:
            # Plain (unsequenced) groupcast: direct fan-out to members.
            for group in packet.groupcast.groups:
                self.fan_out(packet, self.groups.members(group))
            return
        if self.sequencer_address is None or not self.has_endpoint(
            self.sequencer_address
        ):
            self._drop(packet, "no-sequencer-route")
            return
        self._transmit(packet.copy_to(self.sequencer_address))

    def _drop(self, packet: Packet, reason: str) -> None:
        self.packets_dropped += 1
        if self.tracer is not None:
            self.tracer.packet_drop(packet, reason)

    def _transmit(self, packet: Packet) -> None:
        # Per-packet hot path: config is read through one local (it can
        # be mutated mid-run by fault injectors, so it is not cached on
        # the network), and the jitter/drop RNG draws are skipped
        # entirely when disabled so lossless zero-jitter runs make no
        # RNG calls here.
        dst = packet.dst
        if dst not in self._endpoints:
            # Destination crashed / deregistered: packet is lost.
            self._drop(packet, "dead-destination")
            return
        if self.drop_filter is not None and self.drop_filter(packet):
            self._drop(packet, "drop-filter")
            return
        config = self.config
        if config.drop_rate > 0.0 and dst not in self.lossless \
                and packet.src not in self.lossless:
            if self.rng.random() < config.drop_rate:
                self._drop(packet, "random-loss")
                return
        latency = config.base_latency
        if config.jitter > 0.0:
            latency += self.rng.uniform(0.0, config.jitter)
        loop = self.loop
        arrival = loop.now + latency
        if config.fifo_links:
            link_clock = self._link_clock
            link = (packet.src, dst)
            floor = link_clock.get(link, 0.0) + 1e-9
            if arrival < floor:
                arrival = floor
            link_clock[link] = arrival
        if self.tracer is not None:
            self.tracer.packet_tx(packet)
        loop.schedule_at(arrival, self._arrive, packet)

    def _arrive(self, packet: Packet) -> None:
        node = self._endpoints.get(packet.dst)
        if node is None:
            self._drop(packet, "dead-destination")
            return
        self.packets_delivered += 1
        if self.tracer is not None:
            self.tracer.packet_deliver(packet)
        if self.config.paranoid_codec:
            # Re-materialize the packet through the wire codec so this
            # recipient gets its own payload copy, exactly as it would
            # over a real transport. The codec preserves packet/trace
            # ids, so tracing and sequencer bookkeeping are unchanged.
            from repro.runtime.codec import decode_packet, encode_packet
            packet = decode_packet(encode_packet(packet, self.config.wire))
        node.deliver(packet)
