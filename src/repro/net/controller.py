"""SDN controller: groupcast routing and sequencer failover (§5.3–5.4).

The controller owns the groupcast forwarding rules. It health-checks
the active sequencer with periodic pings; after ``failure_threshold``
consecutive missed pongs it declares the sequencer dead, withdraws the
route (sequenced traffic black-holes, as in the real network), selects
the next standby, installs a strictly higher epoch number into it, and
— after a configurable ``reroute_delay`` modelling rule re-installation
across the fabric — re-points the groupcast route.

With a **chain-replicated sequencer** (:mod:`repro.net.chainseq`) the
controller additionally health-checks every chain member and repairs a
single failed element by *splicing the chain*: withdraw the route,
re-read the surviving tail's counter state, install a
strictly-higher-version configuration into the survivors (fencing the
spliced-out member), and re-point the route at the new head — without
any epoch bump, so replicas never run the stop-the-world epoch change.
Only when the whole chain is lost does it fall back to the epoch path.
The repair sub-protocol (state read + installs) runs over the lossy
fabric and retransmits every ``ping_interval`` until acknowledged; a
survivor that stops answering mid-repair is folded into the dead set
and the splice restarts with a fresh version.

The paper replicates the controller "using standard means"; here it is
a single simulation object whose failover actions are what the Eris
epoch-change protocol observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.net.network import Network
from repro.net.sequencer import MultiSequencer


@dataclass(frozen=True)
class SequencerPing:
    nonce: int


@dataclass(frozen=True)
class SequencerPong:
    nonce: int


@dataclass(frozen=True)
class EpochInstall:
    """Wire form of ``MultiSequencer.install_epoch``: in a
    multi-process deployment the controller cannot reach a remote
    sequencer object, so epoch installation travels as a message."""

    epoch: int


# Teach sequencers to answer pings and wire-delivered epoch installs
# (kept here so the data-plane module stays free of control-plane
# message types).
def _on_ping(self: MultiSequencer, src: Address, msg: SequencerPing,
             packet: Packet) -> None:
    self.send(src, SequencerPong(msg.nonce))


def _on_epoch_install(self: MultiSequencer, src: Address,
                      msg: EpochInstall, packet: Packet) -> None:
    self.install_epoch(msg.epoch)


MultiSequencer.on_SequencerPing = _on_ping
MultiSequencer.on_EpochInstall = _on_epoch_install


@dataclass
class ControllerConfig:
    ping_interval: float = 10e-3
    failure_threshold: int = 3
    reroute_delay: float = 80e-3
    #: Delay to splice one chain rule after the survivors have adopted
    #: the repaired configuration — a single-rule update, an order of
    #: magnitude cheaper than the fabric-wide ``reroute_delay`` the
    #: epoch path pays.
    chain_repair_delay: float = 10e-3


class SDNController(Node):
    """Monitors the active sequencer and fails over to standbys.

    With ``chain`` set, the primary sequencer is the chain of
    :class:`~repro.net.chainseq.ChainSequencerNode` elements named by
    it; ``sequencers`` then lists the plain standbys used only by the
    whole-chain-lost epoch fallback.
    """

    def __init__(self, address: str, network: Network,
                 sequencers: list[Address],
                 config: Optional[ControllerConfig] = None,
                 chain: Optional[list[Address]] = None):
        super().__init__(address, network)
        if not sequencers:
            raise ConfigurationError("need at least one sequencer")
        if chain is not None and len(chain) < 2:
            raise ConfigurationError("a sequencer chain needs >= 2 nodes")
        self.config = config or ControllerConfig()
        self.sequencers = list(sequencers)
        self.active_index = 0
        self.current_epoch = 1
        self.failovers = 0
        self._missed = 0
        self._nonce = 0
        self._awaiting: Optional[int] = None
        self._failing_over = False
        # -- chain-replicated sequencer state --
        self.chain: list[Address] = list(chain) if chain else []
        self.chain_version = 0
        self.chain_repairs = 0
        self._chain_active = bool(chain)
        self._chain_awaiting: dict[Address, Optional[int]] = {}
        self._chain_missed: dict[Address, int] = {}
        self._repairing = False
        self._repair_phase: Optional[str] = None
        self._repair_survivors: list[Address] = []
        self._repair_dead: list[Address] = []
        self._repair_nonce: Optional[int] = None
        self._repair_tries = 0
        self._repair_acked: set[Address] = set()
        self._repair_counters: dict = {}
        self._ping_timer = self.periodic(self.config.ping_interval,
                                         self._ping)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Install the initial route and begin health checking."""
        if self._chain_active:
            self._install_chain(self.chain, counters={})
            self.network.install_sequencer_route(self.chain[0])
        else:
            self._install_epoch_at(self.active_address, self.current_epoch)
            self.network.install_sequencer_route(self.active_address)
        self._ping_timer.start()

    def stop(self) -> None:
        self._ping_timer.stop()

    @property
    def active_address(self) -> Address:
        if self._chain_active:
            return self.chain[0]
        return self.sequencers[self.active_index]

    def _active_sequencer(self) -> MultiSequencer:
        return self.network.endpoint(self.active_address)

    def _install_epoch_at(self, address: Address, epoch: int) -> None:
        """Install an epoch into a sequencer: directly when it lives in
        this process (the simulator and the single-process UDP runtime
        — behaviour unchanged), over the wire when it is remote."""
        if self.network.has_endpoint(address):
            self.network.endpoint(address).install_epoch(epoch)
        else:
            self.send(address, EpochInstall(epoch))

    # -- health checking ----------------------------------------------------
    def _ping(self) -> None:
        if self._failing_over or self._repairing:
            return
        if self._chain_active:
            self._ping_chain()
            return
        if self._awaiting is not None:
            self._missed += 1
            if self._missed >= self.config.failure_threshold:
                self._begin_failover()
                return
        self._nonce += 1
        self._awaiting = self._nonce
        self.send(self.active_address, SequencerPing(self._nonce))

    def _ping_chain(self) -> None:
        """Health-check every chain member; splice out all members that
        crossed the miss threshold this tick."""
        dead = []
        for member in self.chain:
            if self._chain_awaiting.get(member) is not None:
                missed = self._chain_missed.get(member, 0) + 1
                self._chain_missed[member] = missed
                if missed >= self.config.failure_threshold:
                    dead.append(member)
        if dead:
            self._begin_chain_repair(dead)
            return
        for member in self.chain:
            self._nonce += 1
            self._chain_awaiting[member] = self._nonce
            self.send(member, SequencerPing(self._nonce))

    def on_SequencerPong(self, src: Address, msg: SequencerPong,
                         packet: Packet) -> None:
        if self._chain_active:
            if self._chain_awaiting.get(src) == msg.nonce:
                self._chain_awaiting[src] = None
                self._chain_missed[src] = 0
            return
        if msg.nonce == self._awaiting:
            self._awaiting = None
            self._missed = 0

    # -- epoch-bump failover (the paper's path) -----------------------------
    def _begin_failover(self) -> None:
        """Withdraw the route, pick the next standby, re-route later."""
        self._failing_over = True
        self._awaiting = None
        self._missed = 0
        self.network.install_sequencer_route(None)
        next_index = (self.active_index + 1) % len(self.sequencers)
        self.call_later(self.config.reroute_delay,
                           self._complete_failover, next_index)

    def _complete_failover(self, next_index: int) -> None:
        self.active_index = next_index
        self.current_epoch += 1
        self._install_epoch_at(self.active_address, self.current_epoch)
        self.network.install_sequencer_route(self.active_address)
        self.failovers += 1
        self._failing_over = False

    def force_failover(self) -> None:
        """Immediately begin failover (used by tests/benchmarks that do
        not want to wait out the detection timeout)."""
        if self._failing_over or self._repairing:
            return
        if self._chain_active:
            # Forcing the epoch path while a chain is active means the
            # whole chain is considered lost.
            self._chain_active = False
        self._begin_failover()

    # -- chain splice repair ------------------------------------------------
    def _reset_chain_pings(self) -> None:
        self._chain_awaiting = {m: None for m in self.chain}
        self._chain_missed = {m: 0 for m in self.chain}

    def _install_chain(self, members: list[Address],
                       counters: dict) -> None:
        """Install a configuration at bootstrap, before any traffic is
        admitted (repairs use the message protocol): directly for
        members in this process, over the wire for remote ones — a
        multi-process deployment admits traffic only after every worker
        has started, so the bootstrap installs arrive before any
        groupcast reaches the chain."""
        from repro.net.chainseq import ChainInstall

        self.chain_version += 1
        install = ChainInstall(version=self.chain_version,
                               epoch=self.current_epoch,
                               members=tuple(members),
                               counters=dict(counters))
        for member in members:
            if self.network.has_endpoint(member):
                self.network.endpoint(member).apply_install(install)
            else:
                self.send(member, install)
        self._reset_chain_pings()

    def _begin_chain_repair(self, dead: list[Address]) -> None:
        """Withdraw the route and splice the chain around ``dead``.

        Counter state survives in the remaining members, so the repair
        reads the surviving tail, installs a higher-version config, and
        re-points the route — the epoch (and therefore every replica's
        log) is untouched.
        """
        for member in dead:
            if member not in self._repair_dead:
                self._repair_dead.append(member)
        survivors = [m for m in self.chain if m not in self._repair_dead]
        self._reset_chain_pings()
        self.network.install_sequencer_route(None)
        if not survivors:
            # Whole chain lost: counters are gone; fall back to the
            # paper's epoch-change failover onto a plain standby.
            self._repairing = False
            self._repair_phase = None
            self._chain_active = False
            if self.tracer is not None:
                self.tracer.record("chain_lost", self.address,
                                   dead=list(self._repair_dead))
            self._begin_failover()
            return
        self._repairing = True
        self._repair_survivors = survivors
        self.chain_version += 1          # fresh version per attempt
        self._repair_phase = "state"
        self._repair_tries = 0
        self._send_state_request()

    def _send_state_request(self) -> None:
        from repro.net.chainseq import ChainStateRequest

        self._nonce += 1
        self._repair_nonce = self._nonce
        self._repair_tries += 1
        self.send(self._repair_survivors[-1],
                  ChainStateRequest(self._repair_nonce))
        self.call_later(self.config.ping_interval,
                        self._repair_state_tick, self._repair_nonce)

    def _repair_state_tick(self, nonce: int) -> None:
        if not self._repairing or self._repair_phase != "state" \
                or self._repair_nonce != nonce:
            return
        if self._repair_tries >= self.config.failure_threshold:
            # The surviving tail died mid-repair: restart without it.
            self._begin_chain_repair([self._repair_survivors[-1]])
            return
        self._send_state_request()

    def on_ChainState(self, src: Address, msg, packet: Packet) -> None:
        if not self._repairing or self._repair_phase != "state" \
                or msg.nonce != self._repair_nonce:
            return
        self._repair_counters = dict(msg.counters)
        self._repair_phase = "install"
        self._repair_acked = set()
        self._repair_tries = 0
        self._send_installs()

    def _send_installs(self) -> None:
        from repro.net.chainseq import ChainInstall

        install = ChainInstall(version=self.chain_version,
                               epoch=self.current_epoch,
                               members=tuple(self._repair_survivors),
                               counters=dict(self._repair_counters))
        self._repair_tries += 1
        for member in self.chain:
            # Survivors adopt and ack; a (falsely) suspected member
            # that is still alive is fenced by the same message.
            if member not in self._repair_acked:
                self.send(member, install)
        self.call_later(self.config.ping_interval,
                        self._repair_install_tick, self.chain_version)

    def _repair_install_tick(self, version: int) -> None:
        if not self._repairing or self._repair_phase != "install" \
                or self.chain_version != version:
            return
        missing = [m for m in self._repair_survivors
                   if m not in self._repair_acked]
        if not missing:
            return
        if self._repair_tries >= self.config.failure_threshold:
            self._begin_chain_repair(missing)
            return
        self._send_installs()

    def on_ChainInstallAck(self, src: Address, msg, packet: Packet) -> None:
        if not self._repairing or self._repair_phase != "install" \
                or msg.version != self.chain_version:
            return
        self._repair_acked.add(src)
        if all(m in self._repair_acked for m in self._repair_survivors):
            self._repair_phase = "route"
            self.call_later(self.config.chain_repair_delay,
                            self._complete_chain_repair, self.chain_version)

    def _complete_chain_repair(self, version: int) -> None:
        if not self._repairing or self.chain_version != version:
            return
        self.chain = list(self._repair_survivors)
        self._reset_chain_pings()
        self.network.install_sequencer_route(self.chain[0])
        self.chain_repairs += 1
        self._repair_dead = []
        self._repairing = False
        self._repair_phase = None
        if self.tracer is not None:
            self.tracer.record("chain_repair", self.address,
                               version=self.chain_version,
                               members=list(self.chain),
                               epoch=self.current_epoch)

    def force_chain_repair(self, dead: list[Address]) -> None:
        """Immediately splice out ``dead`` (tests/benchmarks that do
        not want to wait out the detection timeout)."""
        if self._chain_active and not self._repairing \
                and not self._failing_over:
            self._begin_chain_repair(list(dead))
