"""SDN controller: groupcast routing and sequencer failover (§5.3–5.4).

The controller owns the groupcast forwarding rules. It health-checks
the active sequencer with periodic pings; after ``failure_threshold``
consecutive missed pongs it declares the sequencer dead, withdraws the
route (sequenced traffic black-holes, as in the real network), selects
the next standby, installs a strictly higher epoch number into it, and
— after a configurable ``reroute_delay`` modelling rule re-installation
across the fabric — re-points the groupcast route.

The paper replicates the controller "using standard means"; here it is
a single simulation object whose failover actions are what the Eris
epoch-change protocol observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.net.network import Network
from repro.net.sequencer import MultiSequencer


@dataclass(frozen=True)
class SequencerPing:
    nonce: int


@dataclass(frozen=True)
class SequencerPong:
    nonce: int


# Teach sequencers to answer pings (kept here so the data-plane module
# stays free of control-plane message types).
def _on_ping(self: MultiSequencer, src: Address, msg: SequencerPing,
             packet: Packet) -> None:
    self.send(src, SequencerPong(msg.nonce))


MultiSequencer.on_SequencerPing = _on_ping


@dataclass
class ControllerConfig:
    ping_interval: float = 10e-3
    failure_threshold: int = 3
    reroute_delay: float = 80e-3


class SDNController(Node):
    """Monitors the active sequencer and fails over to standbys."""

    def __init__(self, address: str, network: Network,
                 sequencers: list[Address],
                 config: Optional[ControllerConfig] = None):
        super().__init__(address, network)
        if not sequencers:
            raise ConfigurationError("need at least one sequencer")
        self.config = config or ControllerConfig()
        self.sequencers = list(sequencers)
        self.active_index = 0
        self.current_epoch = 1
        self.failovers = 0
        self._missed = 0
        self._nonce = 0
        self._awaiting: Optional[int] = None
        self._failing_over = False
        self._ping_timer = self.periodic(self.config.ping_interval,
                                         self._ping)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Install the initial route and begin health checking."""
        seq = self._active_sequencer()
        seq.install_epoch(self.current_epoch)
        self.network.install_sequencer_route(seq.address)
        self._ping_timer.start()

    def stop(self) -> None:
        self._ping_timer.stop()

    @property
    def active_address(self) -> Address:
        return self.sequencers[self.active_index]

    def _active_sequencer(self) -> MultiSequencer:
        return self.network.endpoint(self.active_address)

    # -- health checking ----------------------------------------------------
    def _ping(self) -> None:
        if self._failing_over:
            return
        if self._awaiting is not None:
            self._missed += 1
            if self._missed >= self.config.failure_threshold:
                self._begin_failover()
                return
        self._nonce += 1
        self._awaiting = self._nonce
        self.send(self.active_address, SequencerPing(self._nonce))

    def on_SequencerPong(self, src: Address, msg: SequencerPong,
                         packet: Packet) -> None:
        if msg.nonce == self._awaiting:
            self._awaiting = None
            self._missed = 0

    # -- failover ----------------------------------------------------------
    def _begin_failover(self) -> None:
        """Withdraw the route, pick the next standby, re-route later."""
        self._failing_over = True
        self._awaiting = None
        self._missed = 0
        self.network.install_sequencer_route(None)
        next_index = (self.active_index + 1) % len(self.sequencers)
        self.call_later(self.config.reroute_delay,
                           self._complete_failover, next_index)

    def _complete_failover(self, next_index: int) -> None:
        self.active_index = next_index
        self.current_epoch += 1
        replacement = self._active_sequencer()
        replacement.install_epoch(self.current_epoch)
        self.network.install_sequencer_route(replacement.address)
        self.failovers += 1
        self._failing_over = False

    def force_failover(self) -> None:
        """Immediately begin failover (used by tests/benchmarks that do
        not want to wait out the detection timeout)."""
        if not self._failing_over:
            self._begin_failover()
