"""The multi-stamping sequencer (§5.3–5.4).

One sequencer is designated for the system at a time. Every sequenced
groupcast packet is routed through it; the sequencer parses the
groupcast header, atomically increments one counter per destination
group, writes the resulting :class:`~repro.net.message.MultiStamp`
(with its epoch number) into the packet, and fans per-recipient copies
out to every member of every destination group.

All counter state is *soft*: a replacement sequencer starts every
counter at zero in a strictly higher epoch, and receivers order
messages lexicographically by (epoch, sequence) — the paper's
fault-tolerance design, which pushes recovery to the application (the
Eris epoch-change protocol) instead of replicating the sequencer.

Three deployment profiles mirror §5.4 / Table 1: an in-switch design, a
network-processor middlebox, and a commodity end host. They differ only
in per-packet processing capacity and added latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.net.endpoint import Node
from repro.net.message import MultiStamp, Packet
from repro.net.network import Network

#: Hard cap on the ingress-timestamp map. Entries are normally popped
#: when the packet is stamped; packets that never reach ``stamp`` (in
#: flight across a crash, rejected by a retired chain node) would
#: otherwise accumulate forever. The bound evicts oldest-first, which
#: only costs queue-delay attribution for pathologically old packets.
INGRESS_BOUND = 4096


@dataclass(frozen=True)
class SequencerProfile:
    """Capacity/latency envelope of one sequencer implementation.

    ``per_packet_service`` is the inverse of the implementation's
    packet-processing capacity; ``added_latency`` is the extra one-way
    delay a packet experiences traversing it (Table 1's latency column,
    which the Table 1 benchmark reproduces).
    """

    name: str
    per_packet_service: float
    added_latency: float

    # Paper reference points (Table 1 + §5.4 in-switch analysis).
    @staticmethod
    def in_switch() -> "SequencerProfile":
        """Line-rate programmable switch: effectively unconstrained."""
        return SequencerProfile("in-switch", 0.0, 0.5e-6)

    @staticmethod
    def middlebox() -> "SequencerProfile":
        """Cavium Octeon CN6880: 6.19M packets/s, 13.64 us latency."""
        return SequencerProfile("middlebox", 1.0 / 6.19e6, 13.64e-6)

    @staticmethod
    def endhost() -> "SequencerProfile":
        """Userspace Linux on a 24-core Xeon: 1.61M packets/s, 24.60 us."""
        return SequencerProfile("endhost", 1.0 / 1.61e6, 24.60e-6)


class MultiSequencer(Node):
    """A network element that multi-stamps groupcast packets."""

    def __init__(self, address: str, network: Network,
                 profile: SequencerProfile | None = None, epoch: int = 1,
                 stamp_batch: int = 1):
        super().__init__(address, network)
        self.profile = profile or SequencerProfile.in_switch()
        self.msg_service_time = self.profile.per_packet_service
        self.epoch = epoch
        self.counters: dict[int, int] = {}
        self.packets_stamped = 0
        # Protocol-level batching: with stamp_batch > 1 arriving
        # groupcasts queue and a zero-delay wakeup stamps up to
        # stamp_batch of them back-to-back, amortizing the emit path.
        # The default (1) stamps synchronously on delivery — the exact
        # pre-batching event order, pinned by the determinism digests.
        self.stamp_batch = stamp_batch
        self.stamp_wakeups = 0
        self._stamp_queue: deque[Packet] = deque()
        self._stamp_wakeup_armed = False
        # Fabric-arrival timestamps for queue-delay attribution, keyed
        # by packet id. Populated only while a tracer is attached.
        self._ingress: dict[int, float] = {}

    def install_epoch(self, epoch: int) -> None:
        """SDN controller installs a strictly higher epoch; counters
        restart (soft state is lost with the previous sequencer)."""
        if epoch <= self.epoch and self.packets_stamped:
            raise ValueError(
                f"epoch must increase: {epoch} <= {self.epoch}"
            )
        self.epoch = epoch
        self.counters = {}

    # The sequencer handles raw packets, not payload messages.
    def _process(self, packet: Packet) -> None:
        if self.crashed:
            return
        self.messages_processed += 1
        if packet.groupcast is None:
            if packet.dst == self.address:
                # Control-plane traffic for the sequencer itself
                # (health-check pings from the SDN controller).
                self.handle(packet.src, packet.payload, packet)
            elif packet.dst is not None:
                # Not groupcast traffic; a real switch just forwards.
                self.network.send(packet)
            return
        self._process_groupcast(packet)

    def _process_groupcast(self, packet: Packet) -> None:
        """Stamp one sequenced groupcast packet and emit it — directly,
        or via the batching queue when ``stamp_batch`` > 1."""
        if self.stamp_batch <= 1:
            self._stamp_one(packet)
            return
        self._stamp_queue.append(packet)
        if not self._stamp_wakeup_armed:
            self._stamp_wakeup_armed = True
            self.call_later(0.0, self._stamp_wakeup)

    def _stamp_wakeup(self) -> None:
        """Drain up to ``stamp_batch`` queued groupcasts in one wakeup;
        re-arm if a burst left more behind."""
        self._stamp_wakeup_armed = False
        if self.crashed:
            self._stamp_queue.clear()
            return
        self.stamp_wakeups += 1
        queue = self._stamp_queue
        budget = self.stamp_batch
        while queue and budget:
            self._stamp_one(queue.popleft())
            budget -= 1
        if queue and not self._stamp_wakeup_armed:
            self._stamp_wakeup_armed = True
            self.call_later(0.0, self._stamp_wakeup)

    def _stamp_one(self, packet: Packet) -> None:
        """Stamp one groupcast and emit it. Split out so variants (OUM
        flooding, chain replication) can change where stamped packets
        go — and keep their stamp-time admission checks — without
        re-implementing the dispatch or batching above."""
        self._emit(self.stamp(packet))

    def _emit(self, stamped: Packet) -> None:
        """Release a stamped packet to its destination groups."""
        network = self.network
        fan_out = network.fan_out
        members = network.groups.members
        for group in stamped.groupcast.groups:
            fan_out(stamped, members(group))

    def stamp(self, packet: Packet) -> Packet:
        """Atomically assign one sequence number per destination group."""
        counters = self.counters
        stamps = []
        for group in packet.groupcast.groups:
            seq = counters.get(group, 0) + 1
            counters[group] = seq
            stamps.append((group, seq))
        packet.multistamp = MultiStamp(epoch=self.epoch, stamps=tuple(stamps))
        self.packets_stamped += 1
        if self.tracer is not None:
            self.tracer.sequencer_stamp(
                self.address, packet,
                queue_delay=self._queue_delay(packet))
        return packet

    def _queue_delay(self, packet: Packet) -> float | None:
        """Time the packet waited behind other packets: processing
        finished now, so the wait is now minus fabric arrival minus the
        profile's unavoidable traversal latency and service time."""
        ingress = self._ingress.pop(packet.packet_id, None)
        if ingress is None:
            return None  # tracer attached after this packet arrived
        wait = (self.now - ingress - self.profile.added_latency
                - self.profile.per_packet_service)
        return max(0.0, wait)

    def instrument(self, registry) -> None:
        """Register this sequencer's live counters as pull-gauges."""
        registry.gauge(self.address, "packets_stamped",
                       fn=lambda: self.packets_stamped, monotone=True)
        registry.gauge(self.address, "epoch", fn=lambda: self.epoch)
        registry.gauge(self.address, "groups_stamped",
                       fn=lambda: len(self.counters))
        registry.gauge(self.address, "stamp_wakeups",
                       fn=lambda: self.stamp_wakeups, monotone=True)

    def service_time_for(self, packet: Packet) -> float:
        return self.profile.per_packet_service

    def crash(self) -> None:
        super().crash()
        # Packets recorded at deliver time but still in flight toward
        # stamp (latency timers, the batching queue) will never be
        # popped by _queue_delay — drop their bookkeeping with the node.
        self._ingress.clear()
        self._stamp_queue.clear()

    def deliver(self, packet: Packet) -> None:
        # Charge the profile's traversal latency on top of queueing.
        if self.crashed:
            return
        if self.tracer is not None and packet.groupcast is not None:
            ingress = self._ingress
            while len(ingress) >= INGRESS_BOUND:
                ingress.pop(next(iter(ingress)))
            ingress[packet.packet_id] = self.now
        self.call_later(self.profile.added_latency,
                        super().deliver, packet)
