"""The multi-stamping sequencer (§5.3–5.4).

One sequencer is designated for the system at a time. Every sequenced
groupcast packet is routed through it; the sequencer parses the
groupcast header, atomically increments one counter per destination
group, writes the resulting :class:`~repro.net.message.MultiStamp`
(with its epoch number) into the packet, and fans per-recipient copies
out to every member of every destination group.

All counter state is *soft*: a replacement sequencer starts every
counter at zero in a strictly higher epoch, and receivers order
messages lexicographically by (epoch, sequence) — the paper's
fault-tolerance design, which pushes recovery to the application (the
Eris epoch-change protocol) instead of replicating the sequencer.

Three deployment profiles mirror §5.4 / Table 1: an in-switch design, a
network-processor middlebox, and a commodity end host. They differ only
in per-packet processing capacity and added latency.

Beyond the paper's base design, this sequencer has grown three
independently-toggled extensions:

- **Stamp batching** (``stamp_batch`` > 1): arriving groupcasts queue
  and a zero-delay wakeup stamps several back-to-back, amortizing the
  emit path (see DESIGN.md, "Protocol-level batching").
- **Chain replication**: :class:`repro.net.chainseq.ChainSequencerNode`
  subclasses this node so counter state survives sequencer failure
  without an epoch change; only the chain tail releases stamped
  packets.
- **Coordination-free fast paths** (``read_fast_path`` /
  ``commutative_apply``, both default-off): a Harmonia-style per-key
  *dirty-set* of in-flight conflicting writes, maintained at stamp
  time (§3.2 is where Eris pins the serial order; the dirty-set tracks
  which prefix of that order every replica has executed). READ_ONLY
  transactions whose keys are clean are forwarded to a single replica
  instead of being stamped for the §5.1 full-quorum path, and
  COMMUTATIVE transactions are stamped with a reorder *barrier* that
  lets replicas apply them out of order within an epoch. Clear rules,
  false-positive semantics, and the chain interaction are specified in
  DESIGN.md ("The dirty-set protocol").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.net.endpoint import Node
from repro.net.message import MultiStamp, Packet
from repro.net.network import Network

_messages = None


def _core_messages():
    """Lazy import of repro.core.messages: repro.core.transaction
    imports repro.net.message, so importing the other direction at
    module load would be circular. Only the fast-path code (knobs on)
    ever needs these classes."""
    global _messages
    if _messages is None:
        from repro.core import messages
        _messages = messages
    return _messages

#: Hard cap on the ingress-timestamp map. Entries are normally popped
#: when the packet is stamped; packets that never reach ``stamp`` (in
#: flight across a crash, rejected by a retired chain node) would
#: otherwise accumulate forever. The bound evicts oldest-first, which
#: only costs queue-delay attribution for pathologically old packets.
INGRESS_BOUND = 4096


@dataclass(frozen=True)
class SequencerProfile:
    """Capacity/latency envelope of one sequencer implementation.

    ``per_packet_service`` is the inverse of the implementation's
    packet-processing capacity; ``added_latency`` is the extra one-way
    delay a packet experiences traversing it (Table 1's latency column,
    which the Table 1 benchmark reproduces).
    """

    name: str
    per_packet_service: float
    added_latency: float

    # Paper reference points (Table 1 + §5.4 in-switch analysis).
    @staticmethod
    def in_switch() -> "SequencerProfile":
        """Line-rate programmable switch: effectively unconstrained."""
        return SequencerProfile("in-switch", 0.0, 0.5e-6)

    @staticmethod
    def middlebox() -> "SequencerProfile":
        """Cavium Octeon CN6880: 6.19M packets/s, 13.64 us latency."""
        return SequencerProfile("middlebox", 1.0 / 6.19e6, 13.64e-6)

    @staticmethod
    def endhost() -> "SequencerProfile":
        """Userspace Linux on a 24-core Xeon: 1.61M packets/s, 24.60 us."""
        return SequencerProfile("endhost", 1.0 / 1.61e6, 24.60e-6)


class MultiSequencer(Node):
    """A network element that multi-stamps groupcast packets."""

    def __init__(self, address: str, network: Network,
                 profile: SequencerProfile | None = None, epoch: int = 1,
                 stamp_batch: int = 1, read_fast_path: bool = False,
                 commutative_apply: bool = False):
        super().__init__(address, network)
        self.profile = profile or SequencerProfile.in_switch()
        self.msg_service_time = self.profile.per_packet_service
        self.epoch = epoch
        self.counters: dict[int, int] = {}
        self.packets_stamped = 0
        # Protocol-level batching: with stamp_batch > 1 arriving
        # groupcasts queue and a zero-delay wakeup stamps up to
        # stamp_batch of them back-to-back, amortizing the emit path.
        # The default (1) stamps synchronously on delivery — the exact
        # pre-batching event order, pinned by the determinism digests.
        self.stamp_batch = stamp_batch
        self.stamp_wakeups = 0
        self._stamp_queue: deque[Packet] = deque()
        self._stamp_wakeup_armed = False
        # Fabric-arrival timestamps for queue-delay attribution, keyed
        # by packet id. Populated only while a tracer is attached.
        self._ingress: dict[int, float] = {}
        # -- coordination-free fast paths (default-off) -------------------
        self.read_fast_path = read_fast_path
        self.commutative_apply = commutative_apply
        #: Dirty-set: key -> (epoch, ((group, seq), ...)) of the last
        #: stamped write declaring that key. An entry is *cleared* only
        #: by evidence of application (watermark coverage) or by an
        #: epoch change making it moot; false positives (stale entries
        #: for already-applied writes) merely demote reads to the slow
        #: path — they never break safety.
        self._dirty: dict = {}
        #: Per-group sequence of the last stamped write with an
        #: *undeclared* write set. Such a write could touch any key, so
        #: it poisons the whole group until covered.
        self._blind_high: dict[int, int] = {}
        #: Per-group execution watermarks: group -> {replica: (epoch,
        #: upto)} absorbed from AppliedUpto reports.
        self._applied: dict[int, dict] = {}
        #: Per-group sequence of the last non-COMMUTATIVE stamp — the
        #: reorder barrier attached to commutative transactions.
        self._barrier: dict[int, int] = {}
        #: Round-robin cursor for fast-read replica selection.
        self._fast_rr: dict[int, int] = {}
        self.fast_reads = 0
        self.fast_read_misses = 0
        self.watermarks_absorbed = 0

    def install_epoch(self, epoch: int) -> None:
        """SDN controller installs a strictly higher epoch; counters
        restart (soft state is lost with the previous sequencer)."""
        if epoch <= self.epoch and self.packets_stamped:
            raise ValueError(
                f"epoch must increase: {epoch} <= {self.epoch}"
            )
        self.epoch = epoch
        self.counters = {}
        # Fast-path soft state is epoch-scoped: a fresh epoch starts
        # with an empty dirty-set but also with *no* watermark reports,
        # and _covered demands current-epoch reports from every
        # replica, so reads stay on the slow path until the shard
        # demonstrably catches up. Conservative, never unsafe.
        self._dirty.clear()
        self._blind_high.clear()
        self._applied.clear()
        self._barrier.clear()

    # The sequencer handles raw packets, not payload messages.
    def _process(self, packet: Packet) -> None:
        if self.crashed:
            return
        self.messages_processed += 1
        if packet.groupcast is None:
            if packet.dst == self.address:
                # Control-plane traffic for the sequencer itself
                # (health-check pings from the SDN controller).
                self.handle(packet.src, packet.payload, packet)
            elif packet.dst is not None:
                # Not groupcast traffic; a real switch just forwards.
                self.network.send(packet)
            return
        self._process_groupcast(packet)

    def _process_groupcast(self, packet: Packet) -> None:
        """Stamp one sequenced groupcast packet and emit it — directly,
        or via the batching queue when ``stamp_batch`` > 1.

        With the read fast path on, two packet kinds are intercepted
        *before* a sequence number is consumed: replica execution
        watermarks (absorbed into the dirty-set bookkeeping) and clean
        READ_ONLY transactions (forwarded to a single replica)."""
        if self.read_fast_path:
            payload = packet.payload
            if isinstance(payload, _core_messages().AppliedUpto):
                self._ingress.pop(packet.packet_id, None)
                self._absorb_watermark(payload)
                return
            if self._maybe_fast_read(packet):
                return
        if self.stamp_batch <= 1:
            self._stamp_one(packet)
            return
        self._stamp_queue.append(packet)
        if not self._stamp_wakeup_armed:
            self._stamp_wakeup_armed = True
            self.call_later(0.0, self._stamp_wakeup)

    def _stamp_wakeup(self) -> None:
        """Drain up to ``stamp_batch`` queued groupcasts in one wakeup;
        re-arm if a burst left more behind."""
        self._stamp_wakeup_armed = False
        if self.crashed:
            self._stamp_queue.clear()
            return
        self.stamp_wakeups += 1
        queue = self._stamp_queue
        budget = self.stamp_batch
        while queue and budget:
            self._stamp_one(queue.popleft())
            budget -= 1
        if queue and not self._stamp_wakeup_armed:
            self._stamp_wakeup_armed = True
            self.call_later(0.0, self._stamp_wakeup)

    def _stamp_one(self, packet: Packet) -> None:
        """Stamp one groupcast and emit it. Split out so variants (OUM
        flooding, chain replication) can change where stamped packets
        go — and keep their stamp-time admission checks — without
        re-implementing the dispatch or batching above."""
        self._emit(self.stamp(packet))

    def _emit(self, stamped: Packet) -> None:
        """Release a stamped packet to its destination groups."""
        network = self.network
        fan_out = network.fan_out
        members = network.groups.members
        for group in stamped.groupcast.groups:
            fan_out(stamped, members(group))

    def stamp(self, packet: Packet) -> Packet:
        """Atomically assign one sequence number per destination group."""
        counters = self.counters
        stamps = []
        for group in packet.groupcast.groups:
            seq = counters.get(group, 0) + 1
            counters[group] = seq
            stamps.append((group, seq))
        if self.read_fast_path or self.commutative_apply:
            self._note_stamped(packet, tuple(stamps))
        packet.multistamp = MultiStamp(epoch=self.epoch, stamps=tuple(stamps))
        self.packets_stamped += 1
        if self.tracer is not None:
            self.tracer.sequencer_stamp(
                self.address, packet,
                queue_delay=self._queue_delay(packet))
        return packet

    # -- coordination-free fast paths (DESIGN.md: dirty-set protocol) -----
    def _note_stamped(self, packet: Packet, stamps: tuple) -> None:
        """Stamp-time bookkeeping for the fast paths.

        *Install rule*: every non-READ_ONLY stamp installs a dirty
        entry for each declared write key; a write with an undeclared
        write set raises the group's blind high-water mark instead
        (poisoning every key on the shard). Installation happens at
        stamp time — before the write is released or applied anywhere —
        so the dirty window conservatively covers the write's entire
        in-flight life.

        *Barrier rule*: every non-COMMUTATIVE stamp (including slow-
        path reads) advances the group's reorder barrier; commutative
        transactions are re-enveloped with the barrier so replicas know
        which prefix must be in-order before out-of-order application
        is safe (§3.2 relaxation point).
        """
        payload = packet.payload
        txn = getattr(payload, "txn", None)
        op_class = txn.op_class if txn is not None else "generic"
        if self.read_fast_path and op_class != "read_only":
            write_keys = txn.write_keys if txn is not None else None
            if write_keys:
                entry = (self.epoch, stamps)
                dirty = self._dirty
                for key in write_keys:
                    dirty[key] = entry
            else:
                blind = self._blind_high
                for group, seq in stamps:
                    blind[group] = seq
        if self.commutative_apply:
            messages = _core_messages()
            if op_class == "commutative" and txn.kind == "independent" \
                    and isinstance(payload, messages.IndependentTxnRequest):
                packet.payload = messages.CommutativeTxnRequest(
                    txn=txn,
                    barriers=tuple((group, self._barrier.get(group, 0))
                                   for group, _ in stamps))
            else:
                barrier = self._barrier
                for group, seq in stamps:
                    barrier[group] = seq

    def _absorb_watermark(self, msg) -> None:
        """Clear rule: a replica's (epoch, upto) report witnesses that
        every slot of that epoch up to ``upto`` has been *executed*
        there. Reports only ever advance; reordered stale reports are
        ignored."""
        self.watermarks_absorbed += 1
        reports = self._applied.setdefault(msg.shard, {})
        report = (msg.epoch, msg.upto)
        previous = reports.get(msg.sender)
        if previous is None or previous < report:
            reports[msg.sender] = report
        if len(self._dirty) > 65536:
            self._prune_dirty()

    def _prune_dirty(self) -> None:
        """Drop dirty entries whose every stamp is covered — pure
        memory hygiene; _clean would skip them anyway once covered."""
        dirty = self._dirty
        for key, (epoch, stamps) in list(dirty.items()):
            if epoch < self.epoch or all(
                    self._covered(group, seq) for group, seq in stamps):
                del dirty[key]

    def _covered(self, group: int, seq: int) -> bool:
        """Has every replica of ``group`` executed (self.epoch, seq)?

        Requires a current-epoch (or newer) report from *all* replicas
        — not a majority. Replicas reply to clients at log-append time,
        so a write can commit before lagging replicas execute it; only
        all-replica execution coverage guarantees no single replica
        can serve a read that misses a committed conflicting write. A
        newer-epoch report also covers: entering epoch E+1 means the
        replica fed the entire FC-rebuilt log, and any epoch-E stamp
        outside that log was permanently dropped everywhere (§6.5).
        """
        reports = self._applied.get(group)
        if not reports:
            return False
        epoch = self.epoch
        for addr in self.network.groups.members(group):
            report = reports.get(addr)
            if report is None:
                return False
            r_epoch, r_upto = report
            if r_epoch > epoch:
                continue
            if r_epoch < epoch or r_upto < seq:
                return False
        return True

    def _clean(self, group: int, read_keys) -> bool:
        """Dirty-set check for a single-shard READ_ONLY transaction.

        Clean means: the group's blind high-water mark and the last
        stamped write of every read key are covered by all-replica
        execution watermarks. The blind check doubles as a freshness
        guard — even at mark 0 it demands current-epoch reports from
        every replica, so a fresh sequencer (or a chain head spliced in
        mid-epoch) serves no fast reads until the shard demonstrably
        catches up to its epoch.
        """
        if not self._covered(group, self._blind_high.get(group, 0)):
            return False
        epoch = self.epoch
        dirty = self._dirty
        for key in read_keys:
            entry = dirty.get(key)
            if entry is None:
                continue
            d_epoch, stamps = entry
            if d_epoch > epoch:
                return False  # stale element being superseded: demote
            if d_epoch < epoch:
                # Moot after epoch change: the write is either in the
                # FC-rebuilt log (covered by the current-epoch reports
                # the blind check already demanded) or perm-dropped at
                # every replica (§6.5).
                del dirty[key]
                continue
            for d_group, d_seq in stamps:
                if d_group == group and not self._covered(group, d_seq):
                    return False
        return True

    def _may_serve_fast_reads(self) -> bool:
        """Is this element currently authorized to answer the dirty-set
        check? Chain nodes override: only the active head may."""
        return True

    def _maybe_fast_read(self, packet: Packet) -> bool:
        """Serve a clean single-shard READ_ONLY transaction from one
        replica, bypassing stamping entirely (Harmonia's fast read).
        Returns False — caller stamps normally — on any doubt."""
        if not self._may_serve_fast_reads():
            return False
        payload = packet.payload
        if not isinstance(payload, _core_messages().IndependentTxnRequest):
            return False
        txn = payload.txn
        if (txn.op_class != "read_only" or txn.kind != "independent"
                or len(packet.groupcast.groups) != 1 or not txn.read_keys):
            return False
        group = packet.groupcast.groups[0]
        if not self._clean(group, txn.read_keys):
            self.fast_read_misses += 1
            return False
        members = tuple(self.network.groups.members(group))
        cursor = self._fast_rr.get(group, 0)
        self._fast_rr[group] = cursor + 1
        target = members[cursor % len(members)]
        self.fast_reads += 1
        self._ingress.pop(packet.packet_id, None)
        if self.tracer is not None:
            self.tracer.record(
                "fast_read", self.address, cause=packet.trace_id,
                txn=txn.txn_id.label(), shard=group,
                keys=sorted(repr(key) for key in txn.read_keys),
                replica=target)
        self.send(target, _core_messages().FastReadRequest(
            txn=txn, min_epoch=self.epoch))
        return True

    def _queue_delay(self, packet: Packet) -> float | None:
        """Time the packet waited behind other packets: processing
        finished now, so the wait is now minus fabric arrival minus the
        profile's unavoidable traversal latency and service time."""
        ingress = self._ingress.pop(packet.packet_id, None)
        if ingress is None:
            return None  # tracer attached after this packet arrived
        wait = (self.now - ingress - self.profile.added_latency
                - self.profile.per_packet_service)
        return max(0.0, wait)

    def instrument(self, registry) -> None:
        """Register this sequencer's live counters as pull-gauges."""
        registry.gauge(self.address, "packets_stamped",
                       fn=lambda: self.packets_stamped, monotone=True)
        registry.gauge(self.address, "epoch", fn=lambda: self.epoch)
        registry.gauge(self.address, "groups_stamped",
                       fn=lambda: len(self.counters))
        registry.gauge(self.address, "stamp_wakeups",
                       fn=lambda: self.stamp_wakeups, monotone=True)
        registry.gauge(self.address, "fast_reads",
                       fn=lambda: self.fast_reads, monotone=True)
        registry.gauge(self.address, "fast_read_misses",
                       fn=lambda: self.fast_read_misses, monotone=True)
        registry.gauge(self.address, "watermarks_absorbed",
                       fn=lambda: self.watermarks_absorbed, monotone=True)

    def service_time_for(self, packet: Packet) -> float:
        return self.profile.per_packet_service

    def crash(self) -> None:
        super().crash()
        # Packets recorded at deliver time but still in flight toward
        # stamp (latency timers, the batching queue) will never be
        # popped by _queue_delay — drop their bookkeeping with the node.
        self._ingress.clear()
        self._stamp_queue.clear()

    def deliver(self, packet: Packet) -> None:
        # Charge the profile's traversal latency on top of queueing.
        if self.crashed:
            return
        if self.tracer is not None and packet.groupcast is not None:
            ingress = self._ingress
            while len(ingress) >= INGRESS_BOUND:
                ingress.pop(next(iter(ingress)))
            ingress[packet.packet_id] = self.now
        self.call_later(self.profile.added_latency,
                        super().deliver, packet)
