"""The ``Node`` base class: message dispatch plus a CPU model.

Every protocol participant (replica, client, sequencer, FC, controller)
is a ``Node``. Two things live here:

**Dispatch.** Incoming payloads are routed to ``on_<ClassName>``
methods, e.g. an ``IndependentTxnRequest`` payload invokes
``on_IndependentTxnRequest(src, msg, packet)``. Unhandled types raise,
so protocol omissions fail loudly.

**CPU model.** A node serializes message processing: each message
occupies the (single-core) server for ``service_time_for(packet)``
seconds, and handlers can charge extra execution time with
:meth:`Node.busy`. Arrivals during a busy period queue. This is what
makes servers saturate, which in turn is what makes throughput
comparisons between protocols meaningful: a protocol that makes each
server process more messages per transaction gets a proportionally
lower ceiling, exactly the effect the paper measures.

A node talks to the outside world exclusively through its
:class:`~repro.runtime.interface.Runtime` (clock, timers, transport),
so the same protocol classes run over the simulator and over real
sockets (:mod:`repro.runtime.asyncio_udp`) without modification.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import NetworkError
from repro.net.message import Address, GroupcastHeader, Packet
from repro.runtime.interface import Runtime, TimerHandle


class Node:
    """Base class for all protocol endpoints."""

    #: Default per-message processing cost (seconds). Subclasses and
    #: cluster builders override this to model faster/slower servers.
    msg_service_time: float = 0.0

    def __init__(self, address: Address, runtime: Runtime):
        self.address = address
        self.runtime = runtime
        #: Historical alias — the simulator's fabric *is* the runtime,
        #: and a large body of callers (and tests) reach it as
        #: ``node.network``.
        self.network = runtime
        #: Simulator-only escape hatch for tests; real transports have
        #: no event loop to expose.
        self.loop = getattr(runtime, "loop", None)
        self._busy_until = 0.0
        self._inbox: deque[Packet] = deque()
        self._drain_pending = False
        self.messages_processed = 0
        self.crashed = False
        runtime.register(self)

    # -- runtime conveniences ----------------------------------------------
    @property
    def now(self) -> float:
        return self.runtime.now

    @property
    def tracer(self):
        return self.runtime.tracer

    def call_later(self, delay: float, fn, *args) -> Any:
        return self.runtime.call_later(delay, fn, *args)

    def fresh_tag(self, prefix: str) -> str:
        return self.runtime.fresh_tag(prefix)

    # -- sending -----------------------------------------------------------
    def send(self, dst: Address, message: Any) -> Optional[Packet]:
        """Unicast a protocol message. Returns the injected packet
        (``None`` when crashed) so trace hooks can read the causal id
        the tracer assigned at injection."""
        if self.crashed:
            return None
        packet = Packet(src=self.address, dst=dst, payload=message)
        self.runtime.send(packet)
        return packet

    def send_groupcast(self, groups: tuple[int, ...], message: Any,
                       sequenced: bool = True) -> Optional[Packet]:
        """Groupcast a message to a set of groups (§5.2).

        With ``sequenced=True`` the packet is routed through the
        installed sequencer and arrives multi-stamped. Returns the
        injected packet (``None`` when crashed).
        """
        if self.crashed:
            return None
        packet = Packet(
            src=self.address,
            dst=None,
            payload=message,
            groupcast=GroupcastHeader(tuple(groups)),
            sequenced=sequenced,
        )
        self.runtime.send(packet)
        return packet

    # -- timers --------------------------------------------------------------
    def timer(self, delay: float, fn, *args) -> TimerHandle:
        return self.runtime.timer(delay, fn, *args)

    def periodic(self, period: float, fn, *args) -> TimerHandle:
        return self.runtime.periodic(period, fn, *args)

    # -- CPU model -----------------------------------------------------------
    def service_time_for(self, packet: Packet) -> float:
        """Per-message processing cost; override for message-dependent
        costs."""
        return self.msg_service_time

    def busy(self, duration: float) -> None:
        """Charge extra CPU time (e.g. transaction execution)."""
        if duration <= 0.0:
            return
        base = max(self._busy_until, self.runtime.now)
        self._busy_until = base + duration

    # -- delivery ------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        """Called by the transport on arrival; applies the CPU model.

        Arrivals enter a FIFO inbox drained one message at a time; each
        occupies the server for its service time plus whatever extra
        the handler charged via :meth:`busy`, so a long execution
        genuinely delays everything queued behind it.
        """
        if self.crashed:
            return
        self._inbox.append(packet)
        self._drain_inbox()

    def _drain_inbox(self) -> None:
        runtime = self.runtime
        while not self._drain_pending and self._inbox and not self.crashed:
            start = max(self._busy_until, runtime.now)
            finish = start + self.service_time_for(self._inbox[0])
            self._busy_until = finish
            if finish <= runtime.now:
                self._process(self._inbox.popleft())
                continue
            self._drain_pending = True
            runtime.call_at(finish, self._drain_one)

    def _drain_one(self) -> None:
        self._drain_pending = False
        if self._inbox and not self.crashed:
            self._process(self._inbox.popleft())
        self._drain_inbox()

    def _process(self, packet: Packet) -> None:
        if self.crashed:
            return
        self.messages_processed += 1
        self.handle(packet.src, packet.payload, packet)

    def handle(self, src: Address, message: Any, packet: Packet) -> None:
        """Dispatch to ``on_<ClassName>``; override for custom routing."""
        handler = getattr(self, "on_" + type(message).__name__, None)
        if handler is None:
            raise NetworkError(
                f"{type(self).__name__} {self.address!r} has no handler for "
                f"{type(message).__name__}"
            )
        handler(src, message, packet)

    # -- failure injection -----------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: drop all future deliveries and sends."""
        self.crashed = True
        if self.tracer is not None:
            self.tracer.record("crash", self.address)

    def recover_address(self) -> None:  # pragma: no cover - used by demos
        self.crashed = False
