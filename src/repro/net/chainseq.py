"""Chain-replicated multi-stamping sequencer (extension beyond §5.4).

The paper's sequencer keeps all counter state *soft*: losing the
sequencer loses the counters, and recovery is a stop-the-world epoch
change driven by the SDN controller (Figure 14 measures that outage).
NetChain and Harmonia show the alternative this module implements:
replicate the sequencer-adjacent state across a short in-network chain
so a single element failure is repaired by *splicing the chain* instead
of bumping the epoch.

Layout and protocol:

- The groupcast route points at the chain **head**. The head owns the
  per-destination-group counters: it assigns the
  :class:`~repro.net.message.MultiStamp` (same assignment logic as the
  single :class:`~repro.net.sequencer.MultiSequencer`) and forwards a
  :class:`ChainForward` write down the chain instead of fanning out.
- Every node absorbs the write into its own counters (element-wise
  max), so counter state is always ordered ``head >= mid >= tail``.
- The **tail** *serves* stamps: only when a write reaches the tail is
  the stamped packet **released** — reconstructed and fanned out to the
  destination groups. A stamp is therefore externally visible only
  once it is fully replicated, which is what makes splice repair safe.
- The SDN controller health-checks every chain member. When one fails
  it splices the chain: it re-reads the surviving tail's counter state,
  installs a new chain configuration (strictly higher **version**) into
  the survivors, fences the spliced-out member (a falsely-suspected
  node that receives the install retires), and re-points the route at
  the new head — all *without* touching the epoch. Writes carrying a
  stale version are rejected, so no stale-tail stamp can be released
  after a repair. Only when the *whole* chain is lost does the
  controller fall back to the paper's epoch-change path.

Failure anatomy: stamps assigned at the head but never released are
simply gaps to the receivers — exactly the packet-drop case Eris
already handles (drop notification -> peer recovery -> FC permanent
drop), so chain repair composes with the §6.3/§6.5 machinery instead
of needing new replica-side logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.message import Address, GroupcastHeader, GroupId, MultiStamp, \
    Packet
from repro.net.network import Network
from repro.net.sequencer import MultiSequencer, SequencerProfile


@dataclass(frozen=True)
class ChainForward:
    """One counter write propagating head -> tail. Carries everything
    the tail needs to release the original groupcast packet."""

    version: int
    epoch: int
    stamps: tuple[tuple[GroupId, int], ...]
    origin: Address
    payload: Any
    groups: tuple[GroupId, ...]
    trace_id: Optional[int] = None


@dataclass(frozen=True)
class ChainForwardBatch:
    """Several counter writes pipelined down the chain in one message
    (the NetChain-style per-hop batching queued as the PR 6 follow-up).
    Every write still carries its own version: a splice can land
    between buffering and flush, and each write is re-fenced
    individually wherever it arrives."""

    version: int
    writes: tuple[ChainForward, ...]


@dataclass(frozen=True)
class ChainStateRequest:
    """Controller -> surviving tail: read your counter state."""

    nonce: int


@dataclass(frozen=True)
class ChainState:
    """Tail -> controller: counter snapshot for splice repair."""

    nonce: int
    version: int
    epoch: int
    counters: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ChainInstall:
    """Controller -> every pre-repair member: the new chain
    configuration. A receiver absent from ``members`` retires (the
    fencing that keeps a falsely-suspected node from serving stale
    stamps); members adopt the config and ack."""

    version: int
    epoch: int
    members: tuple[Address, ...]
    counters: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ChainInstallAck:
    version: int
    sender: Address


class ChainSequencerNode(MultiSequencer):
    """One element of the replicated sequencer chain.

    Until a configuration is installed the node is ``retired`` and
    refuses to stamp, forward, or release. Role (head / middle / tail)
    is derived from the node's position in the installed member list,
    so a splice re-roles survivors without dedicated messages.
    """

    def __init__(self, address: str, network: Network,
                 profile: SequencerProfile | None = None, epoch: int = 1,
                 stamp_batch: int = 1, pipeline: int = 1,
                 read_fast_path: bool = False,
                 commutative_apply: bool = False):
        super().__init__(address, network, profile, epoch,
                         stamp_batch=stamp_batch,
                         read_fast_path=read_fast_path,
                         commutative_apply=commutative_apply)
        self.version = 0
        self.members: tuple[Address, ...] = ()
        self.retired = True
        # Forward pipelining: with pipeline > 1 the head buffers up to
        # that many ChainForward writes and sends them downstream as a
        # single ChainForwardBatch per hop (mid-nodes re-forward whole
        # batches). Default 1 keeps the one-message-per-write protocol.
        self.pipeline = pipeline
        self._forward_buffer: list[ChainForward] = []
        self._forward_flush_armed = False
        # Chain-specific counters for metrics and tests.
        self.forwards_propagated = 0
        self.batches_forwarded = 0
        self.releases = 0
        self.stale_rejected = 0

    # -- roles -------------------------------------------------------------
    @property
    def is_head(self) -> bool:
        return bool(self.members) and self.members[0] == self.address

    @property
    def is_tail(self) -> bool:
        return bool(self.members) and self.members[-1] == self.address

    @property
    def successor(self) -> Address:
        index = self.members.index(self.address)
        return self.members[index + 1]

    # -- configuration (installed by the SDN controller) -------------------
    def apply_install(self, install: ChainInstall) -> bool:
        """Adopt (or be fenced by) a chain configuration. Returns True
        when this node is a member of the new chain (ack-worthy);
        idempotent for re-delivered installs of the current version."""
        if install.version < self.version:
            return False  # stale retransmission of an old repair
        if self.address not in install.members:
            self.retired = True
            self.version = install.version
            self.members = tuple(install.members)
            if self.tracer is not None:
                self.tracer.record("chain_retired", self.address,
                                   version=install.version)
            return False
        self.version = install.version
        self.members = tuple(install.members)
        self.retired = False
        # Counters only ever move forward: merge the installed snapshot
        # (the surviving tail's state) element-wise with our own, which
        # is >= it for every group we have seen.
        counters = self.counters
        for gid, seq in install.counters.items():
            if counters.get(gid, 0) < seq:
                counters[gid] = seq
        if install.epoch > self.epoch:
            self.epoch = install.epoch
        if self.tracer is not None:
            self.tracer.record("chain_install", self.address,
                               version=install.version,
                               members=list(install.members))
        return True

    def on_ChainInstall(self, src: Address, msg: ChainInstall,
                        packet: Packet) -> None:
        if self.apply_install(msg):
            self.send(src, ChainInstallAck(version=msg.version,
                                           sender=self.address))

    def on_ChainStateRequest(self, src: Address, msg: ChainStateRequest,
                             packet: Packet) -> None:
        self.send(src, ChainState(nonce=msg.nonce, version=self.version,
                                  epoch=self.epoch,
                                  counters=dict(self.counters)))

    # -- data plane --------------------------------------------------------
    def _stamp_one(self, packet: Packet) -> None:
        # Only the installed head assigns stamps. A retired (fenced or
        # not-yet-installed) node, or a non-head that still receives
        # routed traffic mid-splice, must drop rather than stamp. The
        # check lives at stamp time (not delivery) so a splice landing
        # while groupcasts sit in the batching queue still fences them.
        if self.retired or not self.is_head:
            self.stale_rejected += 1
            self._ingress.pop(packet.packet_id, None)
            if self.tracer is not None:
                self.tracer.record(
                    "chain_stale", self.address,
                    cause=packet.trace_id if packet.trace_id is not None
                    else -1,
                    version=self.version, reason="not-head")
            return
        self._emit(self.stamp(packet))

    def crash(self) -> None:
        super().crash()
        self._forward_buffer.clear()

    def _emit(self, stamped: Packet) -> None:
        stamp = stamped.multistamp
        if self.is_tail:
            # Single-element chain (after splices): assign == release.
            self._release(stamp.epoch, stamp.stamps, stamped.src,
                          stamped.payload, stamped.groupcast.groups,
                          stamped.trace_id)
            return
        write = ChainForward(
            version=self.version, epoch=stamp.epoch, stamps=stamp.stamps,
            origin=stamped.src, payload=stamped.payload,
            groups=stamped.groupcast.groups, trace_id=stamped.trace_id)
        if self.pipeline <= 1:
            self.send(self.successor, write)
            self.forwards_propagated += 1
            return
        self._forward_buffer.append(write)
        if len(self._forward_buffer) >= self.pipeline:
            self._flush_forwards()
        elif not self._forward_flush_armed:
            self._forward_flush_armed = True
            self.call_later(0.0, self._flush_forwards)

    def _flush_forwards(self) -> None:
        """Send buffered writes downstream as one ChainForwardBatch.
        Writes buffered before a splice carry the old version; they are
        dropped here (the new chain has re-read the tail's counters, so
        releasing them could duplicate a reassigned sequence number)."""
        self._forward_flush_armed = False
        buffered, self._forward_buffer = self._forward_buffer, []
        if not buffered or self.crashed:
            return
        live = [w for w in buffered if w.version == self.version
                and not self.retired]
        self.stale_rejected += len(buffered) - len(live)
        if not live or self.is_tail:
            return
        self.send(self.successor, ChainForwardBatch(
            version=self.version, writes=tuple(live)))
        self.forwards_propagated += len(live)
        self.batches_forwarded += 1

    def _absorb(self, msg: ChainForward) -> bool:
        """Version-fence and absorb one propagated write into the local
        counters; returns False for writes from a previous chain
        incarnation (the splice already accounted or dropped them —
        accepting one could release a sequence number the repaired
        chain has reassigned, the stale-tail bug the fence prevents)."""
        if self.retired or msg.version != self.version:
            self.stale_rejected += 1
            if self.tracer is not None:
                self.tracer.record(
                    "chain_stale", self.address,
                    cause=msg.trace_id if msg.trace_id is not None else -1,
                    version=msg.version, current=self.version,
                    reason="version-mismatch")
            return False
        counters = self.counters
        for gid, seq in msg.stamps:
            if counters.get(gid, 0) < seq:
                counters[gid] = seq
        if self.read_fast_path or self.commutative_apply:
            self._absorb_fast_path_state(msg)
        return True

    def _may_serve_fast_reads(self) -> bool:
        # A fenced or mid/tail node's dirty view is not authoritative;
        # only the active head sees every stamp as it happens.
        return not self.retired and self.is_head

    def _absorb_fast_path_state(self, msg: ChainForward) -> None:
        """Replicate the head's dirty-set and barrier bookkeeping down
        the chain (DESIGN.md: chain interaction).

        Every released write passed through every survivor in chain
        order, so after a splice the new head's absorbed dirty entries
        are a superset of the in-flight writes that can still be
        released — it can keep serving the dirty-set check for its
        epoch without an epoch change. The head wraps COMMUTATIVE
        payloads before forwarding, so the payload class distinguishes
        the two bookkeeping rules here.
        """
        payload = msg.payload
        txn = getattr(payload, "txn", None)
        op_class = txn.op_class if txn is not None else "generic"
        if self.read_fast_path and op_class != "read_only":
            write_keys = txn.write_keys if txn is not None else None
            if write_keys:
                entry = (msg.epoch, tuple(msg.stamps))
                dirty = self._dirty
                for key in write_keys:
                    dirty[key] = entry
            else:
                blind = self._blind_high
                for group, seq in msg.stamps:
                    if blind.get(group, 0) < seq:
                        blind[group] = seq
        if self.commutative_apply and op_class != "commutative":
            barrier = self._barrier
            for group, seq in msg.stamps:
                if barrier.get(group, 0) < seq:
                    barrier[group] = seq

    def on_ChainForward(self, src: Address, msg: ChainForward,
                        packet: Packet) -> None:
        if not self._absorb(msg):
            return
        if self.is_tail:
            self._release(msg.epoch, msg.stamps, msg.origin, msg.payload,
                          msg.groups, msg.trace_id)
        else:
            self.send(self.successor, msg)
            self.forwards_propagated += 1

    def on_ChainForwardBatch(self, src: Address, msg: ChainForwardBatch,
                             packet: Packet) -> None:
        accepted = []
        for write in msg.writes:
            if not self._absorb(write):
                continue
            if self.is_tail:
                self._release(write.epoch, write.stamps, write.origin,
                              write.payload, write.groups, write.trace_id)
            else:
                accepted.append(write)
        if accepted:
            # Mid-node: re-forward the surviving writes as one batch,
            # preserving per-hop pipelining without re-buffering.
            self.send(self.successor, ChainForwardBatch(
                version=self.version, writes=tuple(accepted)))
            self.forwards_propagated += len(accepted)
            self.batches_forwarded += 1

    def _release(self, epoch: int, stamps: tuple[tuple[GroupId, int], ...],
                 origin: Address, payload: Any,
                 groups: tuple[GroupId, ...],
                 trace_id: Optional[int]) -> None:
        """Serve a fully replicated stamp: reconstruct the groupcast
        packet (same causal id, so span attribution still telescopes
        through the original message) and fan out to every member of
        every destination group."""
        released = Packet(src=origin, dst=None, payload=payload,
                          groupcast=GroupcastHeader(tuple(groups)),
                          multistamp=MultiStamp(epoch=epoch,
                                                stamps=tuple(stamps)),
                          sequenced=True)
        released.trace_id = trace_id
        self.releases += 1
        if self.tracer is not None:
            self.tracer.record(
                "chain_release", self.address,
                cause=trace_id if trace_id is not None else -1,
                epoch=epoch, version=self.version,
                stamps=[[gid, seq] for gid, seq in stamps])
        network = self.network
        fan_out = network.fan_out
        members = network.groups.members
        for group in groups:
            fan_out(released, members(group))

    # -- observability -----------------------------------------------------
    def instrument(self, registry) -> None:
        super().instrument(registry)
        registry.gauge(self.address, "chain_version", fn=lambda: self.version)
        registry.gauge(self.address, "chain_releases",
                       fn=lambda: self.releases)
        registry.gauge(self.address, "chain_forwards",
                       fn=lambda: self.forwards_propagated)
        registry.gauge(self.address, "chain_stale_rejected",
                       fn=lambda: self.stale_rejected)
        registry.gauge(self.address, "chain_batches",
                       fn=lambda: self.batches_forwarded)
