"""Simulated datacenter network with in-network concurrency control.

This package provides the paper's Section 5 network substrate:

- :mod:`repro.net.message` — packets, the groupcast header, multi-stamps.
- :mod:`repro.net.network` — the fabric: latency/drop models, delivery.
- :mod:`repro.net.endpoint` — the ``Node`` base class with a CPU model.
- :mod:`repro.net.groupcast` — group membership (§5.2).
- :mod:`repro.net.sequencer` — the multi-stamping sequencer (§5.3/5.4).
- :mod:`repro.net.oum` — single-counter global sequencer (§5.1 strawman).
- :mod:`repro.net.chainseq` — chain-replicated sequencer with splice
  repair (extension; NetChain/Harmonia-style).
- :mod:`repro.net.controller` — SDN controller and sequencer failover.
- :mod:`repro.net.libsequencer` — end-host sequence tracking that turns
  raw packets into DELIVER / DROP-NOTIFICATION / NEW-EPOCH upcalls.
"""

from repro.net.endpoint import Node
from repro.net.groupcast import GroupMembership
from repro.net.message import GroupcastHeader, MultiStamp, Packet
from repro.net.network import NetConfig, Network
from repro.net.sequencer import MultiSequencer, SequencerProfile
from repro.net.oum import OUMSequencer
from repro.net.chainseq import ChainForward, ChainInstall, ChainInstallAck, \
    ChainSequencerNode, ChainState, ChainStateRequest
from repro.net.controller import SDNController
from repro.net.libsequencer import MultiSequencedChannel, Upcall, UpcallKind
from repro.net.switch_resources import SwitchModel, validate_deployment

__all__ = [
    "Node",
    "GroupMembership",
    "GroupcastHeader",
    "MultiStamp",
    "Packet",
    "NetConfig",
    "Network",
    "MultiSequencer",
    "SequencerProfile",
    "OUMSequencer",
    "ChainSequencerNode",
    "ChainForward",
    "ChainStateRequest",
    "ChainState",
    "ChainInstall",
    "ChainInstallAck",
    "SDNController",
    "MultiSequencedChannel",
    "Upcall",
    "UpcallKind",
    "SwitchModel",
    "validate_deployment",
]
