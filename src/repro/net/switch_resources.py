"""In-switch feasibility analysis for multi-sequencing (§5.4).

The paper argues multi-sequenced groupcast can run at line rate in a
programmable switch (Reconfigurable Match Tables and similar
architectures) and derives two resource bounds on how many destination
shards one packet can carry:

1. **Stateful ALUs** — each destination group needs one per-shard
   counter incremented per packet. RMT provides 32 stages with 4–6
   register-attached ALUs each: 128–192 destinations per packet.
2. **Packet header vector** — the fields available to match/action
   logic are capped at 512 bytes; after IP/UDP and groupcast framing,
   32-bit per-destination stamp slots allow 116 simultaneous
   destinations.

The effective limit is the minimum of the two; systems whose
transactions span more shards need the paper's suggested special-case
handling for global (all-shard) messages. This module makes that
arithmetic executable so deployments can be validated against a switch
model (see ``validate_deployment``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SwitchModel:
    """Resource envelope of a programmable switch pipeline."""

    name: str
    stages: int
    register_alus_per_stage: int
    header_vector_bytes: int
    #: IP (20) + UDP (8) + epoch number + groupcast framing.
    header_overhead_bytes: int = 48
    #: One 32-bit sequence-number slot per destination group.
    bytes_per_destination: int = 4

    def __post_init__(self) -> None:
        if min(self.stages, self.register_alus_per_stage,
               self.header_vector_bytes) <= 0:
            raise ConfigurationError("switch resources must be positive")

    # -- the two §5.4 bounds ------------------------------------------------
    def alu_bound(self) -> int:
        """Destinations limited by stateful counter increments."""
        return self.stages * self.register_alus_per_stage

    def header_vector_bound(self) -> int:
        """Destinations limited by the packet header vector budget."""
        usable = self.header_vector_bytes - self.header_overhead_bytes
        if usable <= 0:
            return 0
        return usable // self.bytes_per_destination

    def max_destinations(self) -> int:
        """Shards one multi-sequenced groupcast packet can address."""
        return min(self.alu_bound(), self.header_vector_bound())

    def supports(self, n_shards: int) -> bool:
        return n_shards <= self.max_destinations()


def rmt_low() -> SwitchModel:
    """RMT with 4 register ALUs per stage (paper's low estimate)."""
    return SwitchModel(name="rmt-4alu", stages=32,
                       register_alus_per_stage=4,
                       header_vector_bytes=512)


def rmt_high() -> SwitchModel:
    """RMT with 6 register ALUs per stage (paper's high estimate)."""
    return SwitchModel(name="rmt-6alu", stages=32,
                       register_alus_per_stage=6,
                       header_vector_bytes=512)


def validate_deployment(n_shards: int,
                        model: SwitchModel | None = None,
                        max_participants: int | None = None) -> dict:
    """Check a deployment against a switch model.

    ``max_participants`` bounds the widest transaction the workload
    produces (defaults to all shards, the conservative case). Returns a
    report dict; raises ConfigurationError when the deployment cannot
    be sequenced in-switch even with all-shard special-casing, i.e.
    when even single transactions exceed every bound.
    """
    model = model or rmt_low()
    widest = n_shards if max_participants is None else max_participants
    limit = model.max_destinations()
    report = {
        "model": model.name,
        "alu_bound": model.alu_bound(),
        "header_vector_bound": model.header_vector_bound(),
        "max_destinations": limit,
        "n_shards": n_shards,
        "widest_transaction": widest,
        "fits": widest <= limit,
        "needs_global_special_case": widest > limit,
    }
    if limit < 1:
        raise ConfigurationError(
            f"switch model {model.name} cannot carry any multi-stamp")
    return report
