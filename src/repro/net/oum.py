"""Total global sequencing — the §5.1 strawman, used by Eris-OUM.

A single counter stamps *every* packet, and every packet is delivered
to every replica of every shard in the system (otherwise receivers
could not tell a drop from a message meant for another shard). The
Figure 11 experiment shows why this fails to scale: each server burns
CPU receiving and discarding messages for transactions it does not
participate in.
"""

from __future__ import annotations

from repro.net.message import MultiStamp, Packet
from repro.net.network import Network
from repro.net.sequencer import MultiSequencer, SequencerProfile


class OUMSequencer(MultiSequencer):
    """Single-counter sequencer that floods all groups' members."""

    #: Group id used for the single global sequence.
    GLOBAL_GROUP = -1

    def __init__(self, address: str, network: Network,
                 profile: SequencerProfile | None = None, epoch: int = 1,
                 stamp_batch: int = 1):
        # Stamp batching (stamp_batch > 1) is inherited unchanged: the
        # queue/wakeup live in _process_groupcast, and this class only
        # overrides what "stamp" and "emit" mean.
        super().__init__(address, network, profile, epoch,
                         stamp_batch=stamp_batch)
        self.global_counter = 0

    def stamp(self, packet: Packet) -> Packet:
        self.global_counter += 1
        # The destination groups are preserved in the groupcast header
        # (receivers use them to decide participation), but ordering is
        # by the single global counter.
        packet.multistamp = MultiStamp(
            epoch=self.epoch,
            stamps=((self.GLOBAL_GROUP, self.global_counter),),
        )
        self.packets_stamped += 1
        if self.tracer is not None:
            self.tracer.sequencer_stamp(
                self.address, packet,
                queue_delay=self._queue_delay(packet))
        return packet

    def _emit(self, stamped: Packet) -> None:
        # Total global sequencing: every server receives every message.
        self.network.fan_out(stamped, self.network.groups.all_members())
