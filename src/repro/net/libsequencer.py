"""End-host multi-sequencing library (§5.4).

A :class:`MultiSequencedChannel` is the per-receiver view of one
group's sequence space. It turns raw multi-stamped packets into a
stream of ordered upcalls:

- ``DELIVER(seq, packet)`` — the next in-sequence message (emitted
  exactly once per sequence number, strictly in order). ``packet`` is
  ``None`` when the application resolved the slot as permanently
  dropped (the receiver should log a NO-OP).
- ``DROP_NOTIFICATION(seq)`` — sequence number ``seq`` is missing
  (emitted at most once per gap); the application must recover the
  message or get it permanently dropped, then call :meth:`resolve`.
- ``NEW_EPOCH(epoch)`` — a packet from a later sequencer epoch arrived;
  the application must run its epoch-change protocol, then call
  :meth:`begin_epoch`.

The channel never delivers out of order, never delivers duplicates, and
buffers future packets until their gap closes — the exact contract of
§5.2's multi-sequenced groupcast receiver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError
from repro.net.message import GroupId, Packet


class UpcallKind(enum.Enum):
    DELIVER = "deliver"
    DROP_NOTIFICATION = "drop-notification"
    NEW_EPOCH = "new-epoch"


@dataclass(frozen=True)
class Upcall:
    kind: UpcallKind
    epoch: int
    seq: int = 0
    packet: Optional[Packet] = None


class MultiSequencedChannel:
    """Sequence tracking for one receiver group."""

    def __init__(self, group: GroupId, epoch: int = 1):
        self.group = group
        self.epoch = epoch
        self.next_seq = 1
        self._buffer: dict[int, Optional[Packet]] = {}
        self._notified: set[int] = set()
        self._future_epochs: dict[int, list[Packet]] = {}

    # -- incoming packets ----------------------------------------------------
    def on_packet(self, packet: Packet) -> list[Upcall]:
        stamp = packet.multistamp
        if stamp is None:
            raise NetworkError("packet without multi-stamp on sequenced channel")
        if not stamp.has_group(self.group):
            return []  # mis-delivered; not addressed to this group
        if stamp.epoch < self.epoch:
            return []  # stale epoch: ignore
        if stamp.epoch > self.epoch:
            pending = self._future_epochs.setdefault(stamp.epoch, [])
            pending.append(packet)
            if len(pending) == 1 and stamp.epoch == min(self._future_epochs):
                return [Upcall(UpcallKind.NEW_EPOCH, epoch=stamp.epoch)]
            return []
        seq = stamp.seq_for(self.group)
        if seq < self.next_seq or seq in self._buffer:
            return []  # duplicate or already buffered
        self._buffer[seq] = packet
        upcalls = [
            Upcall(UpcallKind.DROP_NOTIFICATION, epoch=self.epoch, seq=missing)
            for missing in range(self.next_seq, seq)
            if missing not in self._buffer and missing not in self._notified
        ]
        self._notified.update(u.seq for u in upcalls)
        upcalls.extend(self._advance())
        return upcalls

    # -- application-driven gap resolution --------------------------------------
    def resolve(self, seq: int, packet: Optional[Packet] = None) -> list[Upcall]:
        """Close the gap at ``seq`` with a recovered packet, or with
        ``None`` if the slot was permanently dropped."""
        if seq < self.next_seq:
            return []
        if seq not in self._buffer:
            self._buffer[seq] = packet
        return self._advance()

    def get_buffered(self, seq: int) -> Optional[Packet]:
        """A future packet held for an unfilled gap, if any."""
        return self._buffer.get(seq)

    def buffered_packets(self) -> list[tuple[int, Packet]]:
        """All future packets parked behind ordering gaps, in sequence
        order (the commutative early-apply path scans these)."""
        return sorted((seq, packet) for seq, packet in self._buffer.items()
                      if packet is not None)

    def fast_forward(self, next_seq: int) -> list[Upcall]:
        """Jump the expected sequence number forward (the caller
        learned the intervening slots out of band, e.g. from a DL sync
        or an FC-installed log). Buffered packets at or beyond the new
        point flush as DELIVER upcalls if contiguous."""
        if next_seq <= self.next_seq:
            return []
        for seq in list(self._buffer):
            if seq < next_seq:
                del self._buffer[seq]
        self._notified = {s for s in self._notified if s >= next_seq}
        self.next_seq = next_seq
        return self._advance()

    def missing(self, upto: Optional[int] = None) -> list[int]:
        """Sequence numbers currently known missing (notified gaps)."""
        horizon = upto if upto is not None else (
            max(self._buffer) if self._buffer else self.next_seq - 1
        )
        return [s for s in range(self.next_seq, horizon + 1)
                if s not in self._buffer]

    # -- epoch transitions ----------------------------------------------------
    def begin_epoch(self, epoch: int, next_seq: int = 1) -> list[Packet]:
        """Enter a new epoch; returns that epoch's buffered packets so
        the caller can re-inject them through :meth:`on_packet`."""
        if epoch <= self.epoch:
            raise NetworkError(f"epoch must increase: {epoch} <= {self.epoch}")
        replay = self._future_epochs.pop(epoch, [])
        # Packets for epochs beyond the one we enter stay buffered.
        self._future_epochs = {
            e: pkts for e, pkts in self._future_epochs.items() if e > epoch
        }
        self.epoch = epoch
        self.next_seq = next_seq
        self._buffer.clear()
        self._notified.clear()
        return replay

    def pending_epochs(self) -> list[int]:
        return sorted(self._future_epochs)

    # -- internals ----------------------------------------------------------
    def _advance(self) -> list[Upcall]:
        out = []
        while self.next_seq in self._buffer:
            packet = self._buffer.pop(self.next_seq)
            self._notified.discard(self.next_seq)
            out.append(Upcall(UpcallKind.DELIVER, epoch=self.epoch,
                              seq=self.next_seq, packet=packet))
            self.next_seq += 1
        return out
