"""The Eris replica: all five sub-protocols of Section 6.

1. **Normal case (§6.2)** — multi-sequenced transactions arrive in
   order; every replica logs and replies; only the Designated Learner
   executes and includes the result.
2. **Dropped messages (§6.3)** — on a DROP-NOTIFICATION, first try
   same-shard peers (the paper's optimization), then escalate to the
   Failure Coordinator's FIND-TXN protocol.
3. **DL view change (§6.4)** — VR-style: merged logs, merged drop sets,
   waiting out undecided temp-drops with the FC.
4. **Epoch change (§6.5)** — on a NEW-EPOCH notification, stop
   processing, hand state to the FC, adopt the consistent state it
   rebuilds.
5. **Synchronization (§6.6)** — the DL periodically ships its log and a
   safe-to-execute point to the other replicas (this doubles as the DL
   liveness heartbeat that arms view changes).

Replica state mirrors Figure 4: status, view-num, epoch-num, log,
temp-drops, perm-drops, un-drops.

Later PRs layered three default-off extensions over the Figure 4 core
(the determinism digests pin the original behavior when they are off):

- **Reply coalescing** (``reply_coalesce`` > 1): several TxnReplys to
  one client merge into a TxnReplyBatch on a zero-delay wakeup.
- **Fast reads** (``read_fast_path``): every replica periodically
  reports its execution watermark to the sequencing element
  (AppliedUpto), and serves clean READ_ONLY transactions the element
  forwards without a stamp — single-replica service instead of the
  §5.1 quorum, safe because the dirty-set check proved every committed
  conflicting write is already executed at *every* replica.
- **Commutative early-apply** (``commutative_apply``): while stalled
  on an ordering gap, buffered COMMUTATIVE transactions whose reorder
  barrier has passed execute ahead of log order — the one place this
  replica deliberately relaxes the §3.2 in-order execution rule. The
  at-most-once table (§6.1) makes the later in-order feed a no-op, and
  log append plus client replies stay strictly in slot order, so
  durability and the commit protocol are unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from repro.core.engine import ExecutionEngine
from repro.core.log import ErisLog, LogEntry, merge_logs, _stamp_hits
from repro.core.messages import (
    AppliedUpto,
    CommutativeTxnRequest,
    EpochChangeReq,
    EpochState,
    EpochStateRequest,
    FastReadReply,
    FastReadRequest,
    FindTxn,
    HasTxn,
    IndependentTxnRequest,
    PeerTxnRequest,
    PeerTxnResponse,
    ReconRead,
    ReconReply,
    StartEpoch,
    StartEpochAck,
    StartView,
    SyncAck,
    SyncLog,
    TempDroppedTxn,
    TxnDropped,
    TxnFound,
    TxnRecord,
    TxnReply,
    TxnReplyBatch,
    TxnRequestMsg,
    ViewChange,
)
from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.net.endpoint import Node
from repro.net.libsequencer import MultiSequencedChannel, Upcall, UpcallKind
from repro.net.message import Address, GroupId, MultiStamp, Packet
from repro.net.network import Network
from repro.net.oum import OUMSequencer
from repro.errors import TransactionAborted
from repro.store.kv import KVStore
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.store.undo import UndoLog


@dataclass
class ErisConfig:
    """Protocol timers and execution-cost model for one deployment."""

    sync_interval: float = 2e-3
    view_change_timeout: float = 30e-3
    #: Grace period between noticing a sequence gap and starting peer
    #: recovery — absorbs transient reordering so only real drops pay
    #: the recovery cost.
    drop_detection_delay: float = 100e-6
    peer_recovery_timeout: float = 1e-3
    fc_retry_timeout: float = 10e-3
    general_abort_timeout: float = 100e-3
    execution_cost: float = 0.5e-6   # CPU charged per executed transaction
    oum_mode: bool = False           # Eris-OUM strawman (Fig 11)
    #: Coalesce up to this many TxnReply messages per client into one
    #: TxnReplyBatch, flushed on a zero-delay wakeup. 1 (the default)
    #: sends each reply immediately — the paper's per-txn reply path,
    #: pinned by the determinism digests.
    reply_coalesce: int = 1
    #: Harmonia-style read fast path: periodically report the execution
    #: watermark to the sequencing element and serve clean READ_ONLY
    #: transactions from this single replica. Default-off (digest-
    #: pinned); incompatible with oum_mode.
    read_fast_path: bool = False
    #: Execute buffered COMMUTATIVE transactions ahead of log order
    #: once their reorder barrier has passed (§3.2 relaxation).
    commutative_apply: bool = False
    #: AppliedUpto reporting period; 0 means "use sync_interval".
    watermark_interval: float = 0.0


def _slot_fields(slot: SlotId) -> list:
    """Flat JSON-friendly slot triple for trace events."""
    return [slot.shard, slot.epoch, slot.seq]


def _entry_txn(entry: LogEntry) -> Optional[str]:
    """Stable transaction label for trace events ("client:seq")."""
    if entry.kind != "txn":
        return None
    return entry.record.txn.txn_id.label()


@dataclass
class _Recovery:
    slot: SlotId
    phase: str                 # "peer" | "fc"
    timer: Any = None
    peers_answered: int = 0


class ErisReplica(Node):
    """One member of one shard's replica group."""

    def __init__(
        self,
        address: Address,
        network: Network,
        shard: GroupId,
        replica_index: int,
        shard_addrs: list[Address],
        fc_address: Address,
        store: KVStore,
        registry: ProcedureRegistry,
        owns: Optional[Callable[[Hashable], bool]] = None,
        config: Optional[ErisConfig] = None,
    ):
        super().__init__(address, network)
        self.shard = shard
        self.replica_index = replica_index
        self.shard_addrs = list(shard_addrs)
        self.fc_address = fc_address
        self.config = config or ErisConfig()

        # Figure 4 state.
        self.status = "normal"    # normal | view-change | epoch-change
        self.view_num = 0
        self.epoch_num = 1
        self.log = ErisLog(shard)
        self.temp_drops: set[SlotId] = set()
        self.perm_drops: set[SlotId] = set()
        self.un_drops: set[SlotId] = set()

        # Sequencing and execution machinery.
        channel_group = OUMSequencer.GLOBAL_GROUP if self.config.oum_mode \
            else shard
        self.channel = MultiSequencedChannel(channel_group, epoch=1)
        self.store = store
        self.initial_snapshot = store.snapshot()
        self.engine = ExecutionEngine(store, registry, shard, owns,
                                      clock=lambda: self.now)
        self._fed: list[tuple[SlotId, str]] = []   # (slot, kind) fed so far
        self._delivery_queue: deque[tuple[SlotId, Optional[TxnRecord]]] = deque()
        self._recovering: dict[SlotId, _Recovery] = {}
        self._promised_epoch = 1

        # View change state.
        self._view_changes: dict[int, dict[Address, ViewChange]] = {}
        self._vc_waiting: set[SlotId] = set()
        self._vc_pending_view: Optional[int] = None

        # Synchronization state (DL side).
        self._peer_synced: dict[Address, int] = {a: 0 for a in shard_addrs
                                                 if a != address}
        self._sync_timer = self.periodic(self.config.sync_interval,
                                         self._sync_tick)
        self._vc_timer = self.timer(self.config.view_change_timeout,
                                    self._on_dl_timeout)
        self._abort_seq = 0
        if self.is_dl:
            self._sync_timer.start()
        else:
            self._vc_timer.start()

        self.txns_processed = 0
        self.drops_recovered_from_peer = 0
        self.drops_escalated_to_fc = 0

        # Reply coalescing (reply_coalesce > 1): per-client buffers of
        # (TxnReply, committed) drained by one zero-delay wakeup.
        self._reply_buffer: dict[Address, list[TxnReply]] = {}
        self._reply_flush_armed = False
        self.reply_batches_sent = 0

        # Coordination-free fast paths (default-off; no timers or
        # events are created unless the knobs are on, keeping the
        # knob-off event schedule — and the determinism digests — byte
        # identical).
        self.fast_reads_served = 0
        self.early_applies = 0
        #: Commutative transactions applied ahead of log order whose
        #: slot has not yet been fed in order. If an adopted log omits
        #: one, the store silently contains an effect the log cannot
        #: explain — _adopt_log forces a rebuild in that case.
        self._early_unconfirmed: set[TxnId] = set()
        self._watermark_timer = None
        if self.config.read_fast_path and not self.config.oum_mode:
            interval = self.config.watermark_interval \
                or self.config.sync_interval
            self._watermark_timer = self.periodic(interval,
                                                  self._watermark_tick)
            self._watermark_timer.start()

    # -- observability ----------------------------------------------------
    def _trace_append(self, entry: LogEntry) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        data = {"shard": self.shard, "index": entry.index,
                "entry_kind": entry.kind, "slot": _slot_fields(entry.slot),
                "txn": _entry_txn(entry)}
        if entry.kind == "txn":
            data["participants"] = list(entry.record.txn.participants)
        tracer.record("log_append", self.address, **data)

    def _trace_apply(self, entry: LogEntry) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        tracer.record("apply", self.address, shard=self.shard,
                      index=entry.index, entry_kind=entry.kind,
                      slot=_slot_fields(entry.slot),
                      txn=_entry_txn(entry))

    def instrument(self, registry) -> None:
        """Register this replica's live counters as pull-gauges."""
        component = f"replica/{self.address}"
        registry.gauge(component, "txns_processed",
                       fn=lambda: self.txns_processed, monotone=True)
        registry.gauge(component, "log_len", fn=lambda: self.log.last_index)
        registry.gauge(component, "view_num", fn=lambda: self.view_num)
        registry.gauge(component, "epoch_num", fn=lambda: self.epoch_num)
        registry.gauge(component, "peer_recoveries",
                       fn=lambda: self.drops_recovered_from_peer,
                       monotone=True)
        registry.gauge(component, "fc_escalations",
                       fn=lambda: self.drops_escalated_to_fc,
                       monotone=True)
        registry.gauge(component, "messages_processed",
                       fn=lambda: self.messages_processed, monotone=True)
        registry.gauge(component, "fast_reads_served",
                       fn=lambda: self.fast_reads_served, monotone=True)
        registry.gauge(component, "early_applies",
                       fn=lambda: self.early_applies, monotone=True)

    # -- roles ----------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.shard_addrs)

    @property
    def is_dl(self) -> bool:
        return self.shard_addrs[self.view_num % self.n_replicas] == self.address

    def dl_address(self, view: Optional[int] = None) -> Address:
        view = self.view_num if view is None else view
        return self.shard_addrs[view % self.n_replicas]

    def _peers(self) -> list[Address]:
        return [a for a in self.shard_addrs if a != self.address]

    # -- dispatch: sequenced packets go to the channel ----------------------
    def handle(self, src: Address, message: Any, packet: Packet) -> None:
        if packet.multistamp is not None:
            self._on_sequenced(packet)
        else:
            super().handle(src, message, packet)

    def _on_sequenced(self, packet: Packet) -> None:
        for upcall in self.channel.on_packet(packet):
            self._apply_upcall(upcall)
        self._drain()
        if self.config.commutative_apply:
            self._try_early_apply()

    def _apply_upcall(self, upcall: Upcall) -> None:
        if upcall.kind is UpcallKind.DELIVER:
            slot = SlotId(self.channel.group, upcall.epoch, upcall.seq)
            record = self._record_from_packet(upcall.packet)
            self._delivery_queue.append((slot, record))
        elif upcall.kind is UpcallKind.DROP_NOTIFICATION:
            slot = SlotId(self.channel.group, upcall.epoch, upcall.seq)
            self._start_recovery(slot)
        elif upcall.kind is UpcallKind.NEW_EPOCH:
            self._notice_new_epoch(upcall.epoch)

    @staticmethod
    def _record_from_packet(packet: Optional[Packet]) -> Optional[TxnRecord]:
        if packet is None:
            return None
        return TxnRecord(txn=packet.payload.txn, multistamp=packet.multistamp)

    # -- normal case (§6.2) -------------------------------------------------
    def _drain(self) -> None:
        """Process in-order deliveries until empty or blocked by an
        undecided temp-drop (§6.3 step 3)."""
        if self.status != "normal":
            return
        while self._delivery_queue:
            slot, record = self._delivery_queue[0]
            if record is None:
                self._delivery_queue.popleft()
                self._append_noop(slot)
                continue
            stamp = record.multistamp
            if self._hits(stamp, self.perm_drops):
                self._delivery_queue.popleft()
                self._append_noop(slot)
                continue
            if self._blocked_by_temp_drop(stamp):
                break
            self._delivery_queue.popleft()
            self._append_txn(slot, record)

    def _hits(self, stamp: MultiStamp, slots: set[SlotId]) -> bool:
        if not slots:
            return False
        return any(SlotId(gid, stamp.epoch, seq) in slots
                   for gid, seq in stamp.stamps)

    def _blocked_by_temp_drop(self, stamp: MultiStamp) -> bool:
        """A replica that promised a temp-drop cedes the transaction's
        fate to the FC and may not process it until the FC decides."""
        if not self.temp_drops:
            return False
        for gid, seq in stamp.stamps:
            slot = SlotId(gid, stamp.epoch, seq)
            if slot in self.temp_drops and slot not in self.un_drops \
                    and slot not in self.perm_drops:
                return True
        return False

    def _append_noop(self, slot: SlotId) -> None:
        entry = self.log.append_noop(slot)
        if self.tracer is not None:
            self._trace_append(entry)
        if self.is_dl:
            self._feed_entry(entry)

    def _append_txn(self, slot: SlotId, record: TxnRecord) -> None:
        txn = record.txn
        if self.config.oum_mode and self.shard not in txn.participants:
            # Eris-OUM: this server received a message for a transaction
            # it does not participate in — CPU was burned, slot consumed,
            # nothing to do (the cost Figure 11 measures).
            self.log.append_noop(slot)
            if self.tracer is not None:
                self._trace_append(self.log.get(self.log.last_index))
            if self.is_dl:
                self._feed_entry(self.log.get(self.log.last_index))
            return
        entry = self.log.append_txn(slot, record)
        self.txns_processed += 1
        if self.tracer is not None:
            self._trace_append(entry)
        self._cancel_recovery(slot)
        if self.is_dl:
            self._feed_entry(entry, reply_to=txn.txn_id.client)
        else:
            self._reply(txn, entry.index, committed=True, result=None)

    def _feed_entry(self, entry: LogEntry,
                    reply_to: Optional[Address] = None) -> None:
        """Feed the engine in log order (DL live path / catch-up)."""
        self._fed.append((entry.slot, entry.kind))
        if self.tracer is not None:
            self._trace_apply(entry)
        if entry.kind == "txn":
            self.busy(self.config.execution_cost)
            txn = entry.record.txn
            self._early_unconfirmed.discard(txn.txn_id)
            index = entry.index
            if reply_to is not None:
                self.engine.feed(
                    entry,
                    on_done=lambda committed, result, txn=txn, index=index:
                        self._reply(txn, index, committed, result),
                )
            else:
                self.engine.feed(entry)
        # NO-OPs carry nothing to execute but stay in the fed record so
        # prefix-consistency checks see them.

    def _reply(self, txn: IndependentTransaction, index: int,
               committed: bool, result: Any) -> None:
        reply = TxnReply(
            txn_id=txn.txn_id,
            txn_index=index,
            view_num=self.view_num,
            epoch_num=self.epoch_num,
            shard=self.shard,
            replica_index=self.replica_index,
            is_dl=self.is_dl,
            committed=committed,
            result=result,
        )
        client = txn.txn_id.client
        if self.config.reply_coalesce > 1:
            self._reply_buffer.setdefault(client, []).append(reply)
            if not self._reply_flush_armed:
                self._reply_flush_armed = True
                self.call_later(0.0, self._flush_replies)
            return
        self._send_replies(client, [reply])

    def _flush_replies(self) -> None:
        """Drain the per-client reply buffers: one TxnReplyBatch per
        client per wakeup (capped at reply_coalesce replies each)."""
        self._reply_flush_armed = False
        buffered, self._reply_buffer = self._reply_buffer, {}
        if self.crashed:
            return
        cap = self.config.reply_coalesce
        for client, replies in buffered.items():
            for start in range(0, len(replies), cap):
                self._send_replies(client, replies[start:start + cap])

    def _send_replies(self, client: Address,
                      replies: list[TxnReply]) -> None:
        if len(replies) == 1:
            packet = self.send(client, replies[0])
        else:
            packet = self.send(client, TxnReplyBatch(tuple(replies)))
            self.reply_batches_sent += 1
        tracer = self.tracer
        if tracer is not None and packet is not None:
            for reply in replies:
                # The reply's causal id lets the span builder pair each
                # per-replica reply with its delivery at the client.
                tracer.record("reply", self.address, cause=packet.trace_id,
                              txn=reply.txn_id.label(), shard=self.shard,
                              replica=self.replica_index, is_dl=self.is_dl,
                              committed=reply.committed)

    # -- reconnaissance queries (§7.1) ----------------------------------------
    def on_ReconRead(self, src: Address, msg: ReconRead,
                     packet: Packet) -> None:
        self.send(src, ReconReply(key=msg.key, value=self.store.get(msg.key)))

    # -- coordination-free fast paths -----------------------------------------
    def _applied_watermark(self) -> tuple[int, int]:
        """(epoch, seq) through which this replica has *executed*.

        Valid as a prefix summary because the log is epoch-monotone and
        in-epoch sequence numbers are contiguous (perm-drops occupy
        their slot as no-ops). When nothing of the channel's current
        epoch has been fed yet, (current_epoch, 0) is only reported if
        the replica is demonstrably caught up — otherwise the stale
        last-fed position is reported and the sequencer's coverage
        check simply fails, which is the safe direction.
        """
        if self._fed:
            slot, _ = self._fed[-1]
            if slot.epoch == self.channel.epoch:
                return (slot.epoch, slot.seq)
            if len(self._fed) == self.log.last_index \
                    and not self._delivery_queue:
                return (self.channel.epoch, 0)
            return (slot.epoch, slot.seq)
        if self.log.last_index == 0 and not self._delivery_queue:
            return (self.channel.epoch, 0)
        return (0, 0)

    def _watermark_tick(self) -> None:
        """Report the execution watermark to whatever element currently
        stamps for this shard (dirty-set clear rule). Sent as an
        unstamped sequenced groupcast so routing follows sequencer
        failover; the element absorbs it without consuming a sequence
        number."""
        if self.crashed or self.status != "normal":
            return
        epoch, upto = self._applied_watermark()
        self.send_groupcast((self.shard,), AppliedUpto(
            shard=self.shard, epoch=epoch, upto=upto, sender=self.address))

    def on_FastReadRequest(self, src: Address, msg: FastReadRequest,
                           packet: Packet) -> None:
        """Serve a clean READ_ONLY transaction from this replica alone.

        The sequencing element only forwards a fast read after the
        dirty-set check proved every committed write conflicting with
        it is executed at *every* replica — in particular here — so the
        local store already reflects them and a single reply is
        authoritative (the read serializes at this replica's applied
        prefix). A replica that lags the check's epoch, or is mid view
        or epoch change, stays silent: the client's retry re-runs the
        dirty-set check.
        """
        if self.crashed or self.status != "normal" \
                or self.epoch_num < msg.min_epoch:
            return
        txn = msg.txn
        undo = UndoLog()
        ctx = TxnContext(self.store, shard=self.shard,
                         owns=self.engine._owns, undo=undo)
        try:
            result = self.engine.registry.execute(txn.proc, ctx, txn.args)
            committed = True
        except TransactionAborted as abort:
            undo.rollback(self.store)
            result = abort.reason
            committed = False
        if ctx.write_set:
            # The procedure wrote despite its READ_ONLY declaration —
            # a workload bug. Roll back and refuse to answer; the
            # client's retry takes the slow path once the write dirties
            # its own keys.
            undo.rollback(self.store)
            if self.tracer is not None:
                self.tracer.record("fast_read_refused", self.address,
                                   shard=self.shard,
                                   txn=txn.txn_id.label(),
                                   reason="wrote-under-read-only")
            return
        self.busy(self.config.execution_cost)
        self.fast_reads_served += 1
        epoch, upto = self._applied_watermark()
        if self.tracer is not None:
            self.tracer.record("fast_read_serve", self.address,
                               cause=packet.trace_id,
                               shard=self.shard, txn=txn.txn_id.label(),
                               committed=committed,
                               asof=[epoch, upto])
        self.send(txn.txn_id.client, FastReadReply(
            txn_id=txn.txn_id, shard=self.shard, committed=committed,
            result=result, epoch_num=epoch, applied_seq=upto))

    def _try_early_apply(self) -> None:
        """Apply buffered COMMUTATIVE transactions ahead of log order
        (§3.2 relaxation; see DESIGN.md).

        Eligible: a packet parked in the channel's reorder buffer —
        i.e. behind an ordering gap — whose per-group barrier is below
        the channel's in-order point, so every slot between them is
        known commutative. Execution effects land now; the log append,
        the client reply, and the fed record still happen in slot order
        when the gap resolves, via the at-most-once table (§6.1).
        """
        if self.crashed or self.status != "normal":
            return
        engine = self.engine
        channel = self.channel
        group = channel.group
        next_seq = channel.next_seq
        for seq, packet in channel.buffered_packets():
            payload = packet.payload
            if not isinstance(payload, CommutativeTxnRequest):
                continue
            barrier = 0
            for barrier_group, barrier_seq in payload.barriers:
                if barrier_group == group:
                    barrier = barrier_seq
                    break
            if barrier >= next_seq:
                continue
            txn = payload.txn
            if self.config.oum_mode and self.shard not in txn.participants:
                continue
            if self._hits(packet.multistamp, self.perm_drops) \
                    or self._blocked_by_temp_drop(packet.multistamp):
                continue
            if not engine.execute_early(txn):
                continue
            self.busy(self.config.execution_cost)
            self.early_applies += 1
            self._early_unconfirmed.add(txn.txn_id)
            if self.tracer is not None:
                self.tracer.record(
                    "early_apply", self.address, shard=self.shard,
                    txn=txn.txn_id.label(),
                    slot=[group, packet.multistamp.epoch, seq],
                    barrier=barrier, next_seq=next_seq)

    # -- drop recovery (§6.3) -------------------------------------------------
    def _start_recovery(self, slot: SlotId) -> None:
        if slot in self._recovering or slot.seq < self.channel.next_seq:
            return
        if self.tracer is not None:
            self.tracer.record("recovery_start", self.address,
                                       shard=self.shard,
                                       slot=_slot_fields(slot))
        recovery = _Recovery(slot=slot, phase="wait")
        recovery.timer = self.timer(self.config.drop_detection_delay,
                                    self._begin_peer_recovery, slot)
        recovery.timer.start()
        self._recovering[slot] = recovery

    def _begin_peer_recovery(self, slot: SlotId) -> None:
        recovery = self._recovering.get(slot)
        if recovery is None or slot.seq < self.channel.next_seq:
            self._cancel_recovery(slot)
            return
        recovery.phase = "peer"
        recovery.timer = self.timer(self.config.peer_recovery_timeout,
                                    self._escalate_to_fc, slot)
        recovery.timer.start()
        for peer in self._peers():
            self.send(peer, PeerTxnRequest(slot=slot, sender=self.address))

    def _cancel_recovery(self, slot: SlotId) -> None:
        recovery = self._recovering.pop(slot, None)
        if recovery is not None and recovery.timer is not None:
            recovery.timer.stop()

    def _escalate_to_fc(self, slot: SlotId) -> None:
        recovery = self._recovering.get(slot)
        if recovery is None:
            return
        recovery.phase = "fc"
        self.drops_escalated_to_fc += 1
        if self.tracer is not None:
            self.tracer.record("recovery_fc", self.address,
                                       shard=self.shard,
                                       slot=_slot_fields(slot))
        self.send(self.fc_address, FindTxn(slot=slot, sender=self.address))
        recovery.timer = self.timer(self.config.fc_retry_timeout,
                                    self._escalate_to_fc, slot)
        recovery.timer.start()

    def on_PeerTxnRequest(self, src: Address, msg: PeerTxnRequest,
                          packet: Packet) -> None:
        entry = self.log.find_slot(msg.slot)
        record = None
        dropped = False
        if entry is not None:
            if entry.kind == "txn":
                record = entry.record
            else:
                dropped = msg.slot in self.perm_drops
        elif msg.slot.epoch == self.channel.epoch:
            buffered = self.channel.get_buffered(msg.slot.seq)
            if buffered is not None:
                record = self._record_from_packet(buffered)
        self.send(src, PeerTxnResponse(slot=msg.slot, entry=record,
                                       sender=self.address, dropped=dropped))

    def on_PeerTxnResponse(self, src: Address, msg: PeerTxnResponse,
                           packet: Packet) -> None:
        recovery = self._recovering.get(msg.slot)
        if recovery is None or recovery.phase != "peer":
            return
        if msg.entry is not None:
            self.drops_recovered_from_peer += 1
            if self.tracer is not None:
                self.tracer.record("recovery_peer", self.address,
                                           shard=self.shard,
                                           slot=_slot_fields(msg.slot),
                                           peer=src)
            self._resolve_slot(msg.slot, msg.entry)
            return
        if msg.dropped:
            self.perm_drops.add(msg.slot)
            self._resolve_slot(msg.slot, None)
            return
        recovery.peers_answered += 1
        if recovery.peers_answered >= len(self._peers()):
            recovery.timer.stop()
            self._escalate_to_fc(msg.slot)

    def _resolve_slot(self, slot: SlotId, record: Optional[TxnRecord]) -> None:
        """Close a gap with a recovered transaction or a perm-drop."""
        self._cancel_recovery(slot)
        if slot.epoch != self.channel.epoch or slot.seq < self.channel.next_seq:
            return
        packet = None
        if record is not None:
            packet = Packet(src="recovered", dst=self.address,
                            payload=IndependentTxnRequest(record.txn),
                            multistamp=record.multistamp)
        for upcall in self.channel.resolve(slot.seq, packet):
            self._apply_upcall(upcall)
        self._drain()

    # -- FC-coordinated drop agreement (§6.3 steps 2–5) -------------------------
    def on_TxnRequestMsg(self, src: Address, msg: TxnRequestMsg,
                         packet: Packet) -> None:
        slot = msg.slot
        entry = self.log.find_slot(slot) if slot.shard == self.channel.group \
            else None
        if entry is None:
            entry = self.log.find_stamped(slot)
        if entry is not None and entry.kind == "txn":
            self.send(src, HasTxn(slot=slot, record=entry.record,
                                  sender=self.address))
            return
        if slot.shard == self.channel.group and slot.epoch == self.channel.epoch:
            buffered = self.channel.get_buffered(slot.seq)
            if buffered is not None:
                self.send(src, HasTxn(
                    slot=slot, record=self._record_from_packet(buffered),
                    sender=self.address))
                return
        # Promise: we will not process this transaction until the FC
        # decides its fate.
        self.temp_drops.add(slot)
        self.send(src, TempDroppedTxn(
            slot=slot,
            shard=self.shard,
            view_num=self.view_num,
            epoch_num=self.epoch_num,
            sender=self.address,
            replica_index=self.replica_index,
            is_dl=self.is_dl,
        ))

    def on_TxnFound(self, src: Address, msg: TxnFound, packet: Packet) -> None:
        self.un_drops.add(msg.slot)
        if msg.slot.shard == self.channel.group:
            self._resolve_slot(msg.slot, msg.record)
        self._vc_waiting.discard(msg.slot)
        self._maybe_finish_view_change()
        self._drain()

    def on_TxnDropped(self, src: Address, msg: TxnDropped,
                      packet: Packet) -> None:
        self.perm_drops.add(msg.slot)
        if msg.slot.shard == self.channel.group:
            self._resolve_slot(msg.slot, None)
        self._vc_waiting.discard(msg.slot)
        self._maybe_finish_view_change()
        self._drain()

    # -- synchronization (§6.6) --------------------------------------------
    def _sync_tick(self) -> None:
        if not self.is_dl or self.status != "normal" or self.crashed:
            return
        if self.tracer is not None:
            self.tracer.record("sync", self.address,
                                       shard=self.shard, view=self.view_num,
                                       epoch=self.epoch_num,
                                       log_len=self.log.last_index)
        for peer in self._peers():
            from_index = self._peer_synced.get(peer, 0) + 1
            self.send(peer, SyncLog(
                shard=self.shard,
                view_num=self.view_num,
                epoch_num=self.epoch_num,
                from_index=from_index,
                entries=tuple(self.log.entries(from_index)),
                commit_upto=self.log.last_index,
            ))
        self._abort_stuck_generals()

    def on_SyncLog(self, src: Address, msg: SyncLog, packet: Packet) -> None:
        if msg.epoch_num != self.epoch_num or self.status != "normal":
            return
        if msg.view_num < self.view_num:
            return
        if msg.view_num > self.view_num:
            # Lazily learn the new view from its DL.
            self.view_num = msg.view_num
        self._vc_timer.restart()
        if self.is_dl:
            return
        for entry in msg.entries:
            if entry.index <= self.log.last_index:
                continue
            if entry.index != self.log.last_index + 1:
                break  # gap relative to our log; next sync will fill it
            adopted = (self.log.append_txn(entry.slot, entry.record)
                       if entry.kind == "txn"
                       else self.log.append_noop(entry.slot))
            if self.tracer is not None:
                self._trace_append(adopted)
            self._cancel_recovery(entry.slot)
            if adopted.kind == "txn":
                self._reply(adopted.record.txn, adopted.index,
                            committed=True, result=None)
        # The channel may not have seen these sequence numbers; jump it
        # forward so later packets do not look like gaps.
        for upcall in self.channel.fast_forward(
                self.log.last_seq(self.channel.epoch) + 1):
            self._apply_upcall(upcall)
        # Execute the safe prefix.
        upto = min(msg.commit_upto, self.log.last_index)
        while len(self._fed) < upto:
            entry = self.log.get(len(self._fed) + 1)
            self.busy(self.config.execution_cost if entry.kind == "txn"
                      else 0.0)
            self._fed.append((entry.slot, entry.kind))
            if self.tracer is not None:
                self._trace_apply(entry)
            if entry.kind == "txn":
                self._early_unconfirmed.discard(entry.record.txn.txn_id)
                self.engine.feed(entry)
        self.send(src, SyncAck(
            shard=self.shard, view_num=self.view_num,
            epoch_num=self.epoch_num, log_len=self.log.last_index,
            sender=self.address,
        ))
        self._drain()

    def on_SyncAck(self, src: Address, msg: SyncAck, packet: Packet) -> None:
        if msg.view_num == self.view_num and msg.epoch_num == self.epoch_num:
            self._peer_synced[src] = max(self._peer_synced.get(src, 0),
                                         msg.log_len)

    # -- client-failure aborts (§7.2) -----------------------------------------
    def _abort_stuck_generals(self) -> None:
        if not self.engine.pending_generals:
            return
        horizon = self.now - self.config.general_abort_timeout
        for pending in self.engine.expired_generals(horizon):
            self._abort_seq += 1
            abort_txn = IndependentTransaction(
                txn_id=TxnId(client=f"{self.address}#aborter",
                             seq=self._abort_seq),
                proc="__conclusory__",
                args={"gtid": pending.gtid, "commit": False},
                participants=pending.participants,
                kind="conclusory",
            )
            self.send_groupcast(pending.participants,
                                IndependentTxnRequest(abort_txn))

    # -- view change (§6.4) ---------------------------------------------------
    def _on_dl_timeout(self) -> None:
        if self.crashed or self.status == "epoch-change":
            return
        self._initiate_view_change(self.view_num + 1)

    def _initiate_view_change(self, new_view: int) -> None:
        self.status = "view-change"
        self.view_num = new_view
        self._vc_pending_view = new_view
        if self.tracer is not None:
            self.tracer.record("view_change_start", self.address,
                                       shard=self.shard, view=new_view,
                                       epoch=self.epoch_num)
        self._sync_timer.stop()
        message = ViewChange(
            shard=self.shard,
            new_view=new_view,
            epoch_num=self.epoch_num,
            log=tuple(self.log.entries()),
            temp_drops=frozenset(self.temp_drops),
            perm_drops=frozenset(self.perm_drops),
            un_drops=frozenset(self.un_drops),
            sender=self.address,
        )
        target = self.dl_address(new_view)
        if target == self.address:
            self._record_view_change(message)
        else:
            self.send(target, message)
        self._vc_timer.restart()  # escalate to view+1 if this stalls

    def on_ViewChange(self, src: Address, msg: ViewChange,
                      packet: Packet) -> None:
        if msg.epoch_num != self.epoch_num or msg.new_view < self.view_num:
            return
        if msg.new_view > self.view_num or self.status == "normal":
            if self.dl_address(msg.new_view) == self.address:
                if self.status != "view-change" or \
                        self.view_num != msg.new_view:
                    self._initiate_view_change(msg.new_view)
        self._record_view_change(msg)

    def _record_view_change(self, msg: ViewChange) -> None:
        received = self._view_changes.setdefault(msg.new_view, {})
        received[msg.sender] = msg
        self._try_assemble_view(msg.new_view)

    def _try_assemble_view(self, view: int) -> None:
        if self.status != "view-change" or self.view_num != view:
            return
        if self.dl_address(view) != self.address:
            return
        received = self._view_changes.get(view, {})
        if len(received) < self.n_replicas // 2 + 1:
            return
        messages = list(received.values())
        perm = frozenset().union(*(m.perm_drops for m in messages))
        temp = frozenset().union(*(m.temp_drops for m in messages))
        un = frozenset().union(*(m.un_drops for m in messages))
        merged = merge_logs([m.log for m in messages], perm)
        self.temp_drops = set(temp)
        self.perm_drops = set(perm)
        self.un_drops = set(un)
        self._vc_merged_log = merged
        # Any logged transaction matching an undecided temp-drop forces
        # us to wait for the FC's verdict (§6.4).
        self._vc_waiting = set()
        undecided = temp - un - perm
        for entry in merged:
            if entry.kind != "txn":
                continue
            stamp = entry.record.multistamp
            for gid, seq in stamp.stamps:
                slot = SlotId(gid, stamp.epoch, seq)
                if slot in undecided:
                    self._vc_waiting.add(slot)
                    self.send(self.fc_address, HasTxn(
                        slot=slot, record=entry.record, sender=self.address))
        self._maybe_finish_view_change()

    def _maybe_finish_view_change(self) -> None:
        if self.status != "view-change" or self._vc_pending_view is None:
            return
        if self.dl_address(self.view_num) != self.address:
            return
        if not hasattr(self, "_vc_merged_log"):
            return
        if self._vc_waiting:
            return
        merged = merge_logs([tuple(self._vc_merged_log)],
                            frozenset(self.perm_drops))
        self._adopt_log(merged)
        self.status = "normal"
        self._vc_pending_view = None
        del self._vc_merged_log
        if self.tracer is not None:
            self.tracer.record("view_change_complete", self.address,
                                       shard=self.shard, view=self.view_num,
                                       epoch=self.epoch_num, role="dl",
                                       log_len=self.log.last_index)
        for peer in self._peers():
            self.send(peer, StartView(
                shard=self.shard,
                view_num=self.view_num,
                epoch_num=self.epoch_num,
                log=tuple(self.log.entries()),
                temp_drops=frozenset(self.temp_drops),
                perm_drops=frozenset(self.perm_drops),
                un_drops=frozenset(self.un_drops),
            ))
        self._peer_synced = {a: 0 for a in self._peers()}
        self._become_role()
        self._catch_up_engine(reply=True)
        self._drain()

    def on_StartView(self, src: Address, msg: StartView,
                     packet: Packet) -> None:
        if msg.epoch_num != self.epoch_num or msg.view_num < self.view_num:
            return
        self.view_num = msg.view_num
        self.temp_drops = set(msg.temp_drops)
        self.perm_drops = set(msg.perm_drops)
        self.un_drops = set(msg.un_drops)
        self._adopt_log(list(msg.log))
        self.status = "normal"
        self._vc_pending_view = None
        if self.tracer is not None:
            self.tracer.record("view_change_complete", self.address,
                                       shard=self.shard, view=self.view_num,
                                       epoch=self.epoch_num, role="follower",
                                       log_len=self.log.last_index)
        self._become_role()
        self._drain()

    def _become_role(self) -> None:
        if self.is_dl:
            self._vc_timer.stop()
            self._sync_timer.start()
        else:
            self._sync_timer.stop()
            self._vc_timer.restart()

    # -- epoch change (§6.5) --------------------------------------------------
    def _notice_new_epoch(self, new_epoch: int) -> None:
        if new_epoch <= self._promised_epoch and self.status == "epoch-change":
            return
        self.status = "epoch-change"
        if self.tracer is not None:
            self.tracer.record("epoch_change_start", self.address,
                                       shard=self.shard, epoch=new_epoch)
        self._sync_timer.stop()
        self._vc_timer.stop()
        self.send(self.fc_address, EpochChangeReq(
            shard=self.shard, new_epoch=new_epoch, sender=self.address))

    def on_EpochStateRequest(self, src: Address, msg: EpochStateRequest,
                             packet: Packet) -> None:
        if msg.new_epoch <= self.epoch_num:
            return
        self.status = "epoch-change"
        self._promised_epoch = max(self._promised_epoch, msg.new_epoch)
        self._sync_timer.stop()
        self._vc_timer.stop()
        self.send(src, EpochState(
            shard=self.shard,
            new_epoch=msg.new_epoch,
            last_normal_epoch=self.epoch_num,
            view_num=self.view_num,
            log=tuple(self.log.entries()),
            perm_drops=frozenset(self.perm_drops),
            sender=self.address,
        ))

    def on_StartEpoch(self, src: Address, msg: StartEpoch,
                      packet: Packet) -> None:
        if msg.new_epoch < self.epoch_num or (
                msg.new_epoch == self.epoch_num and self.status == "normal"):
            # Duplicate; re-ack so the FC stops retransmitting.
            self.send(src, StartEpochAck(shard=self.shard,
                                         new_epoch=msg.new_epoch,
                                         sender=self.address))
            return
        self.epoch_num = msg.new_epoch
        self._promised_epoch = msg.new_epoch
        self.view_num = msg.view_num
        self.temp_drops.clear()
        self.perm_drops.clear()
        self.un_drops.clear()
        self._delivery_queue.clear()
        for slot in list(self._recovering):
            self._cancel_recovery(slot)
        self._adopt_log(list(msg.log))
        self.status = "normal"
        replay = self.channel.begin_epoch(msg.new_epoch) \
            if msg.new_epoch > self.channel.epoch else []
        # Our log may already extend into the new epoch (FC rebuilt it
        # from a replica that advanced further); jump past those slots.
        for upcall in self.channel.fast_forward(
                self.log.last_seq(self.channel.epoch) + 1):
            self._apply_upcall(upcall)
        self._peer_synced = {a: 0 for a in self._peers()}
        if self.tracer is not None:
            self.tracer.record("epoch_change_complete", self.address,
                                       shard=self.shard, epoch=msg.new_epoch,
                                       view=self.view_num,
                                       log_len=self.log.last_index)
        self._become_role()
        if self.is_dl:
            self._catch_up_engine(reply=True)
        self.send(src, StartEpochAck(shard=self.shard,
                                     new_epoch=msg.new_epoch,
                                     sender=self.address))
        for packet_ in replay:
            self._on_sequenced(packet_)
        self._drain()

    # -- log adoption and engine consistency ----------------------------------
    def _adopt_log(self, entries: list[LogEntry]) -> None:
        """Install a merged log; if it contradicts what this replica
        already executed, rebuild application state by replay (the
        paper's application state transfer for rolled-back DLs)."""
        mismatch = any(
            i >= len(entries)
            or self._fed[i] != (entries[i].slot, entries[i].kind)
            for i in range(len(self._fed))
        )
        if self._early_unconfirmed and not mismatch:
            # A commutative transaction applied ahead of log order is
            # only accounted for by a log that still contains it. If
            # the adopted log dropped it (its slot was perm-dropped in
            # the epoch change), the store holds an effect the fed
            # prefix cannot explain — rebuild even though the fed
            # prefix itself matches.
            adopted_ids = {entry.record.txn.txn_id for entry in entries
                           if entry.kind == "txn"}
            mismatch = any(txn_id not in adopted_ids
                           for txn_id in self._early_unconfirmed)
        self.log.replace(entries)
        if self.tracer is not None:
            self.tracer.record(
                "log_adopt", self.address, shard=self.shard,
                rebuilt=mismatch,
                entries=[[e.index, e.kind, _entry_txn(e),
                          _slot_fields(e.slot)] for e in entries])
        if mismatch:
            self.store.load(self.initial_snapshot)
            self.engine.reset()
            self._fed = []
            self._early_unconfirmed.clear()
            if self.is_dl:
                self._catch_up_engine(reply=False)

    def _catch_up_engine(self, reply: bool) -> None:
        """Feed any unfed prefix (new DLs execute everything)."""
        while len(self._fed) < self.log.last_index:
            entry = self.log.get(len(self._fed) + 1)
            if entry.kind == "txn" and reply:
                self._feed_entry(entry, reply_to=entry.record.txn.txn_id.client)
            else:
                self._feed_entry(entry)

    # -- failure injection -----------------------------------------------------
    def crash(self) -> None:
        super().crash()
        self._sync_timer.stop()
        self._vc_timer.stop()
        if self._watermark_timer is not None:
            self._watermark_timer.stop()
        for recovery in self._recovering.values():
            if recovery.timer is not None:
                recovery.timer.stop()
