"""The Eris client (§6.1–6.2).

Clients send independent transactions straight to every replica of
every participant shard through multi-sequenced groupcast, then wait
for a view-consistent quorum of REPLYs from each shard — a majority
with matching (epoch-num, view-num, txn-index) *including the DL*,
whose reply carries the execution result. In the normal case that is
one round trip with no server-to-server communication at all
(Figure 5).

Clients retry unacknowledged transactions (the retry is stamped fresh
by the sequencer; replicas' at-most-once tables suppress
re-execution, §6.1), so the client also provides the reliability
backstop against packets the in-network layer dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.messages import (
    FastReadReply,
    IndependentTxnRequest,
    ReconRead,
    ReconReply,
    TxnReply,
    TxnReplyBatch,
)
from repro.core.quorum import ViewConsistentQuorum
from repro.core.transaction import IndependentTransaction, TxnId
from repro.net.endpoint import Node
from repro.net.message import Address, GroupId, Packet
from repro.net.network import Network
from repro.sim.process import Timer


@dataclass
class TxnOutcome:
    """What the application sees when a transaction finishes."""

    txn_id: TxnId
    committed: bool
    results: dict[GroupId, Any]
    latency: float
    retries: int = 0


@dataclass
class _PendingTxn:
    txn: IndependentTransaction
    callback: Callable[[TxnOutcome], None]
    start_time: float
    quorums: dict[GroupId, ViewConsistentQuorum]
    satisfied: dict[GroupId, Any] = field(default_factory=dict)
    timer: Optional[Timer] = None
    retries: int = 0


@dataclass
class _PendingRecon:
    """Waiters for one outstanding (replica, key) reconnaissance read."""

    callbacks: list[Callable[[Any, Any], None]]
    timer: Optional[Timer] = None
    retries: int = 0


class ErisClient(Node):
    """Submits independent transactions and tracks quorum replies."""

    def __init__(self, address: Address, network: Network,
                 shard_sizes: dict[GroupId, int],
                 retry_timeout: float = 1e-3,
                 max_retries: int = 100):
        super().__init__(address, network)
        self.shard_sizes = dict(shard_sizes)
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self._seq = 0
        self._pending: dict[TxnId, _PendingTxn] = {}
        # Keyed by (replica, key): concurrent reads of one key from
        # *different* replicas are distinct requests and must not share
        # waiters — a stale replica's reply may satisfy only its own.
        self._recon_pending: dict[tuple[Address, Any], _PendingRecon] = {}
        self.committed_count = 0
        self.aborted_count = 0
        #: Submissions abandoned after ``max_retries`` retransmissions
        #: without reaching quorum. Every completed submission lands in
        #: exactly one of committed/aborted/timedout, so
        #: ``committed_count + aborted_count + timedout_count`` equals
        #: the number of callbacks fired.
        self.timedout_count = 0
        self.retry_count = 0
        self.recon_retry_count = 0
        #: Transactions completed by a single-replica FastReadReply.
        self.fast_read_count = 0

    # -- submission --------------------------------------------------------
    def next_txn_id(self) -> TxnId:
        self._seq += 1
        return TxnId(client=self.address, seq=self._seq)

    def submit(
        self,
        proc: str,
        args: dict,
        participants: tuple[GroupId, ...],
        callback: Callable[[TxnOutcome], None],
        read_keys: frozenset = frozenset(),
        write_keys: frozenset = frozenset(),
        kind: str = "independent",
        op_class: str = "generic",
        txn_id: Optional[TxnId] = None,
    ) -> TxnId:
        """Fire one independent transaction; ``callback`` runs when a
        view-consistent quorum from every participant arrives (or, for
        a READ_ONLY transaction the sequencer routed down the fast
        path, when a single :class:`FastReadReply` does)."""
        txn = IndependentTransaction(
            txn_id=txn_id or self.next_txn_id(),
            proc=proc,
            args=args,
            participants=tuple(participants),
            read_keys=read_keys,
            write_keys=write_keys,
            kind=kind,
            op_class=op_class,
        )
        pending = _PendingTxn(
            txn=txn,
            callback=callback,
            start_time=self.now,
            quorums={shard: ViewConsistentQuorum(self.shard_sizes[shard])
                     for shard in txn.participants},
        )
        pending.timer = self.timer(self.retry_timeout, self._retry, txn.txn_id)
        pending.timer.start()
        self._pending[txn.txn_id] = pending
        self._transmit(txn)
        return txn.txn_id

    def _transmit(self, txn: IndependentTransaction, retry: int = 0) -> None:
        packet = self.send_groupcast(txn.participants,
                                     IndependentTxnRequest(txn))
        tracer = self.tracer
        if tracer is not None and packet is not None:
            # One txn_submit per transmission attempt; the causal id
            # ties the attempt to its request packet's fan-out tree.
            tracer.record("txn_submit", self.address,
                          cause=packet.trace_id, txn=txn.txn_id.label(),
                          retry=retry,
                          participants=list(txn.participants))

    def _retry(self, txn_id: TxnId) -> None:
        pending = self._pending.get(txn_id)
        if pending is None:
            return
        pending.retries += 1
        self.retry_count += 1
        if pending.retries > self.max_retries:
            del self._pending[txn_id]
            # The give-up is a completed (failed) submission and must be
            # counted, or committed+aborted+timedout drifts from the
            # number of finished submissions and harness failure-rate
            # stats silently undercount.
            self.timedout_count += 1
            outcome = TxnOutcome(txn_id=txn_id, committed=False, results={},
                                 latency=self.now - pending.start_time,
                                 retries=pending.retries)
            if self.tracer is not None:
                self.tracer.record(
                    "txn_complete", self.address, txn=txn_id.label(),
                    committed=False, timedout=True,
                    retries=pending.retries)
            pending.callback(outcome)
            return
        self._transmit(pending.txn, retry=pending.retries)
        pending.timer.start()

    # -- replies ----------------------------------------------------------
    def on_TxnReplyBatch(self, src: Address, msg: TxnReplyBatch,
                         packet: Packet) -> None:
        # Coalesced replies unpack into the normal per-reply path, so
        # quorum accounting is identical to unbatched delivery.
        for reply in msg.replies:
            self.on_TxnReply(src, reply, packet)

    def on_TxnReply(self, src: Address, msg: TxnReply, packet: Packet) -> None:
        pending = self._pending.get(msg.txn_id)
        if pending is None or msg.shard in pending.satisfied:
            return
        quorum = pending.quorums.get(msg.shard)
        if quorum is None:
            return
        key = (msg.epoch_num, msg.view_num, msg.txn_index)
        quorum.add(key, msg.replica_index, msg.is_dl,
                   payload=(msg.committed, msg.result))
        satisfied_key = quorum.satisfied()
        if satisfied_key is None:
            return
        pending.satisfied[msg.shard] = quorum.dl_payload(satisfied_key)
        if len(pending.satisfied) == len(pending.txn.participants):
            self._complete(pending)

    def _complete(self, pending: _PendingTxn) -> None:
        del self._pending[pending.txn.txn_id]
        if pending.timer is not None:
            pending.timer.stop()
        # Independent transactions reach the same deterministic decision
        # on every participant; mixed votes cannot happen for them. For
        # preliminary transactions the client aggregates the per-shard
        # validation votes itself.
        committed = all(ok for ok, _ in pending.satisfied.values())
        if committed:
            self.committed_count += 1
        else:
            self.aborted_count += 1
        outcome = TxnOutcome(
            txn_id=pending.txn.txn_id,
            committed=committed,
            results={shard: result
                     for shard, (_, result) in pending.satisfied.items()},
            latency=self.now - pending.start_time,
            retries=pending.retries,
        )
        if self.tracer is not None:
            self.tracer.record(
                "txn_complete", self.address,
                txn=pending.txn.txn_id.label(), committed=committed,
                timedout=False, retries=pending.retries)
        pending.callback(outcome)

    def on_FastReadReply(self, src: Address, msg: FastReadReply,
                         packet: Packet) -> None:
        """Single-replica completion of a clean READ_ONLY transaction.

        No quorum is collected: the sequencer only forwarded the read
        after its dirty-set check proved every committed conflicting
        write is already applied at *every* replica, so one replica's
        answer is authoritative. If the slow path already completed
        this transaction (a retry raced the reply), the pending entry
        is gone and the reply is ignored.
        """
        pending = self._pending.pop(msg.txn_id, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.stop()
        if msg.committed:
            self.committed_count += 1
        else:
            self.aborted_count += 1
        self.fast_read_count += 1
        outcome = TxnOutcome(
            txn_id=msg.txn_id,
            committed=msg.committed,
            results={msg.shard: msg.result},
            latency=self.now - pending.start_time,
            retries=pending.retries,
        )
        if self.tracer is not None:
            self.tracer.record(
                "txn_complete", self.address, txn=msg.txn_id.label(),
                committed=msg.committed, timedout=False,
                retries=pending.retries, fast_read=True)
        pending.callback(outcome)

    # -- reconnaissance reads (§7.1) ------------------------------------------
    def recon(self, replica: Address, key: Any,
              callback: Callable[[Any, Any], None]) -> None:
        """Non-transactional read of ``key`` from ``replica``;
        ``callback(key, value)`` fires on the reply.

        Requests are keyed by ``(replica, key)``: a reply only releases
        waiters for the replica it came from, so a read deliberately
        sent to a specific replica cannot be satisfied by another
        (possibly stale) replica's answer. §7.1's general transactions
        depend on recon for their reads, so a dropped ``ReconReply``
        must not strand them: the read is retransmitted on the client's
        retry timeout; after ``max_retries`` attempts the waiters fire
        with ``None`` (replica unreachable)."""
        rkey = (replica, key)
        entry = self._recon_pending.get(rkey)
        if entry is not None:
            entry.callbacks.append(callback)
            return
        entry = _PendingRecon(callbacks=[callback])
        entry.timer = self.timer(self.retry_timeout, self._recon_retry, rkey)
        entry.timer.start()
        self._recon_pending[rkey] = entry
        self.send(replica, ReconRead(key=key))

    def _recon_retry(self, rkey: tuple[Address, Any]) -> None:
        entry = self._recon_pending.get(rkey)
        if entry is None:
            return
        entry.retries += 1
        self.recon_retry_count += 1
        replica, key = rkey
        if entry.retries > self.max_retries:
            del self._recon_pending[rkey]
            for callback in entry.callbacks:
                callback(key, None)
            return
        self.send(replica, ReconRead(key=key))
        entry.timer.start()

    def on_ReconReply(self, src: Address, msg: ReconReply,
                      packet: Packet) -> None:
        entry = self._recon_pending.pop((src, msg.key), None)
        if entry is None:
            return
        if entry.timer is not None:
            entry.timer.stop()
        for callback in entry.callbacks:
            callback(msg.key, msg.value)

    # -- introspection ------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._pending)
