"""General transactions built from independent transactions (§7).

A general transaction runs in two phases, each an independent
transaction sequenced by the network layer:

1. a **preliminary transaction** atomically acquires every read and
   write lock on every participant and returns the read values (and,
   for state-dependent transactions, re-validates the reconnaissance
   results);
2. a **conclusory transaction** commits (installing the writes the
   client computed from the preliminary's reads) or aborts; either way
   the locks release.

Because the lock set is acquired in one atomic step executed in the
linearized order, wait-for cycles cannot form — Eris's general
transactions never deadlock (§7.3). Client failures are handled by the
replicas themselves: a DL that sees locks held too long sequences an
Abort conclusory of its own (§7.2), which races any in-flight client
Commit safely because the first conclusory in the serial order wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from repro.core.client import ErisClient, TxnOutcome
from repro.core.transaction import TxnId
from repro.net.message import GroupId


@dataclass
class GeneralOutcome:
    """Result of a full two-phase general transaction."""

    gtid: TxnId
    committed: bool
    values: dict
    latency: float
    reason: str = ""


#: ``compute(values) -> writes-dict`` maps the preliminary's reads to
#: the writes to install; returning None aborts the transaction.
ComputeFn = Callable[[dict], Optional[dict]]


class GeneralTransactionManager:
    """Client-side driver for §7 general transactions."""

    def __init__(self, client: ErisClient):
        self.client = client
        self.committed = 0
        self.aborted = 0

    def execute(
        self,
        read_keys,
        write_keys,
        participants: tuple[GroupId, ...],
        compute: ComputeFn,
        callback: Callable[[GeneralOutcome], None],
        expected: Optional[dict] = None,
    ) -> TxnId:
        """Run one general transaction; ``callback`` fires after the
        conclusory transaction completes on every participant."""
        start = self.client.now
        gtid = self.client.submit(
            proc="__prelim__",
            args={"expected": expected} if expected else {},
            participants=participants,
            read_keys=frozenset(read_keys),
            write_keys=frozenset(write_keys),
            kind="preliminary",
            callback=lambda outcome: self._on_preliminary(
                outcome, participants, compute, callback, start),
        )
        return gtid

    def _on_preliminary(self, outcome: TxnOutcome,
                        participants: tuple[GroupId, ...],
                        compute: ComputeFn,
                        callback: Callable[[GeneralOutcome], None],
                        start: float) -> None:
        values: dict = {}
        for result in outcome.results.values():
            if isinstance(result, dict):
                values.update(result.get("values", {}))
        writes: Optional[dict] = None
        reason = ""
        if not outcome.committed:
            reason = "validation failed"  # stale reconnaissance (§7.1)
        else:
            writes = compute(values)
            if writes is None:
                reason = "application abort"
        commit = writes is not None
        self.client.submit(
            proc="__conclusory__",
            args={"gtid": outcome.txn_id, "commit": commit,
                  "writes": writes or {}},
            participants=participants,
            kind="conclusory",
            callback=lambda conclusory: self._on_conclusory(
                outcome.txn_id, commit and conclusory.committed, values,
                reason, callback, start),
        )

    def _on_conclusory(self, gtid: TxnId, committed: bool, values: dict,
                       reason: str,
                       callback: Callable[[GeneralOutcome], None],
                       start: float) -> None:
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        callback(GeneralOutcome(
            gtid=gtid,
            committed=committed,
            values=values,
            latency=self.client.now - start,
            reason=reason,
        ))

    # -- reconnaissance queries (§7.1) ----------------------------------------
    def reconnaissance(self, keys_by_replica: dict[str, list[Hashable]],
                       callback: Callable[[dict], None]) -> None:
        """Issue non-transactional reads for state-dependent
        transactions: one ReconRead per key to the replica (normally
        the owning shard's DL) named in ``keys_by_replica``."""
        expected = sum(len(keys) for keys in keys_by_replica.values())
        if expected == 0:
            callback({})
            return
        gathered: dict = {}

        def on_value(key: Hashable, value: Any) -> None:
            gathered[key] = value
            if len(gathered) == expected:
                callback(dict(gathered))

        for replica, keys in keys_by_replica.items():
            for key in keys:
                self.client.recon(replica, key, on_value)
