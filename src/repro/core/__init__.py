"""Eris: the paper's transaction processing protocol (Sections 6–7).

Layering follows Figure 3:

- the network layer (:mod:`repro.net`) provides *ordering* via
  multi-sequenced groupcast;
- the independent-transaction layer here adds *reliability* and
  atomicity — :mod:`repro.core.replica` (normal case, drop recovery,
  DL view changes, epoch changes, synchronization),
  :mod:`repro.core.fc` (the Failure Coordinator), and
  :mod:`repro.core.client`;
- the general-transaction layer adds *isolation* for cross-shard
  dependent transactions — :mod:`repro.core.general` plus lock support
  inside :mod:`repro.core.engine`.
"""

from repro.core.client import ErisClient, TxnOutcome
from repro.core.engine import ExecutionEngine
from repro.core.fc import FailureCoordinator
from repro.core.general import GeneralTransactionManager
from repro.core.log import ErisLog, LogEntry
from repro.core.replica import ErisConfig, ErisReplica
from repro.core.transaction import IndependentTransaction, SlotId, TxnId

__all__ = [
    "ErisClient",
    "TxnOutcome",
    "ExecutionEngine",
    "FailureCoordinator",
    "GeneralTransactionManager",
    "ErisLog",
    "LogEntry",
    "ErisConfig",
    "ErisReplica",
    "IndependentTransaction",
    "SlotId",
    "TxnId",
]
