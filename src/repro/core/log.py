"""The Eris replica log.

Slots are filled strictly in sequence order: log position *i* within an
epoch holds either the transaction the sequencer assigned that shard's
sequence number to, or a NO-OP for a permanently dropped slot. The log
therefore never has holes — drop recovery completes (with a recovered
transaction or a NO-OP) before later slots are appended.

Entries also record the multi-stamp, so a replica can answer
TXN-REQUESTs for *other shards'* slots (§5.3's second multi-stamp
purpose): a transaction logged here under our sequence number carries
the sequence numbers of every other participant too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.messages import TxnRecord
from repro.core.transaction import SlotId
from repro.net.message import GroupId


@dataclass(frozen=True)
class LogEntry:
    """One slot. ``record.txn is None`` never happens for kind='txn';
    NO-OP entries keep the slot identity but no transaction."""

    index: int          # 1-based position in this replica's log
    slot: SlotId        # (shard, epoch, shard-sequence-number)
    kind: str           # "txn" | "noop"
    record: Optional[TxnRecord]

    @property
    def is_noop(self) -> bool:
        return self.kind == "noop"

    def as_noop(self) -> "LogEntry":
        return LogEntry(index=self.index, slot=self.slot, kind="noop",
                        record=None)


class ErisLog:
    """Append-only, gapless log for one shard replica."""

    def __init__(self, shard: GroupId):
        self.shard = shard
        self._entries: list[LogEntry] = []
        # O(1) lookups for the recovery protocols: own-slot entries and
        # every (group, epoch, seq) the entries' multi-stamps mention.
        self._slot_index: dict[SlotId, LogEntry] = {}
        self._stamp_index: dict[SlotId, LogEntry] = {}

    def _index(self, entry: LogEntry) -> None:
        self._slot_index[entry.slot] = entry
        if entry.record is not None:
            stamp = entry.record.multistamp
            for gid, seq in stamp.stamps:
                self._stamp_index[SlotId(gid, stamp.epoch, seq)] = entry

    def append_txn(self, slot: SlotId, record: TxnRecord) -> LogEntry:
        entry = LogEntry(index=len(self._entries) + 1, slot=slot,
                         kind="txn", record=record)
        self._entries.append(entry)
        self._index(entry)
        return entry

    def append_noop(self, slot: SlotId) -> LogEntry:
        entry = LogEntry(index=len(self._entries) + 1, slot=slot,
                         kind="noop", record=None)
        self._entries.append(entry)
        self._index(entry)
        return entry

    def get(self, index: int) -> Optional[LogEntry]:
        if 1 <= index <= len(self._entries):
            return self._entries[index - 1]
        return None

    def find_slot(self, slot: SlotId) -> Optional[LogEntry]:
        """Entry whose own slot matches (this shard's sequence space)."""
        return self._slot_index.get(slot)

    def find_stamped(self, slot: SlotId) -> Optional[LogEntry]:
        """Entry whose *multi-stamp* covers ``slot`` — answers foreign
        shards' TXN-REQUESTs."""
        entry = self._stamp_index.get(slot)
        if entry is not None and entry.record is not None:
            return entry
        return None

    def entries(self, start_index: int = 1) -> list[LogEntry]:
        return self._entries[start_index - 1:]

    def replace(self, entries: list[LogEntry]) -> None:
        """Adopt a merged log (view change / epoch change). Re-indexes
        defensively so positions are always 1..n."""
        self._entries = [
            LogEntry(index=i + 1, slot=e.slot, kind=e.kind, record=e.record)
            for i, e in enumerate(entries)
        ]
        self._slot_index.clear()
        self._stamp_index.clear()
        for entry in self._entries:
            self._index(entry)

    def overwrite_noop(self, index: int) -> None:
        """Replace the entry at ``index`` with a NO-OP (perm-drop during
        view-change merge)."""
        entry = self._entries[index - 1]
        noop = entry.as_noop()
        self._entries[index - 1] = noop
        self._slot_index[noop.slot] = noop

    @property
    def last_index(self) -> int:
        return len(self._entries)

    def last_seq(self, epoch: int) -> int:
        """Highest own-shard sequence number logged for ``epoch``."""
        for entry in reversed(self._entries):
            if entry.slot.epoch == epoch:
                return entry.slot.seq
        return 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)


def merge_logs(logs: list[tuple], perm_drops: frozenset) -> list[LogEntry]:
    """View-change merge (§6.4): take the longest log received, then
    overwrite any transaction matching a perm-dropped slot with NO-OP.

    ``logs`` holds tuples of LogEntry as shipped in VIEW-CHANGE
    messages. Logs within one epoch are prefix-consistent except for
    txn-vs-NO-OP divergence at slots the FC dropped, which the
    perm-drop overwrite resolves.
    """
    longest: tuple = ()
    for log in logs:
        if len(log) > len(longest):
            longest = log
    merged: list[LogEntry] = []
    for i, entry in enumerate(longest):
        if entry.kind == "txn" and _stamp_hits(entry, perm_drops):
            entry = entry.as_noop()
        merged.append(LogEntry(index=i + 1, slot=entry.slot,
                               kind=entry.kind, record=entry.record))
    return merged


def _stamp_hits(entry: LogEntry, slots: frozenset) -> bool:
    """Does this entry's multi-stamp match any of ``slots``? Checked
    against every (group, seq) pair because a drop decided for one
    participant's slot drops the transaction everywhere."""
    if entry.record is None:
        return entry.slot in slots
    stamp = entry.record.multistamp
    return any(SlotId(gid, stamp.epoch, seq) in slots
               for gid, seq in stamp.stamps)
