"""Deterministic transaction execution for one shard.

The engine consumes log entries **in log order** and applies them to
the shard's store. It is the single execution path for both roles:

- the Designated Learner feeds entries as they are logged (executing
  synchronously, §6.1), and
- non-DL replicas feed the same entries later, when the §6.6
  synchronization protocol marks them safe.

Determinism is the load-bearing property: given the same entry
sequence, every replica makes identical decisions — duplicate
suppression, lock grant order, deferred-transaction wakeups — so
replicas converge on the same application state even though the DL
interleaves deferred transactions differently from naive log order.

Locking (§7): keys are locked only while general transactions are
outstanding. A preliminary transaction atomically acquires its whole
lock set (or queues, FIFO); its conclusory transaction commits/aborts
under those locks and releases them. While any locks are held, every
transaction's declared key set is checked, and conflicting transactions
are deferred in lock-queue order — cycles are impossible because
acquisition is a single atomic step executed in the linearized order
(this is why Eris cannot deadlock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from repro.errors import TransactionAborted
from repro.core.log import LogEntry
from repro.core.transaction import IndependentTransaction, TxnId
from repro.store.kv import KVStore
from repro.store.locks import LockManager, LockOutcome, LockPolicy
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.store.undo import UndoLog

#: Callback invoked when an entry's execution completes:
#: ``on_done(committed: bool, result: Any)``.
DoneCallback = Callable[[bool, Any], None]


@dataclass
class PendingGeneral:
    """A general transaction whose locks are held on this shard."""

    gtid: TxnId
    participants: tuple[int, ...]
    granted_at: float
    values: dict = field(default_factory=dict)


@dataclass
class _ExecResult:
    committed: bool
    result: Any


class ExecutionEngine:
    """Serial executor with §7 lock semantics for one shard replica."""

    def __init__(
        self,
        store: KVStore,
        registry: ProcedureRegistry,
        shard: int,
        owns: Optional[Callable[[Hashable], bool]] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.store = store
        self.registry = registry
        self.shard = shard
        self._owns = owns or (lambda key: True)
        self._clock = clock or (lambda: 0.0)
        self.locks = LockManager()
        self.pending_generals: dict[TxnId, PendingGeneral] = {}
        self._queued_prelims: set[TxnId] = set()
        self._waiting_conclusory: dict[TxnId, tuple[LogEntry, DoneCallback]] = {}
        #: At-most-once table (§6.1): client -> {seq: outcome}. Keyed
        #: per sequence number (not latest-only) because clients may
        #: pipeline transactions whose executions complete out of
        #: order once general-transaction locks defer some of them.
        self.client_table: dict[str, dict[int, _ExecResult]] = {}
        self.executed_entries = 0
        self.deferred_executions = 0
        #: log index of the entry currently being fed (for bookkeeping)
        self._current_index = 0

    # -- public API --------------------------------------------------------
    def feed(self, entry: LogEntry,
             on_done: Optional[DoneCallback] = None) -> None:
        """Process the next log entry. Must be called in log order."""
        done = on_done or (lambda committed, result: None)
        self._current_index = entry.index
        if entry.is_noop:
            done(False, "no-op")
            return
        txn = entry.record.txn
        if self._is_duplicate(txn):
            self._reply_duplicate(txn, done)
            return
        if txn.kind == "conclusory":
            self._feed_conclusory(entry, txn, done)
            return
        if self._needs_locks(txn):
            self._feed_locked(entry, txn, done)
        else:
            self._run_and_finish(entry, txn, done)

    def execute_early(self, txn: IndependentTransaction) -> bool:
        """Apply a COMMUTATIVE transaction ahead of log order.

        The §3.2 relaxation point: while the replica is stalled on an
        ordering gap, a buffered commutative transaction whose reorder
        barrier has already been passed may execute immediately — every
        slot it jumps is commutative with it, so the store converges to
        the same state as in-order application. The outcome lands in
        the at-most-once table, so when the slot is eventually fed in
        log order the duplicate-suppression path replies with this
        recorded result instead of re-executing (§6.1). Durability is
        untouched: replies still wait for log append in slot order.

        Returns True when the transaction executed now; False when it
        already executed (duplicate) or the relaxation is unsafe
        (general-transaction locks outstanding, §7).
        """
        if txn.kind != "independent" or txn.op_class != "commutative":
            return False
        if self.pending_generals or self._queued_prelims \
                or self.locks.queue_length() > 0:
            return False
        if self._is_duplicate(txn):
            return False
        result = self._execute(txn)
        self._record_outcome(txn, result)
        return True

    def reset(self) -> None:
        """Forget all execution state (used before a full replay)."""
        self.locks = LockManager()
        self.pending_generals.clear()
        self._queued_prelims.clear()
        self._waiting_conclusory.clear()
        self.client_table.clear()
        self.executed_entries = 0

    def cached_reply(self, txn_id: TxnId) -> Optional[tuple[bool, Any]]:
        """The recorded outcome for a transaction already executed on
        this shard (at-most-once semantics, §6.1)."""
        cached = self.client_table.get(txn_id.client, {}).get(txn_id.seq)
        if cached is not None:
            return cached.committed, cached.result
        return None

    def expired_generals(self, older_than: float) -> list[PendingGeneral]:
        """General transactions whose locks were granted before
        ``older_than`` — candidates for the §7.2 unilateral abort of
        failed clients."""
        return [
            pending for pending in self.pending_generals.values()
            if pending.granted_at <= older_than
            and pending.gtid not in self._queued_prelims
        ]

    # -- duplicate suppression --------------------------------------------------
    def _is_duplicate(self, txn: IndependentTransaction) -> bool:
        return txn.txn_id.seq in self.client_table.get(txn.txn_id.client, {})

    def _reply_duplicate(self, txn: IndependentTransaction,
                         done: DoneCallback) -> None:
        cached = self.client_table[txn.txn_id.client][txn.txn_id.seq]
        done(cached.committed, cached.result)

    # -- lock-free fast path ----------------------------------------------------
    def _needs_locks(self, txn: IndependentTransaction) -> bool:
        """Locks are consulted only when general transactions are
        outstanding (§7: 'used only when there are outstanding general
        transactions'); preliminary transactions always acquire."""
        if txn.kind == "preliminary":
            return True
        return bool(self.pending_generals) or bool(self._queued_prelims) \
            or self.locks.queue_length() > 0

    # -- locked path ----------------------------------------------------------
    def _feed_locked(self, entry: LogEntry, txn: IndependentTransaction,
                     done: DoneCallback) -> None:
        reads, writes = txn.keys_on(self._owns)
        lock_txn = (txn.txn_id, entry.index)  # unique per log entry
        if txn.kind == "preliminary":
            self._queued_prelims.add(txn.txn_id)
        outcome = self.locks.request(
            lock_txn, reads, writes,
            timestamp=entry.index,
            policy=LockPolicy.QUEUE,
            on_grant=lambda: self._granted(entry, txn, lock_txn, done),
        )
        if outcome is LockOutcome.GRANTED:
            self._granted(entry, txn, lock_txn, done)
        else:
            self.deferred_executions += 1

    def _granted(self, entry: LogEntry, txn: IndependentTransaction,
                 lock_txn, done: DoneCallback) -> None:
        if self._is_duplicate(txn):
            self.locks.release_all(lock_txn)
            self._queued_prelims.discard(txn.txn_id)
            self._reply_duplicate(txn, done)
            return
        if txn.kind == "preliminary":
            self._queued_prelims.discard(txn.txn_id)
            result = self._execute_preliminary(entry, txn, lock_txn)
            self._record_outcome(txn, result)
            done(result.committed, result.result)
            waiting = self._waiting_conclusory.pop(txn.txn_id, None)
            if waiting is not None:
                self._feed_conclusory(waiting[0], waiting[0].record.txn,
                                      waiting[1])
        else:
            result = self._execute(txn)
            self._record_outcome(txn, result)
            self.locks.release_all(lock_txn)
            done(result.committed, result.result)

    # -- general transactions (§7.1) ------------------------------------------
    def _execute_preliminary(self, entry: LogEntry,
                             txn: IndependentTransaction, lock_txn) -> _ExecResult:
        """Reads under locks; writes are installed by the conclusory."""
        values = {}
        ok = True
        for key in sorted(txn.read_keys | txn.write_keys, key=repr):
            if self._owns(key):
                values[key] = self.store.get(key)
        expected = txn.args.get("expected") or {}
        for key, expected_value in expected.items():
            if self._owns(key) and values.get(key) != expected_value:
                ok = False  # reconnaissance results went stale (§7.1)
        self.pending_generals[txn.txn_id] = PendingGeneral(
            gtid=txn.txn_id,
            participants=txn.participants,
            granted_at=self._clock(),
        )
        # Remember the lock handle under the gtid for release at the
        # conclusory; LockManager keys grants by lock_txn.
        self.pending_generals[txn.txn_id].values["__lock_txn__"] = lock_txn
        return _ExecResult(committed=ok,
                           result={"ok": ok, "values": values})

    def _feed_conclusory(self, entry: LogEntry, txn: IndependentTransaction,
                         done: DoneCallback) -> None:
        gtid = txn.args["gtid"]
        if gtid in self._queued_prelims:
            # The preliminary is still waiting for locks; the conclusory
            # must execute after it (log order guarantees we only get
            # here with the preliminary already fed).
            self._waiting_conclusory[gtid] = (entry, done)
            return
        pending = self.pending_generals.pop(gtid, None)
        if pending is None:
            # Already concluded (duplicate conclusory, or the DL's
            # unilateral abort raced the client's commit, §7.2). The
            # first conclusory in the log won; this one is a no-op.
            self._record_outcome(txn, _ExecResult(False, "already concluded"))
            done(False, "already concluded")
            return
        committed = bool(txn.args.get("commit", False))
        if committed:
            for key, value in txn.args.get("writes", {}).items():
                if self._owns(key):
                    self.store.put(key, value)
        lock_txn = pending.values.get("__lock_txn__")
        if lock_txn is not None:
            self.locks.release_all(lock_txn)
        result = _ExecResult(committed, {"ok": committed})
        self._record_outcome(txn, result)
        done(result.committed, result.result)

    # -- plain execution ----------------------------------------------------
    def _run_and_finish(self, entry: LogEntry, txn: IndependentTransaction,
                        done: DoneCallback) -> None:
        result = self._execute(txn)
        self._record_outcome(txn, result)
        done(result.committed, result.result)

    def _execute(self, txn: IndependentTransaction) -> _ExecResult:
        undo = UndoLog()
        ctx = TxnContext(self.store, shard=self.shard, owns=self._owns,
                         undo=undo)
        try:
            result = self.registry.execute(txn.proc, ctx, txn.args)
        except TransactionAborted as abort:
            # Deterministic abort: every participant reaches the same
            # decision from the same arguments and replicated data.
            undo.rollback(self.store)
            return _ExecResult(committed=False, result=abort.reason)
        self.executed_entries += 1
        return _ExecResult(committed=True, result=result)

    def _record_outcome(self, txn: IndependentTransaction,
                        result: _ExecResult) -> None:
        self.client_table.setdefault(txn.txn_id.client, {})[
            txn.txn_id.seq] = result
