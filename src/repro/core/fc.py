"""The Failure Coordinator (§6.3, §6.5).

The FC is the off-normal-path service that makes two kinds of global
decisions:

- **Drop agreement** — on a FIND-TXN it broadcasts TXN-REQUEST to every
  replica of every shard and waits for either one HAS-TXN (the
  transaction survives: TXN-FOUND to all participants) or a
  view-consistent quorum of TEMP-DROPPED-TXN promises from *every*
  shard (the slot is permanently dropped: TXN-DROPPED to everyone).
  Decisions are remembered forever: a HAS-TXN arriving after a drop
  decision is answered with the drop (§6.3 step 4).

- **Epoch change** — it collects state-plus-promise from a majority of
  every shard, rebuilds each shard's log (highest view; longest log;
  cross-shard completion so no shard knows a transaction that a
  participant's new log omits; previously-dropped slots as NO-OPs), and
  retransmits START-EPOCH until a majority of each shard acks.

The paper replicates the FC "using standard means"; because it is only
ever touched on failure paths, we run it as one logically centralized
service node (see DESIGN.md) and focus testing on the recovery logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.log import LogEntry
from repro.core.messages import (
    EpochChangeReq,
    EpochState,
    EpochStateRequest,
    FindTxn,
    HasTxn,
    StartEpoch,
    StartEpochAck,
    TempDroppedTxn,
    TxnDropped,
    TxnFound,
    TxnRecord,
    TxnRequestMsg,
)
from repro.core.quorum import ViewConsistentQuorum
from repro.core.transaction import SlotId
from repro.net.endpoint import Node
from repro.net.message import Address, GroupId, Packet
from repro.net.network import Network


@dataclass
class _FindState:
    slot: SlotId
    quorums: dict[GroupId, ViewConsistentQuorum]
    requesters: set[Address] = field(default_factory=set)
    timer: object = None


@dataclass
class _EpochChange:
    new_epoch: int
    responses: dict[GroupId, dict[Address, EpochState]] = \
        field(default_factory=dict)
    started: bool = False
    start_msgs: dict[GroupId, StartEpoch] = field(default_factory=dict)
    acks: dict[GroupId, set[Address]] = field(default_factory=dict)
    timer: object = None


class FailureCoordinator(Node):
    """Coordinates packet-drop agreement and epoch changes."""

    def __init__(self, address: Address, network: Network,
                 shards: dict[GroupId, list[Address]],
                 retry_timeout: float = 10e-3):
        super().__init__(address, network)
        self.shards = {shard: list(addrs) for shard, addrs in shards.items()}
        self.retry_timeout = retry_timeout
        self.found: dict[SlotId, TxnRecord] = {}
        self.dropped: set[SlotId] = set()
        self._finds: dict[SlotId, _FindState] = {}
        self._epoch_changes: dict[int, _EpochChange] = {}
        self.max_epoch_started = 1
        self.drops_decided = 0
        self.finds_resolved = 0
        self.epoch_changes_completed = 0

    # -- observability ----------------------------------------------------
    def _trace(self, kind: str, **data) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.record(kind, self.address, **data)

    def instrument(self, registry) -> None:
        """Register the FC's live counters as pull-gauges."""
        registry.gauge("fc", "finds_resolved", fn=lambda: self.finds_resolved,
                       monotone=True)
        registry.gauge("fc", "drops_decided", fn=lambda: self.drops_decided,
                       monotone=True)
        registry.gauge("fc", "epoch_changes_completed",
                       fn=lambda: self.epoch_changes_completed,
                       monotone=True)
        registry.gauge("fc", "messages_processed",
                       fn=lambda: self.messages_processed, monotone=True)

    # -- helpers ----------------------------------------------------------
    def _all_replicas(self) -> list[Address]:
        return [addr for addrs in self.shards.values() for addr in addrs]

    def _participants_of(self, record: TxnRecord) -> list[Address]:
        out = []
        for gid in record.multistamp.groups:
            out.extend(self.shards.get(gid, []))
        return out

    # -- drop agreement (§6.3) -------------------------------------------------
    def on_FindTxn(self, src: Address, msg: FindTxn, packet: Packet) -> None:
        slot = msg.slot
        if slot in self.dropped:
            self.send(src, TxnDropped(slot=slot))
            return
        if slot in self.found:
            self.send(src, TxnFound(slot=slot, record=self.found[slot]))
            return
        state = self._finds.get(slot)
        if state is not None:
            state.requesters.add(src)
            return
        state = _FindState(
            slot=slot,
            quorums={shard: ViewConsistentQuorum(len(addrs))
                     for shard, addrs in self.shards.items()},
            requesters={src},
        )
        self._finds[slot] = state
        self._broadcast_txn_request(slot)
        state.timer = self.timer(self.retry_timeout,
                                 self._retry_find, slot)
        state.timer.start()

    def _broadcast_txn_request(self, slot: SlotId) -> None:
        for addr in self._all_replicas():
            self.send(addr, TxnRequestMsg(slot=slot))

    def _retry_find(self, slot: SlotId) -> None:
        state = self._finds.get(slot)
        if state is None:
            return
        self._broadcast_txn_request(slot)
        state.timer.start()

    def on_HasTxn(self, src: Address, msg: HasTxn, packet: Packet) -> None:
        slot = msg.slot
        if slot in self.dropped:
            # Drop decisions are final (§6.3 step 4): a late HAS-TXN
            # cannot resurrect the transaction.
            self.send(src, TxnDropped(slot=slot))
            return
        if slot not in self.found:
            self.found[slot] = msg.record
            self.finds_resolved += 1
            self._trace("fc_found", slot=[slot.shard, slot.epoch, slot.seq],
                        reporter=src)
        self._finish_find(slot, TxnFound(slot=slot, record=self.found[slot]),
                          self._participants_of(self.found[slot]))

    def on_TempDroppedTxn(self, src: Address, msg: TempDroppedTxn,
                          packet: Packet) -> None:
        slot = msg.slot
        if slot in self.dropped:
            self.send(src, TxnDropped(slot=slot))
            return
        if slot in self.found:
            self.send(src, TxnFound(slot=slot, record=self.found[slot]))
            return
        state = self._finds.get(slot)
        if state is None:
            return
        quorum = state.quorums.get(msg.shard)
        if quorum is None:
            return
        quorum.add((msg.epoch_num, msg.view_num), msg.replica_index,
                   msg.is_dl)
        if all(q.satisfied() is not None for q in state.quorums.values()):
            self.dropped.add(slot)
            self.drops_decided += 1
            self._trace("fc_dropped",
                        slot=[slot.shard, slot.epoch, slot.seq])
            self._finish_find(slot, TxnDropped(slot=slot),
                              self._all_replicas())

    def _finish_find(self, slot: SlotId, decision, recipients) -> None:
        state = self._finds.pop(slot, None)
        extra = state.requesters if state is not None else set()
        if state is not None and state.timer is not None:
            state.timer.stop()
        for addr in set(recipients) | extra:
            self.send(addr, decision)

    # -- epoch change (§6.5) --------------------------------------------------
    def on_EpochChangeReq(self, src: Address, msg: EpochChangeReq,
                          packet: Packet) -> None:
        self._begin_epoch_change(msg.new_epoch)

    def _begin_epoch_change(self, new_epoch: int) -> None:
        if new_epoch <= self.max_epoch_started:
            # Already completed (or superseded); retransmit START-EPOCH
            # if we have it so slow replicas converge.
            change = self._epoch_changes.get(new_epoch)
            if change is not None and change.started:
                self._retransmit_start_epoch(new_epoch)
            return
        if new_epoch in self._epoch_changes:
            return
        change = _EpochChange(new_epoch=new_epoch)
        self._epoch_changes[new_epoch] = change
        self._trace("fc_epoch_collect", epoch=new_epoch)
        self._broadcast_state_request(new_epoch)
        change.timer = self.timer(self.retry_timeout,
                                  self._retry_epoch_change, new_epoch)
        change.timer.start()

    def _broadcast_state_request(self, new_epoch: int) -> None:
        for addr in self._all_replicas():
            self.send(addr, EpochStateRequest(new_epoch=new_epoch))

    def _retry_epoch_change(self, new_epoch: int) -> None:
        change = self._epoch_changes.get(new_epoch)
        if change is None:
            return
        if change.started:
            self._retransmit_start_epoch(new_epoch)
        else:
            self._broadcast_state_request(new_epoch)
        change.timer.start()

    def on_EpochState(self, src: Address, msg: EpochState,
                      packet: Packet) -> None:
        change = self._epoch_changes.get(msg.new_epoch)
        if change is None or change.started:
            return
        change.responses.setdefault(msg.shard, {})[msg.sender] = msg
        if self._epoch_quorum_complete(change):
            self._start_epoch(change)

    def _epoch_quorum_complete(self, change: _EpochChange) -> bool:
        for shard, addrs in self.shards.items():
            responses = change.responses.get(shard, {})
            if len(responses) < len(addrs) // 2 + 1:
                return False
        return True

    def _start_epoch(self, change: _EpochChange) -> None:
        """Rebuild every shard's state for the new epoch (§6.5)."""
        change.started = True
        self.max_epoch_started = max(self.max_epoch_started, change.new_epoch)
        # Cross-shard knowledge: every transaction any replica logged,
        # indexed by each participant's (epoch, seq) slot via its stamp.
        known: dict[SlotId, TxnRecord] = {}
        all_perm_drops: set[SlotId] = set()
        for responses in change.responses.values():
            for state in responses.values():
                all_perm_drops.update(state.perm_drops)
                for entry in state.log:
                    if entry.kind != "txn":
                        continue
                    stamp = entry.record.multistamp
                    for gid, seq in stamp.stamps:
                        known.setdefault(SlotId(gid, stamp.epoch, seq),
                                         entry.record)
        all_perm_drops.update(self.dropped)
        for shard, addrs in self.shards.items():
            responses = change.responses.get(shard, {})
            freshest = max(s.last_normal_epoch for s in responses.values())
            fresh = [s for s in responses.values()
                     if s.last_normal_epoch == freshest]
            view = max(s.view_num for s in fresh)
            base = max((list(s.log) for s in fresh), key=len, default=[])
            new_log = self._complete_log(shard, base, freshest, known,
                                         frozenset(all_perm_drops))
            start = StartEpoch(shard=shard, new_epoch=change.new_epoch,
                               view_num=view, log=tuple(new_log))
            change.start_msgs[shard] = start
            change.acks[shard] = set()
            self._trace("fc_epoch_start", epoch=change.new_epoch,
                        shard=shard, view=view, log_len=len(new_log))
            for addr in addrs:
                self.send(addr, start)
        self.epoch_changes_completed += 1

    def _complete_log(self, shard: GroupId, base: list[LogEntry],
                      epoch: int, known: dict[SlotId, TxnRecord],
                      perm_drops: frozenset) -> list[LogEntry]:
        """Extend the longest log with transactions other shards know
        about, NO-OP the unrecoverable gaps, and apply drop decisions."""
        out: list[LogEntry] = []
        for entry in base:
            if entry.kind == "txn" and self._entry_dropped(entry, perm_drops):
                entry = entry.as_noop()
            out.append(entry)
        last_seq = 0
        for entry in reversed(out):
            if entry.slot.epoch == epoch:
                last_seq = entry.slot.seq
                break
        target = last_seq
        for slot in known:
            if slot.shard == shard and slot.epoch == epoch:
                target = max(target, slot.seq)
        for seq in range(last_seq + 1, target + 1):
            slot = SlotId(shard, epoch, seq)
            record = known.get(slot)
            if record is not None and slot not in perm_drops and \
                    not self._record_dropped(record, perm_drops):
                out.append(LogEntry(index=len(out) + 1, slot=slot,
                                    kind="txn", record=record))
            else:
                out.append(LogEntry(index=len(out) + 1, slot=slot,
                                    kind="noop", record=None))
        return [LogEntry(index=i + 1, slot=e.slot, kind=e.kind,
                         record=e.record) for i, e in enumerate(out)]

    @staticmethod
    def _entry_dropped(entry: LogEntry, perm_drops: frozenset) -> bool:
        stamp = entry.record.multistamp
        return any(SlotId(gid, stamp.epoch, seq) in perm_drops
                   for gid, seq in stamp.stamps)

    @staticmethod
    def _record_dropped(record: TxnRecord, perm_drops: frozenset) -> bool:
        stamp = record.multistamp
        return any(SlotId(gid, stamp.epoch, seq) in perm_drops
                   for gid, seq in stamp.stamps)

    def _retransmit_start_epoch(self, new_epoch: int) -> None:
        change = self._epoch_changes.get(new_epoch)
        if change is None or not change.started:
            return
        for shard, start in change.start_msgs.items():
            pending = [a for a in self.shards[shard]
                       if a not in change.acks.get(shard, set())]
            for addr in pending:
                self.send(addr, start)

    def on_StartEpochAck(self, src: Address, msg: StartEpochAck,
                         packet: Packet) -> None:
        change = self._epoch_changes.get(msg.new_epoch)
        if change is None or not change.started:
            return
        change.acks.setdefault(msg.shard, set()).add(src)
        done = all(
            len(change.acks.get(shard, ())) >= len(addrs) // 2 + 1
            for shard, addrs in self.shards.items()
        )
        if done and change.timer is not None:
            change.timer.stop()
