"""View-consistent quorum tracking (§6.2).

A *view-consistent quorum* for a shard is a majority of its replicas
whose responses match on a key — for client replies the key is
(epoch-num, view-num, txn-index) — **including the Designated Learner
of that view**. The same machinery checks the FC's TEMP-DROPPED-TXN
quorums (§6.3, keyed on (epoch-num, view-num)).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional


class ViewConsistentQuorum:
    """Counts matching responses for one shard until a quorum forms."""

    def __init__(self, n_replicas: int):
        self.n_replicas = n_replicas
        self._responses: dict[Hashable, dict[int, Any]] = {}

    @property
    def majority(self) -> int:
        return self.n_replicas // 2 + 1

    def add(self, key: Hashable, replica_index: int, is_dl: bool,
            payload: Any = None) -> None:
        """Record one replica's response under a match key. ``is_dl``
        responses are tracked so quorums without the DL never satisfy."""
        group = self._responses.setdefault(key, {})
        group[replica_index] = (is_dl, payload)

    def satisfied(self) -> Optional[Hashable]:
        """The first key with a majority including the DL, else None."""
        for key, group in self._responses.items():
            if len(group) >= self.majority and any(
                is_dl for is_dl, _ in group.values()
            ):
                return key
        return None

    def payloads(self, key: Hashable) -> dict[int, Any]:
        """replica_index → payload for responses matching ``key``."""
        return {idx: payload
                for idx, (_, payload) in self._responses.get(key, {}).items()}

    def dl_payload(self, key: Hashable) -> Any:
        for is_dl, payload in self._responses.get(key, {}).values():
            if is_dl:
                return payload
        return None

    def clear(self) -> None:
        self._responses.clear()
