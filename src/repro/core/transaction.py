"""Transaction identities and the independent-transaction record.

An *independent transaction* (§4.1) is a one-shot stored procedure
executed atomically on a set of participant shards, with no cross-shard
data dependencies and a deterministic local commit/abort decision. It
is the unit the Eris protocol sequences and the building block general
transactions are made from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.net.message import GroupId


@dataclass(frozen=True, order=True)
class TxnId:
    """At-most-once identity: (client address, client sequence number)."""

    client: str
    seq: int

    def label(self) -> str:
        """Stable flat-JSON transaction label used by trace events and
        the span builder ("client:seq")."""
        return f"{self.client}:{self.seq}"


@dataclass(frozen=True, order=True)
class SlotId:
    """The paper's txn-id triple used by the FC protocol: the position
    a message was assigned in one shard's sequence space."""

    shard: GroupId
    epoch: int
    seq: int


@dataclass(frozen=True)
class IndependentTransaction:
    """A one-shot stored-procedure invocation across ``participants``.

    ``read_keys``/``write_keys`` are the (globally keyed) declared
    access sets; each shard filters them by ownership. They are used
    only when the general-transaction layer has locks outstanding —
    pure independent-transaction workloads never consult them.

    ``kind`` distinguishes ordinary independent transactions from the
    preliminary/conclusory halves of general transactions (§7.1).

    ``op_class`` carries the invoked procedure's declared
    :class:`repro.store.procedures.OpClass` to the sequencing element
    and the replicas: ``read_only`` transactions are candidates for the
    dirty-set read fast path, ``commutative`` ones for relaxed in-epoch
    ordering. ``generic`` (the default) always takes the full path.
    """

    txn_id: TxnId
    proc: str
    args: dict
    participants: tuple[GroupId, ...]
    read_keys: frozenset = frozenset()
    write_keys: frozenset = frozenset()
    kind: str = "independent"  # independent | preliminary | conclusory
    op_class: str = "generic"  # generic | commutative | read_only

    def __post_init__(self) -> None:
        if not self.participants:
            raise ValueError("transaction must have at least one participant")
        if len(set(self.participants)) != len(self.participants):
            raise ValueError(f"duplicate participants: {self.participants}")
        if self.op_class not in ("generic", "commutative", "read_only"):
            raise ValueError(f"unknown op_class: {self.op_class!r}")
        if self.op_class == "read_only" and self.write_keys:
            raise ValueError(
                "read_only transaction declares write keys: "
                f"{sorted(self.write_keys, key=repr)}")
        if self.op_class != "generic" and self.kind != "independent":
            raise ValueError(
                f"{self.kind} transactions must be generic, "
                f"got {self.op_class!r}")

    @property
    def is_distributed(self) -> bool:
        return len(self.participants) > 1

    def keys_on(self, owns) -> tuple[frozenset, frozenset]:
        """(read, write) keys this shard owns, per the partition
        predicate ``owns``."""
        reads = frozenset(k for k in self.read_keys if owns(k))
        writes = frozenset(k for k in self.write_keys if owns(k))
        return reads, writes


def make_txn_key(keys) -> frozenset:
    """Normalize an iterable of keys into a frozenset (helper for
    workload generators)."""
    return frozenset(keys)
