"""Transaction identities and the independent-transaction record.

An *independent transaction* (§4.1) is a one-shot stored procedure
executed atomically on a set of participant shards, with no cross-shard
data dependencies and a deterministic local commit/abort decision. It
is the unit the Eris protocol sequences and the building block general
transactions are made from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.net.message import GroupId


@dataclass(frozen=True, order=True)
class TxnId:
    """At-most-once identity: (client address, client sequence number)."""

    client: str
    seq: int

    def label(self) -> str:
        """Stable flat-JSON transaction label used by trace events and
        the span builder ("client:seq")."""
        return f"{self.client}:{self.seq}"


@dataclass(frozen=True, order=True)
class SlotId:
    """The paper's txn-id triple used by the FC protocol: the position
    a message was assigned in one shard's sequence space."""

    shard: GroupId
    epoch: int
    seq: int


@dataclass(frozen=True)
class IndependentTransaction:
    """A one-shot stored-procedure invocation across ``participants``.

    ``read_keys``/``write_keys`` are the (globally keyed) declared
    access sets; each shard filters them by ownership. They are used
    only when the general-transaction layer has locks outstanding —
    pure independent-transaction workloads never consult them.

    ``kind`` distinguishes ordinary independent transactions from the
    preliminary/conclusory halves of general transactions (§7.1).
    """

    txn_id: TxnId
    proc: str
    args: dict
    participants: tuple[GroupId, ...]
    read_keys: frozenset = frozenset()
    write_keys: frozenset = frozenset()
    kind: str = "independent"  # independent | preliminary | conclusory

    def __post_init__(self) -> None:
        if not self.participants:
            raise ValueError("transaction must have at least one participant")
        if len(set(self.participants)) != len(self.participants):
            raise ValueError(f"duplicate participants: {self.participants}")

    @property
    def is_distributed(self) -> bool:
        return len(self.participants) > 1

    def keys_on(self, owns) -> tuple[frozenset, frozenset]:
        """(read, write) keys this shard owns, per the partition
        predicate ``owns``."""
        reads = frozenset(k for k in self.read_keys if owns(k))
        writes = frozenset(k for k in self.write_keys if owns(k))
        return reads, writes


def make_txn_key(keys) -> frozenset:
    """Normalize an iterable of keys into a frozenset (helper for
    workload generators)."""
    return frozenset(keys)
