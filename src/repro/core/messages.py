"""Wire messages of the Eris protocol (Sections 6.2–6.6).

Message names follow the paper: REPLY, FIND-TXN, TXN-REQUEST, HAS-TXN,
TEMP-DROPPED-TXN, TXN-FOUND, TXN-DROPPED, VIEW-CHANGE, START-VIEW,
EPOCH-CHANGE-REQ, START-EPOCH, plus the synchronization messages of
§6.6 and the intra-shard peer-recovery optimization of §6.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.net.message import Address, GroupId, MultiStamp


# -- normal case (§6.2) --------------------------------------------------

@dataclass(frozen=True)
class IndependentTxnRequest:
    """Client → shards, via multi-sequenced groupcast."""

    txn: IndependentTransaction


@dataclass(frozen=True)
class TxnReply:
    """Replica → client. Only the DL carries an execution result."""

    txn_id: TxnId
    txn_index: int
    view_num: int
    epoch_num: int
    shard: GroupId
    replica_index: int
    is_dl: bool
    committed: bool = True
    result: Any = None


@dataclass(frozen=True)
class TxnReplyBatch:
    """Replica → client: several coalesced replies in one message.

    Emitted only when reply coalescing is enabled
    (:attr:`~repro.core.replica.ErisConfig.reply_coalesce` > 1); the
    client unpacks it into individual :class:`TxnReply` deliveries, so
    quorum accounting is unchanged."""

    replies: tuple[TxnReply, ...]


# -- drop recovery (§6.3) ----------------------------------------------

@dataclass(frozen=True)
class PeerTxnRequest:
    """Replica → same-shard peers: do you have my missing message?"""

    slot: SlotId
    sender: Address


@dataclass(frozen=True)
class PeerTxnResponse:
    """Positive answers carry the logged transaction and its stamp;
    ``entry=None`` means 'I do not have it either'. ``dropped`` reports
    that this peer already knows the slot was permanently dropped."""

    slot: SlotId
    entry: Optional["TxnRecord"]
    sender: Address
    dropped: bool = False


@dataclass(frozen=True)
class TxnRecord:
    """A transaction plus the multi-stamp it was sequenced with —
    enough for any other node to slot it into its own log."""

    txn: Optional[IndependentTransaction]
    multistamp: MultiStamp


@dataclass(frozen=True)
class FindTxn:
    """Replica → FC: recover (or drop) the message at ``slot``."""

    slot: SlotId
    sender: Address


@dataclass(frozen=True)
class TxnRequestMsg:
    """FC → all replicas of all shards."""

    slot: SlotId


@dataclass(frozen=True)
class HasTxn:
    """Replica → FC: here is the transaction matching the slot."""

    slot: SlotId
    record: TxnRecord
    sender: Address


@dataclass(frozen=True)
class TempDroppedTxn:
    """Replica → FC: a drop promise; the replica cedes the slot's fate
    to the FC."""

    slot: SlotId
    shard: GroupId
    view_num: int
    epoch_num: int
    sender: Address
    replica_index: int
    is_dl: bool


@dataclass(frozen=True)
class TxnFound:
    """FC → participants: the transaction was recovered."""

    slot: SlotId
    record: TxnRecord


@dataclass(frozen=True)
class TxnDropped:
    """FC → all replicas: the slot is permanently dropped."""

    slot: SlotId


# -- view change (§6.4) ----------------------------------------------

@dataclass(frozen=True)
class ViewChange:
    """Replica → prospective DL of ``new_view``."""

    shard: GroupId
    new_view: int
    epoch_num: int
    log: tuple            # tuple[LogEntry-as-record, ...]
    temp_drops: frozenset
    perm_drops: frozenset
    un_drops: frozenset
    sender: Address


@dataclass(frozen=True)
class StartView:
    """New DL → shard replicas: adopt this state."""

    shard: GroupId
    view_num: int
    epoch_num: int
    log: tuple
    temp_drops: frozenset
    perm_drops: frozenset
    un_drops: frozenset


# -- epoch change (§6.5) ----------------------------------------------

@dataclass(frozen=True)
class EpochChangeReq:
    """Replica → FC: a NEW-EPOCH notification arrived."""

    shard: GroupId
    new_epoch: int
    sender: Address


@dataclass(frozen=True)
class EpochStateRequest:
    """FC → all replicas: send state, promise to reject older epochs."""

    new_epoch: int


@dataclass(frozen=True)
class EpochState:
    """Replica → FC: current state plus the promise."""

    shard: GroupId
    new_epoch: int
    last_normal_epoch: int
    view_num: int
    log: tuple
    perm_drops: frozenset
    sender: Address


@dataclass(frozen=True)
class StartEpoch:
    """FC → replicas of one shard: the shard's state in the new epoch."""

    shard: GroupId
    new_epoch: int
    view_num: int
    log: tuple


@dataclass(frozen=True)
class StartEpochAck:
    shard: GroupId
    new_epoch: int
    sender: Address


# -- reconnaissance queries (§7.1) ---------------------------------------

@dataclass(frozen=True)
class ReconRead:
    """Client → replica: single-message, non-transactional read used to
    discover the read/write sets of state-dependent transactions."""

    key: Any


@dataclass(frozen=True)
class ReconReply:
    key: Any
    value: Any


# -- synchronization (§6.6) ---------------------------------------------

@dataclass(frozen=True)
class SyncLog:
    """DL → replica: log suffix plus the safe-to-execute point. Doubles
    as the DL liveness heartbeat."""

    shard: GroupId
    view_num: int
    epoch_num: int
    from_index: int       # 1-based index of entries[0] in the DL's log
    entries: tuple
    commit_upto: int


@dataclass(frozen=True)
class SyncAck:
    shard: GroupId
    view_num: int
    epoch_num: int
    log_len: int
    sender: Address
