"""Wire messages of the Eris protocol (Sections 6.2–6.6).

Message names follow the paper: REPLY, FIND-TXN, TXN-REQUEST, HAS-TXN,
TEMP-DROPPED-TXN, TXN-FOUND, TXN-DROPPED, VIEW-CHANGE, START-VIEW,
EPOCH-CHANGE-REQ, START-EPOCH, plus the synchronization messages of
§6.6 and the intra-shard peer-recovery optimization of §6.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.net.message import Address, GroupId, MultiStamp


# -- normal case (§6.2) --------------------------------------------------

@dataclass(frozen=True)
class IndependentTxnRequest:
    """Client → shards, via multi-sequenced groupcast."""

    txn: IndependentTransaction


@dataclass(frozen=True)
class TxnReply:
    """Replica → client. Only the DL carries an execution result."""

    txn_id: TxnId
    txn_index: int
    view_num: int
    epoch_num: int
    shard: GroupId
    replica_index: int
    is_dl: bool
    committed: bool = True
    result: Any = None


@dataclass(frozen=True)
class TxnReplyBatch:
    """Replica → client: several coalesced replies in one message.

    Emitted only when reply coalescing is enabled
    (:attr:`~repro.core.replica.ErisConfig.reply_coalesce` > 1); the
    client unpacks it into individual :class:`TxnReply` deliveries, so
    quorum accounting is unchanged."""

    replies: tuple[TxnReply, ...]


# -- drop recovery (§6.3) ----------------------------------------------

@dataclass(frozen=True)
class PeerTxnRequest:
    """Replica → same-shard peers: do you have my missing message?"""

    slot: SlotId
    sender: Address


@dataclass(frozen=True)
class PeerTxnResponse:
    """Positive answers carry the logged transaction and its stamp;
    ``entry=None`` means 'I do not have it either'. ``dropped`` reports
    that this peer already knows the slot was permanently dropped."""

    slot: SlotId
    entry: Optional["TxnRecord"]
    sender: Address
    dropped: bool = False


@dataclass(frozen=True)
class TxnRecord:
    """A transaction plus the multi-stamp it was sequenced with —
    enough for any other node to slot it into its own log."""

    txn: Optional[IndependentTransaction]
    multistamp: MultiStamp


@dataclass(frozen=True)
class FindTxn:
    """Replica → FC: recover (or drop) the message at ``slot``."""

    slot: SlotId
    sender: Address


@dataclass(frozen=True)
class TxnRequestMsg:
    """FC → all replicas of all shards."""

    slot: SlotId


@dataclass(frozen=True)
class HasTxn:
    """Replica → FC: here is the transaction matching the slot."""

    slot: SlotId
    record: TxnRecord
    sender: Address


@dataclass(frozen=True)
class TempDroppedTxn:
    """Replica → FC: a drop promise; the replica cedes the slot's fate
    to the FC."""

    slot: SlotId
    shard: GroupId
    view_num: int
    epoch_num: int
    sender: Address
    replica_index: int
    is_dl: bool


@dataclass(frozen=True)
class TxnFound:
    """FC → participants: the transaction was recovered."""

    slot: SlotId
    record: TxnRecord


@dataclass(frozen=True)
class TxnDropped:
    """FC → all replicas: the slot is permanently dropped."""

    slot: SlotId


# -- view change (§6.4) ----------------------------------------------

@dataclass(frozen=True)
class ViewChange:
    """Replica → prospective DL of ``new_view``."""

    shard: GroupId
    new_view: int
    epoch_num: int
    log: tuple            # tuple[LogEntry-as-record, ...]
    temp_drops: frozenset
    perm_drops: frozenset
    un_drops: frozenset
    sender: Address


@dataclass(frozen=True)
class StartView:
    """New DL → shard replicas: adopt this state."""

    shard: GroupId
    view_num: int
    epoch_num: int
    log: tuple
    temp_drops: frozenset
    perm_drops: frozenset
    un_drops: frozenset


# -- epoch change (§6.5) ----------------------------------------------

@dataclass(frozen=True)
class EpochChangeReq:
    """Replica → FC: a NEW-EPOCH notification arrived."""

    shard: GroupId
    new_epoch: int
    sender: Address


@dataclass(frozen=True)
class EpochStateRequest:
    """FC → all replicas: send state, promise to reject older epochs."""

    new_epoch: int


@dataclass(frozen=True)
class EpochState:
    """Replica → FC: current state plus the promise."""

    shard: GroupId
    new_epoch: int
    last_normal_epoch: int
    view_num: int
    log: tuple
    perm_drops: frozenset
    sender: Address


@dataclass(frozen=True)
class StartEpoch:
    """FC → replicas of one shard: the shard's state in the new epoch."""

    shard: GroupId
    new_epoch: int
    view_num: int
    log: tuple


@dataclass(frozen=True)
class StartEpochAck:
    shard: GroupId
    new_epoch: int
    sender: Address


# -- reconnaissance queries (§7.1) ---------------------------------------

@dataclass(frozen=True)
class ReconRead:
    """Client → replica: single-message, non-transactional read used to
    discover the read/write sets of state-dependent transactions."""

    key: Any


@dataclass(frozen=True)
class ReconReply:
    key: Any
    value: Any


# -- synchronization (§6.6) ---------------------------------------------

@dataclass(frozen=True)
class SyncLog:
    """DL → replica: log suffix plus the safe-to-execute point. Doubles
    as the DL liveness heartbeat."""

    shard: GroupId
    view_num: int
    epoch_num: int
    from_index: int       # 1-based index of entries[0] in the DL's log
    entries: tuple
    commit_upto: int


@dataclass(frozen=True)
class SyncAck:
    shard: GroupId
    view_num: int
    epoch_num: int
    log_len: int
    sender: Address


# -- coordination-free fast paths ----------------------------------------

@dataclass(frozen=True)
class CommutativeTxnRequest:
    """Sequencer-rewritten envelope for a COMMUTATIVE transaction.

    The sequencing element wraps the client's
    :class:`IndependentTxnRequest` and attaches, per participant group,
    the sequence number of the last *non-commutative* message it
    stamped for that group (the reorder **barrier**). A replica that is
    stalled on an ordering gap may execute the wrapped transaction
    early — ahead of log order — once its in-order delivery point has
    passed the barrier, because every skipped slot is then known to be
    commutative with it. Log append and the client reply still happen
    strictly in slot order.
    """

    txn: IndependentTransaction
    #: ((group, barrier_seq), ...) aligned with the stamp's groups.
    barriers: tuple = ()


@dataclass(frozen=True)
class AppliedUpto:
    """Replica → sequencing element: execution watermark (dirty-set
    clear rule).

    Sent as an *unstamped* sequenced groupcast so it is routed to
    whatever element currently stamps for the shard (the plain
    sequencer, a standby after failover, or the chain head), which
    absorbs it without assigning a sequence number. ``upto`` is the
    highest sequence number of ``epoch`` this replica has fed to its
    execution engine; because logs are epoch-monotone and in-epoch
    sequence numbers are contiguous, one (epoch, seq) pair summarizes
    the whole applied prefix.
    """

    shard: GroupId
    epoch: int
    upto: int
    sender: Address


@dataclass(frozen=True)
class FastReadRequest:
    """Sequencing element → one replica: serve a clean READ_ONLY
    transaction without stamping it (Harmonia-style fast read).

    Only sent when the dirty-set check passed: every in-flight write
    conflicting with ``txn.read_keys`` has been applied by *all*
    replicas of the shard, so any single replica's store already
    reflects every committed conflicting write. ``min_epoch`` is the
    sequencer's epoch at check time; a replica that has not reached it
    must not serve the read.
    """

    txn: IndependentTransaction
    min_epoch: int


@dataclass(frozen=True)
class FastReadReply:
    """Replica → client: result of a fast read. A single reply
    completes the transaction — no quorum is collected."""

    txn_id: TxnId
    shard: GroupId
    committed: bool
    result: Any
    #: The serving replica's applied watermark when it executed the
    #: read (its serialization point, recorded for the §6.7 checkers).
    epoch_num: int
    applied_seq: int
