"""End-to-end smoke run of Eris over real UDP loopback sockets.

Builds the same Eris deployment the simulator experiments use — shards,
replica groups, multi-sequencer, SDN controller, FC — but on the
:class:`repro.runtime.asyncio_udp.AsyncioUdpRuntime` backend, drives a
short closed-loop YCSB workload across real sockets, and then runs the
§6.7 invariant checkers on the finished cluster. The protocol classes
are byte-for-byte the ones the simulator runs; only the runtime
differs. Used by ``python -m repro udpsmoke`` and the CI smoke job.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.common import OpResult, WorkloadOp
from repro.core.replica import ErisConfig
from repro.errors import ExperimentError, InvariantViolation
from repro.harness.checkers import run_all_checks
from repro.harness.cluster import Cluster, ClusterConfig, build_cluster
from repro.net.controller import ControllerConfig
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.sampler import MetricsSampler
from repro.obs.trace import Tracer
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import Partitioner, register_ycsb_procedures
from repro.workloads.counters import (
    CountersConfig,
    CountersWorkload,
    load_counters,
    register_counters_procedures,
)
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, load_ycsb


#: Protocol timers rescaled from simulated microseconds to real
#: milliseconds: loopback RTTs are tens of microseconds, but Python
#: callback scheduling is not, so everything gets generous headroom.
_UDP_ERIS = dict(sync_interval=20e-3, view_change_timeout=500e-3,
                 drop_detection_delay=5e-3, peer_recovery_timeout=50e-3,
                 fc_retry_timeout=100e-3, general_abort_timeout=500e-3,
                 execution_cost=0.0)
_UDP_CONTROLLER = dict(ping_interval=50e-3, failure_threshold=3,
                       reroute_delay=100e-3)


@dataclass
class SmokeResult:
    committed: int
    aborted: int
    retries: int
    wall_seconds: float
    packets_sent: int
    packets_delivered: int
    #: Encoded frames vs datagrams actually written: with EWCB batching
    #: on, frames_sent > datagrams_sent measures the packing ratio.
    frames_sent: int = 0
    datagrams_sent: int = 0
    checks_passed: bool = True
    notes: list[str] = field(default_factory=list)
    #: Observability outputs (None when the corresponding feature was
    #: off or nothing was written).
    trace_path: Optional[str] = None
    trace_events: int = 0
    metrics_path: Optional[str] = None
    metrics_samples: int = 0
    recorder_dump: Optional[str] = None
    #: OS processes that participated (1 = single-process; a
    #: multi-process run counts the driver plus every worker).
    processes: int = 1
    run_dir: Optional[str] = None


def smoke_cluster_config(n_shards: int = 2, n_replicas: int = 3,
                         seed: int = 7, chain: int = 0,
                         wire: str = "ewc1", batch: int = 1,
                         fast_path: bool = False) -> ClusterConfig:
    """The canonical UDP-smoke :class:`ClusterConfig`.

    Shared between the single-process path (:func:`build_udp_cluster`)
    and the per-node workers of a multi-process run — every process
    must derive the identical config so address names, group
    membership, and protocol timers agree across the cluster.

    ``fast_path`` turns on both coordination-free knobs (Harmonia fast
    reads + commutative early apply); replicas report execution
    watermarks on their sync cadence."""
    from repro.net.network import NetConfig
    return ClusterConfig(
        system="eris", backend="udp", n_shards=n_shards,
        n_replicas=n_replicas, seed=seed,
        # Real sockets cost real CPU; the simulator's synthetic
        # service-time model would only double-charge it.
        server_service_time=0.0, execution_cost=0.0,
        client_retry_timeout=100e-3,
        sequencer_chain=chain,
        net=NetConfig(wire=wire),
        sequencer_batch=batch, chain_pipeline=batch,
        udp_batch_frames=batch,
        read_fast_path=fast_path, commutative_apply=fast_path,
        eris=ErisConfig(reply_coalesce=batch, **_UDP_ERIS),
        controller=ControllerConfig(**_UDP_CONTROLLER),
    )


def build_udp_cluster(n_shards: int = 2, n_replicas: int = 3,
                      n_keys: int = 200, seed: int = 7, chain: int = 0,
                      wire: str = "ewc1", batch: int = 1,
                      counters: bool = False,
                      fast_path: bool = False) -> Cluster:
    """An Eris cluster on the asyncio-UDP runtime, keys loaded.

    ``wire`` selects the frame codec (ewc1/ewc2); ``batch > 1`` turns
    on the whole batching stack at that depth — sequencer stamp
    batching, chain forward pipelining, replica reply coalescing, and
    EWCB datagram packing; ``chain`` fronts the system with an N-node
    chain-replicated sequencer as in the simulator experiments.
    ``counters`` registers/loads the coordination-free counters
    workload instead of YCSB; ``fast_path`` turns on both
    coordination-free knobs."""
    registry = ProcedureRegistry()
    if counters:
        register_counters_procedures(registry)
        loader = lambda stores, p: load_counters(stores, p, n_keys)  # noqa: E731
    else:
        register_ycsb_procedures(registry)
        loader = lambda stores, p: load_ycsb(stores, p, n_keys)  # noqa: E731
    partitioner = Partitioner(n_shards)
    config = smoke_cluster_config(n_shards=n_shards,
                                  n_replicas=n_replicas, seed=seed,
                                  chain=chain, wire=wire, batch=batch,
                                  fast_path=fast_path)
    return build_cluster(config, registry, partitioner, loader=loader)


class GracefulInterrupt:
    """Flag-based SIGINT/SIGTERM handling for real-socket runs.

    A first signal sets :attr:`triggered` — the run loop notices, stops
    issuing work, drains, and still exports the recorder, metrics, and
    trace before exiting. A second SIGINT falls through to the default
    handler (KeyboardInterrupt) so a wedged run can be killed. Use as a
    context manager; previous handlers are restored on exit."""

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)):
        self.signals = signals
        self.triggered: Optional[str] = None
        self._previous: dict = {}

    def _handle(self, signum: int, _frame) -> None:
        if self.triggered is not None and signum == signal.SIGINT:
            raise KeyboardInterrupt
        self.triggered = signal.Signals(signum).name

    def __enter__(self) -> "GracefulInterrupt":
        for sig in self.signals:
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except ValueError:
                # Not the main thread (e.g. pytest-xdist worker):
                # interruption handling is a no-op there.
                pass
        return self

    def __exit__(self, *_exc) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)


def run_udp_smoke(n_shards: int = 2, n_replicas: int = 3,
                  n_clients: int = 4, min_commits: int = 50,
                  timeout: float = 30.0, workload: str = "mrmw",
                  distributed_fraction: float = 0.5, n_keys: int = 200,
                  seed: int = 7, check: bool = True, chain: int = 0,
                  wire: str = "ewc1", batch: int = 1,
                  fast_path: bool = False,
                  trace_path: Optional[str] = None,
                  metrics_path: Optional[str] = None,
                  metrics_interval: float = 0.05,
                  recorder_path: str = "flight-recorder.jsonl",
                  recorder_capacity: int = DEFAULT_CAPACITY,
                  _inject_fault: Optional[Callable[[Cluster], None]] = None,
                  ) -> SmokeResult:
    """Run the loopback smoke test; raises on invariant violations or
    if fewer than ``min_commits`` transactions commit within
    ``timeout`` real seconds.

    Observability wiring:

    - ``trace_path`` turns on full causal tracing (the tracer is
      attached via :meth:`Runtime.attach_tracer`, so every timestamp
      comes from the loop's monotonic clock) and exports JSONL there —
      the file feeds ``trace analyze`` / the 7-phase span
      decomposition unmodified.
    - ``metrics_path`` instruments every component plus the runtime's
      health metrics and runs a :class:`MetricsSampler` at
      ``metrics_interval``, exporting the JSONL series there.
    - The flight recorder is **always on**: without ``trace_path`` the
      tracer runs ring-only (``retain=False`` — bounded memory, events
      land only in the ring), and the ring is dumped to
      ``recorder_path`` whenever a §6.7 checker fails or the harness
      errors out. In ring-only mode only the state-based checkers run
      (``cluster.tracer`` stays ``None``): the ring holds a *window*,
      and trace checkers on a partial stream would report false gaps.

    ``_inject_fault``, test-only, runs against the finished cluster
    just before the checkers — the recorder auto-dump test uses it to
    plant a §6.7 violation.
    """
    cluster = build_udp_cluster(n_shards=n_shards, n_replicas=n_replicas,
                                n_keys=n_keys, seed=seed, chain=chain,
                                wire=wire, batch=batch,
                                counters=(workload == "counters"),
                                fast_path=fast_path)
    runtime = cluster.runtime
    recorder = FlightRecorder(capacity=recorder_capacity)
    if trace_path is not None:
        cluster.tracer = runtime.attach_tracer(Tracer(recorder=recorder))
    else:
        runtime.attach_tracer(Tracer(recorder=recorder, retain=False))
    sampler = None
    if metrics_path is not None:
        cluster.instrument_metrics()
        sampler = MetricsSampler(runtime, cluster.metrics,
                                 interval=metrics_interval)
    if workload == "counters":
        workload_gen = CountersWorkload(
            CountersConfig(n_keys=n_keys,
                           multi_shard_fraction=distributed_fraction),
            cluster.partitioner, SplitRandom(seed))
    else:
        workload_gen = YCSBWorkload(
            YCSBConfig(workload=workload, n_keys=n_keys,
                       distributed_fraction=distributed_fraction),
            cluster.partitioner, SplitRandom(seed))

    stats = {"committed": 0, "aborted": 0, "retries": 0}
    clients = [cluster.make_client() for _ in range(n_clients)]
    runtime.start()
    if sampler is not None:
        sampler.start()
    start = runtime.now

    def issue(client) -> None:
        op = workload_gen.next_op()
        client.submit(op, lambda result, c=client: done(c, result))

    def done(client, result: OpResult) -> None:
        stats["retries"] += result.retries
        if result.committed:
            stats["committed"] += 1
        else:
            stats["aborted"] += 1
        # Closed loop: one outstanding op per client until the target
        # commit count is reached.
        if stats["committed"] < min_commits:
            issue(client)

    interrupt = GracefulInterrupt()
    with interrupt:
        for client in clients:
            issue(client)

        reached = runtime.run_until(
            lambda: (stats["committed"] >= min_commits
                     or interrupt.triggered is not None),
            timeout=timeout)
        # Let in-flight replies, syncs, and FC traffic drain so replica
        # state is quiescent before the checkers read it.
        runtime.run_for(3 * _UDP_ERIS["sync_interval"])
    wall = runtime.now - start

    result = SmokeResult(
        committed=stats["committed"], aborted=stats["aborted"],
        retries=stats["retries"], wall_seconds=wall,
        packets_sent=runtime.packets_sent,
        packets_delivered=runtime.packets_delivered,
        frames_sent=runtime.frames_sent,
        datagrams_sent=runtime.datagrams_sent,
    )
    try:
        if interrupt.triggered is not None:
            # Interrupted run: exit cleanly with whatever completed —
            # the finally block still exports metrics and trace, and
            # the recorder window is preserved for post-mortem.
            result.notes.append(
                f"interrupted by {interrupt.triggered}; checks skipped")
            result.checks_passed = False
            if len(recorder):
                recorder.dump(recorder_path,
                              reason=f"interrupted: {interrupt.triggered}",
                              context={"origin": "run_udp_smoke"})
                result.recorder_dump = recorder_path
            return result
        if not reached:
            raise ExperimentError(
                f"only {stats['committed']}/{min_commits} transactions "
                f"committed within {timeout}s over UDP loopback")
        if _inject_fault is not None:
            _inject_fault(cluster)
        if check:
            run_all_checks(cluster, recorder=recorder,
                           recorder_path=recorder_path)
            result.notes.append("§6.7 invariant checks passed")
    except InvariantViolation:
        # run_all_checks already dumped the recorder (when non-empty).
        result.checks_passed = False
        if len(recorder):
            result.recorder_dump = recorder_path
        raise
    except Exception as exc:
        # Commit-count timeout or an unexpected harness crash: dump
        # here so the last window of activity always survives.
        result.checks_passed = False
        if len(recorder):
            recorder.dump(recorder_path, reason=str(exc),
                          context={"origin": "run_udp_smoke"})
            result.recorder_dump = recorder_path
        raise
    finally:
        if sampler is not None:
            sampler.stop()
            result.metrics_samples = sampler.export(metrics_path)
            result.metrics_path = metrics_path
        if trace_path is not None and cluster.tracer is not None:
            result.trace_events = cluster.tracer.export(trace_path)
            result.trace_path = trace_path
        runtime.stop()
    return result
