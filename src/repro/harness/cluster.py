"""Cluster construction for every system under evaluation.

``build_cluster(config, registry, loader)`` assembles the simulated
deployment — network, sequencers + SDN controller + FC (Eris), VR
groups (Granola/Lock-Store), bare replicas (TAPIR), single nodes
(NT-UR) — and returns a :class:`Cluster` whose ``make_client`` yields a
uniform submit interface, so the experiment driver and benchmarks are
system-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.common import DoneFn, OpResult, WorkloadOp
from repro.baselines.granola import GranolaClient, GranolaReplica
from repro.baselines.lockstore import LockStoreClient, LockStoreReplica
from repro.baselines.ntur import NTURClient, NTURServer
from repro.baselines.tapir import TapirClient, TapirReplica
from repro.core.client import ErisClient
from repro.core.fc import FailureCoordinator
from repro.core.general import GeneralTransactionManager
from repro.core.replica import ErisConfig, ErisReplica
from repro.errors import ConfigurationError
from repro.net.controller import ControllerConfig, SDNController
from repro.net.network import NetConfig, Network
from repro.net.oum import OUMSequencer
from repro.net.sequencer import MultiSequencer, SequencerProfile
from repro.obs import MetricsRegistry, Tracer
from repro.replication.vr import VRConfig
from repro.sim.event_loop import EventLoop
from repro.sim.randomness import SplitRandom
from repro.store.kv import KVStore
from repro.store.procedures import ProcedureRegistry
from repro.workloads.partition import Partitioner

SYSTEMS = ("eris", "eris-oum", "granola", "tapir", "lockstore", "ntur")

_PROFILES = {
    "in-switch": SequencerProfile.in_switch,
    "middlebox": SequencerProfile.middlebox,
    "endhost": SequencerProfile.endhost,
}


@dataclass
class ClusterConfig:
    """Deployment shape and cost model for one experiment."""

    system: str = "eris"
    n_shards: int = 3
    n_replicas: int = 3
    seed: int = 42
    #: Runtime backend: "sim" (discrete-event simulator; deterministic)
    #: or "udp" (asyncio + real UDP sockets on loopback). The protocol
    #: classes are identical under both; only the fabric changes.
    backend: str = "sim"
    net: NetConfig = field(default_factory=NetConfig)
    sequencer_profile: str = "middlebox"
    n_sequencers: int = 2              # primary + standbys (Eris)
    #: Chain-replicated sequencer (Eris only): length of the chain of
    #: ``ChainSequencerNode`` elements fronting the system. 0 keeps the
    #: paper's single soft-state sequencer; 2–3 enables splice repair
    #: (``n_sequencers`` then counts the epoch-fallback standbys).
    sequencer_chain: int = 0
    server_service_time: float = 2e-6  # CPU per received message
    execution_cost: float = 0.5e-6     # CPU per executed transaction
    client_retry_timeout: float = 2e-3
    #: Ablation: one-phase commit for single-shard Lock-Store txns
    #: (the paper's Lock-Store always runs the full 2PC exchange).
    lockstore_one_phase: bool = False
    #: Stamp up to this many queued sequenced groupcasts per sequencer
    #: wakeup (1 = the paper's one-at-a-time stamping; pinned default).
    sequencer_batch: int = 1
    #: Chain-replicated sequencer only: pipeline up to this many counter
    #: writes per hop in one ChainForwardBatch (1 = one msg per write).
    chain_pipeline: int = 1
    #: UDP backend only: pack up to this many frames per datagram in an
    #: EWCB container (1 = one packet per datagram).
    udp_batch_frames: int = 1
    #: Coordination-free fast paths (Eris only, default-off; see
    #: DESIGN.md "The dirty-set protocol"). ``read_fast_path`` lets the
    #: sequencer serve READ_ONLY transactions over clean keys from a
    #: single replica; ``commutative_apply`` lets replicas execute
    #: COMMUTATIVE transactions out of order behind a sequencer-issued
    #: reorder barrier.
    read_fast_path: bool = False
    commutative_apply: bool = False
    #: Attach a causal tracer (``repro.obs``) at build time. Off by
    #: default: benchmarks pay only a per-packet None check.
    tracing: bool = False
    eris: ErisConfig = field(default_factory=ErisConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    vr: VRConfig = field(default_factory=VRConfig)

    def validate(self) -> None:
        if self.system not in SYSTEMS:
            raise ConfigurationError(
                f"unknown system {self.system!r}; pick one of {SYSTEMS}")
        if self.backend not in ("sim", "udp"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; pick 'sim' or 'udp'")
        if self.n_shards < 1 or self.n_replicas < 1:
            raise ConfigurationError("need >= 1 shard and >= 1 replica")
        if self.sequencer_profile not in _PROFILES:
            raise ConfigurationError(
                f"unknown sequencer profile {self.sequencer_profile!r}")
        if self.sequencer_chain:
            if self.system != "eris":
                raise ConfigurationError(
                    "sequencer_chain requires system='eris'")
            if not 2 <= self.sequencer_chain <= 3:
                raise ConfigurationError(
                    f"sequencer_chain must be 2 or 3, "
                    f"got {self.sequencer_chain}")
        if self.sequencer_batch < 1:
            raise ConfigurationError(
                f"sequencer_batch must be >= 1: {self.sequencer_batch}")
        if self.chain_pipeline < 1:
            raise ConfigurationError(
                f"chain_pipeline must be >= 1: {self.chain_pipeline}")
        if self.udp_batch_frames < 1:
            raise ConfigurationError(
                f"udp_batch_frames must be >= 1: {self.udp_batch_frames}")
        if (self.read_fast_path or self.commutative_apply) \
                and self.system != "eris":
            raise ConfigurationError(
                "read_fast_path/commutative_apply require system='eris' "
                f"(got {self.system!r}); the OUM ablation and the "
                "baselines have no dirty-set sequencer")


class SystemClient:
    """Uniform client: ``submit(op, done)`` regardless of system."""

    def __init__(self, submit_fn: Callable[[WorkloadOp, DoneFn], None],
                 node):
        self._submit = submit_fn
        self.node = node

    def submit(self, op: WorkloadOp, done: DoneFn) -> None:
        self._submit(op, done)


class Cluster:
    """One fully wired deployment of one system."""

    def __init__(self, config: ClusterConfig, registry: ProcedureRegistry,
                 partitioner: Partitioner):
        config.validate()
        self.config = config
        self.registry = registry
        self.partitioner = partitioner
        if config.backend == "udp":
            from repro.runtime.asyncio_udp import AsyncioUdpRuntime
            # The wire format is part of the fabric config (NetConfig):
            # the sim uses it for the paranoid round-trip, the UDP
            # backend for every frame that crosses loopback.
            self.runtime = AsyncioUdpRuntime(
                seed=config.seed, wire=config.net.wire,
                batch_frames=config.udp_batch_frames)
        else:
            self.loop = EventLoop()
            self.rng = SplitRandom(config.seed)
            self.runtime = Network(self.loop, config.net, self.rng)
        #: Historical alias: the simulator's fabric is the runtime, and
        #: the builders/tests reach it as ``cluster.network``.
        self.network = self.runtime
        self.stores: dict[int, list[KVStore]] = {}
        self.replicas: dict[int, list] = {}
        self.sequencers: list[MultiSequencer] = []
        self.controller: Optional[SDNController] = None
        self.fc: Optional[FailureCoordinator] = None
        self._clients: list[SystemClient] = []
        self._client_counter = 0
        self.tracer: Optional[Tracer] = None
        self.metrics = MetricsRegistry()

    # -- observability -----------------------------------------------------
    def enable_tracing(self) -> Tracer:
        """Attach a causal tracer to the fabric (idempotent) and wire
        the per-component metrics registry."""
        if self.tracer is None:
            self.tracer = self.runtime.attach_tracer(Tracer())
        self.instrument_metrics()
        return self.tracer

    def instrument_metrics(self) -> None:
        """Register pull-gauges for every component that supports them
        (event loop, fabric, sequencers, Eris replicas, FC). Safe to
        call repeatedly; zero hot-path cost."""
        loop = getattr(self, "loop", None)
        if loop is not None:
            loop.instrument(self.metrics)
        instrument = getattr(self.runtime, "instrument", None)
        if instrument is not None:
            instrument(self.metrics)
        for sequencer in self.sequencers:
            sequencer.instrument(self.metrics)
        if self.fc is not None:
            self.fc.instrument(self.metrics)
        for replicas in self.replicas.values():
            for replica in replicas:
                instrument = getattr(replica, "instrument", None)
                if instrument is not None:
                    instrument(self.metrics)

    def metrics_snapshot(self) -> dict:
        """Current per-component metric values (instruments lazily)."""
        self.instrument_metrics()
        return self.metrics.snapshot()

    # -- store access (used by loaders and checkers) -----------------------
    def shard_stores(self, shard: int) -> list[KVStore]:
        return self.stores[shard]

    def authoritative_store(self, shard: int) -> KVStore:
        """The store that reflects all executed transactions: the DL /
        leader / single node of ``shard``."""
        if self.config.system == "eris" or self.config.system == "eris-oum":
            for replica in self.replicas[shard]:
                if replica.is_dl:
                    return replica.store
        return self.stores[shard][0]

    # -- client creation ----------------------------------------------------
    def make_client(self, name: Optional[str] = None) -> SystemClient:
        self._client_counter += 1
        address = name or f"client-{self._client_counter}"
        client = self._build_client(address)
        self._clients.append(client)
        return client

    def _build_client(self, address: str) -> SystemClient:
        raise ConfigurationError("cluster not built; use build_cluster()")

    # -- fault injection hooks ---------------------------------------------
    def set_drop_rate(self, rate: float) -> None:
        self.network.config.drop_rate = rate

    def crash_active_sequencer(self) -> None:
        if self.controller is None:
            raise ConfigurationError("no controller in this deployment")
        self.network.endpoint(self.controller.active_address).crash()

    def crash_replica(self, shard: int, index: int) -> None:
        self.replicas[shard][index].crash()

    def crash_chain_node(self, index: int) -> None:
        """Crash the ``index``-th element of the *current* sequencer
        chain (0 = head, -1 = tail)."""
        if self.controller is None or not self.controller.chain:
            raise ConfigurationError("no sequencer chain in this deployment")
        self.network.endpoint(self.controller.chain[index]).crash()


def build_cluster(config: ClusterConfig, registry: ProcedureRegistry,
                  partitioner: Partitioner,
                  loader: Optional[Callable[[dict[int, list[KVStore]],
                                             Partitioner], None]] = None
                  ) -> Cluster:
    """Assemble the deployment for ``config.system`` and load data."""
    cluster = Cluster(config, registry, partitioner)
    builder = _BUILDERS[config.system]
    builder(cluster)
    if config.tracing:
        cluster.enable_tracing()
    if loader is not None:
        loader(cluster.stores, partitioner)
    return cluster


# -- per-system wiring ----------------------------------------------------

def _make_stores(cluster: Cluster, per_shard: int) -> None:
    for shard in range(cluster.config.n_shards):
        cluster.stores[shard] = [KVStore() for _ in range(per_shard)]


def _build_eris(cluster: Cluster, oum: bool = False) -> None:
    from repro.harness.topology import eris_topology

    config = cluster.config
    _make_stores(cluster, config.n_replicas)
    # The address plan is shared with the multi-process launcher: both
    # deployments derive the same names from the same config, so the
    # strings inside packets are identical either way.
    topology = eris_topology(config)
    shard_addrs = topology.shard_addrs
    for shard, addrs in shard_addrs.items():
        cluster.network.groups.define(shard, addrs)
    profile = _PROFILES[config.sequencer_profile]()
    sequencer_cls = OUMSequencer if oum else MultiSequencer
    # The OUM ablation's sequencer predates the fast-path knobs and the
    # validate() gate keeps them off for it.
    fastpath_kwargs = {} if oum else {
        "read_fast_path": config.read_fast_path,
        "commutative_apply": config.commutative_apply,
    }
    chain_addrs: list[str] = []
    if not oum and config.sequencer_chain:
        from repro.net.chainseq import ChainSequencerNode
        for address in topology.chain_addrs:
            node = ChainSequencerNode(address, cluster.network, profile,
                                      stamp_batch=config.sequencer_batch,
                                      pipeline=config.chain_pipeline,
                                      **fastpath_kwargs)
            chain_addrs.append(node.address)
            cluster.sequencers.append(node)
    standbys: list[MultiSequencer] = []
    for address in topology.standby_addrs:
        standby = sequencer_cls(address, cluster.network, profile,
                                stamp_batch=config.sequencer_batch,
                                **fastpath_kwargs)
        standbys.append(standby)
        cluster.sequencers.append(standby)
    cluster.fc = FailureCoordinator(topology.fc_address, cluster.network,
                                    shards=shard_addrs)
    cluster.fc.msg_service_time = config.server_service_time
    if oum:
        cluster.network.install_sequencer_route(topology.standby_addrs[0])
    else:
        cluster.controller = SDNController(
            topology.controller_address, cluster.network,
            sequencers=[s.address for s in standbys],
            config=config.controller,
            chain=chain_addrs or None)
        cluster.controller.start()
    eris_config = config.eris
    eris_config.execution_cost = config.execution_cost
    eris_config.oum_mode = oum
    if not oum:
        eris_config.read_fast_path = config.read_fast_path
        eris_config.commutative_apply = config.commutative_apply
    for shard, addrs in shard_addrs.items():
        replicas = []
        for index, address in enumerate(addrs):
            replica = ErisReplica(
                address, cluster.network, shard, index, addrs,
                topology.fc_address,
                cluster.stores[shard][index], cluster.registry,
                owns=cluster.partitioner.owns_fn(shard),
                config=eris_config,
            )
            replica.msg_service_time = config.server_service_time
            replicas.append(replica)
        cluster.replicas[shard] = replicas

    cluster._build_client = eris_client_factory(
        cluster.network, topology.shard_sizes,
        config.client_retry_timeout)


def eris_client_factory(runtime, shard_sizes: dict[int, int],
                        retry_timeout: float) -> Callable[[str],
                                                          SystemClient]:
    """address -> :class:`SystemClient` over an Eris deployment.

    Shared by the single-process builder and the multi-process driver
    (which hosts the clients in its own process): the submit closure —
    independent txns straight to the client, general txns through the
    :class:`GeneralTransactionManager` — is identical either way.
    """

    def build_client(address: str) -> SystemClient:
        node = ErisClient(address, runtime, shard_sizes,
                          retry_timeout=retry_timeout)
        general = GeneralTransactionManager(node)

        def submit(op: WorkloadOp, done: DoneFn) -> None:
            if op.is_general:
                general.execute(
                    op.read_keys, op.write_keys, op.participants,
                    op.compute or (lambda values: {}),
                    lambda outcome: done(OpResult(
                        committed=outcome.committed,
                        latency=outcome.latency)),
                )
            else:
                node.submit(
                    op.proc, op.args, op.participants,
                    lambda outcome: done(OpResult(
                        committed=outcome.committed,
                        latency=outcome.latency,
                        result=outcome.results,
                        retries=outcome.retries)),
                    read_keys=op.read_keys,
                    write_keys=op.write_keys,
                    op_class=op.op_class,
                )

        return SystemClient(submit, node)

    return build_client


def _build_eris_oum(cluster: Cluster) -> None:
    _build_eris(cluster, oum=True)


def _build_lockstore(cluster: Cluster) -> None:
    config = cluster.config
    _make_stores(cluster, config.n_replicas)
    leaders: dict[int, str] = {}
    for shard in range(config.n_shards):
        group = [f"ls-r{shard}.{i}" for i in range(config.n_replicas)]
        leaders[shard] = group[0]
        replicas = []
        for index, address in enumerate(group):
            replica = LockStoreReplica(
                address, cluster.network, shard, group, index,
                cluster.stores[shard][index], cluster.registry,
                owns=cluster.partitioner.owns_fn(shard),
                execution_cost=config.execution_cost,
                vr_config=config.vr,
            )
            replica.msg_service_time = config.server_service_time
            replicas.append(replica)
        cluster.replicas[shard] = replicas

    def build_client(address: str) -> SystemClient:
        node = LockStoreClient(address, cluster.network, leaders,
                               retry_timeout=config.client_retry_timeout,
                               one_phase=config.lockstore_one_phase)
        return SystemClient(node.submit, node)

    cluster._build_client = build_client


def _build_tapir(cluster: Cluster) -> None:
    config = cluster.config
    _make_stores(cluster, config.n_replicas)
    shard_replicas: dict[int, list[str]] = {}
    for shard in range(config.n_shards):
        group = [f"tapir-r{shard}.{i}" for i in range(config.n_replicas)]
        shard_replicas[shard] = group
        replicas = []
        for index, address in enumerate(group):
            replica = TapirReplica(
                address, cluster.network, shard, index,
                cluster.stores[shard][index], cluster.registry,
                owns=cluster.partitioner.owns_fn(shard),
                execution_cost=config.execution_cost,
            )
            replica.msg_service_time = config.server_service_time
            replicas.append(replica)
        cluster.replicas[shard] = replicas

    def build_client(address: str) -> SystemClient:
        node = TapirClient(address, cluster.network, shard_replicas,
                           retry_timeout=config.client_retry_timeout)
        return SystemClient(node.submit, node)

    cluster._build_client = build_client


def _build_granola(cluster: Cluster) -> None:
    config = cluster.config
    _make_stores(cluster, config.n_replicas)
    groups = {shard: [f"gr-r{shard}.{i}" for i in range(config.n_replicas)]
              for shard in range(config.n_shards)}
    leaders = {shard: group[0] for shard, group in groups.items()}
    for shard, group in groups.items():
        replicas = []
        for index, address in enumerate(group):
            replica = GranolaReplica(
                address, cluster.network, shard, group, index,
                cluster.stores[shard][index], cluster.registry,
                peer_leaders=leaders,
                owns=cluster.partitioner.owns_fn(shard),
                execution_cost=config.execution_cost,
                vr_config=config.vr,
            )
            replica.msg_service_time = config.server_service_time
            replicas.append(replica)
        cluster.replicas[shard] = replicas

    def build_client(address: str) -> SystemClient:
        node = GranolaClient(address, cluster.network, leaders,
                             retry_timeout=config.client_retry_timeout)
        return SystemClient(node.submit, node)

    cluster._build_client = build_client


def _build_ntur(cluster: Cluster) -> None:
    config = cluster.config
    _make_stores(cluster, 1)
    servers: dict[int, str] = {}
    for shard in range(config.n_shards):
        address = f"ntur-{shard}"
        servers[shard] = address
        server = NTURServer(address, cluster.network, shard,
                            cluster.stores[shard][0], cluster.registry,
                            owns=cluster.partitioner.owns_fn(shard),
                            execution_cost=config.execution_cost)
        server.msg_service_time = config.server_service_time
        cluster.replicas[shard] = [server]

    def build_client(address: str) -> SystemClient:
        node = NTURClient(address, cluster.network, servers)
        return SystemClient(node.submit, node)

    cluster._build_client = build_client


_BUILDERS = {
    "eris": _build_eris,
    "eris-oum": _build_eris_oum,
    "lockstore": _build_lockstore,
    "tapir": _build_tapir,
    "granola": _build_granola,
    "ntur": _build_ntur,
}
