"""Wire-transportable replica state for the distributed §6.7 checkers.

In a single-process run, :func:`repro.harness.checkers.run_all_checks`
reads replica objects directly. In a multi-process run the replicas
live in other address spaces, so at end of run each worker serializes
its replica into a :class:`ReplicaSnapshot` (a registered wire
dataclass — the log entries inside are the *same* ``LogEntry`` /
``TxnRecord`` dataclasses the protocol ships, so nothing is lossily
re-encoded) and the launcher's state-collection RPC carries it back to
the driver.

The driver then rehydrates each snapshot into a :class:`SnapshotReplica`
— a duck-typed stand-in exposing exactly the surface the checkers read
(``log`` / ``store`` / ``view_num`` / ``is_dl`` / ``crashed`` /
``_fed``) — and groups them into a :class:`SnapshotCluster`, so the
checkers run **unmodified** on merged multi-process state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.log import LogEntry
from repro.runtime.codec import register_messages


@dataclass(frozen=True)
class ReplicaSnapshot:
    """One replica's checker-relevant end state, as wire data."""

    address: str
    shard: int
    replica_index: int
    view_num: int
    is_dl: bool
    crashed: bool
    #: Number of log entries fed to the execution engine (the checkers
    #: compare stores only for fully caught-up replicas).
    fed: int
    #: The full log, as the protocol's own LogEntry dataclasses.
    entries: tuple[LogEntry, ...]
    #: Store contents as (key, value) pairs: KVStore keys are ints,
    #: which a dict-valued wire field would not round-trip as JSON.
    store: tuple[tuple[Any, Any], ...]


register_messages([ReplicaSnapshot])


def snapshot_replica(replica) -> ReplicaSnapshot:
    """Capture a live :class:`~repro.core.replica.ErisReplica`."""
    return ReplicaSnapshot(
        address=replica.address,
        shard=replica.shard,
        replica_index=replica.replica_index,
        view_num=replica.view_num,
        is_dl=replica.is_dl,
        crashed=replica.crashed,
        fed=len(replica._fed),
        entries=tuple(replica.log.entries()),
        store=tuple(sorted(replica.store.snapshot().items())),
    )


class SnapshotLog:
    """Just enough of :class:`repro.core.log.ErisLog` for the checkers:
    iteration and ``entries()``."""

    def __init__(self, entries: tuple[LogEntry, ...]):
        self._entries = list(entries)

    def entries(self) -> list[LogEntry]:
        return list(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class SnapshotStore:
    """Just enough of :class:`repro.store.kv.KVStore`: ``snapshot()``."""

    def __init__(self, items: tuple[tuple[Any, Any], ...]):
        self._data = dict(items)

    def snapshot(self) -> dict:
        return dict(self._data)


class SnapshotReplica:
    """Checker-facing stand-in for a remote replica.

    ``eris_like`` is the marker :func:`repro.harness.checkers._eris_like`
    accepts in place of an ``isinstance(..., ErisReplica)`` — the
    snapshot deliberately is *not* an ErisReplica (it has no runtime,
    no sockets, no timers), it only answers the checkers' questions.
    """

    eris_like = True

    def __init__(self, snap: ReplicaSnapshot):
        self.address = snap.address
        self.shard = snap.shard
        self.replica_index = snap.replica_index
        self.view_num = snap.view_num
        self.is_dl = snap.is_dl
        self.crashed = snap.crashed
        self.log = SnapshotLog(snap.entries)
        self.store = SnapshotStore(snap.store)
        # The checkers only ever take len() of _fed.
        self._fed = [None] * snap.fed


class SnapshotCluster:
    """The merged view ``run_all_checks`` consumes: per-shard replica
    lists (in replica-index order) plus an optional merged trace."""

    def __init__(self, snapshots: list[ReplicaSnapshot],
                 tracer: Optional[Any] = None):
        by_shard: dict[int, list[SnapshotReplica]] = {}
        for snap in snapshots:
            by_shard.setdefault(snap.shard, []).append(
                SnapshotReplica(snap))
        self.replicas = {
            shard: sorted(replicas, key=lambda r: r.replica_index)
            for shard, replicas in sorted(by_shard.items())
        }
        self.tracer = tracer
