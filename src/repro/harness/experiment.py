"""Closed-loop experiment driver (§8 methodology).

"As is common, we used closed-loop clients with no wait time": each
client submits one transaction, waits for it to complete, submits the
next. Throughput and latency are measured inside a window that opens
after a warmup period, so cold-start and drain effects stay out of the
numbers. Varying ``n_clients`` traces out the latency-throughput curves
of Figure 6; a large ``n_clients`` saturates the system for the
maximum-throughput figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.common import OpResult, WorkloadOp
from repro.harness.cluster import Cluster, SystemClient
from repro.sim.stats import LatencyRecorder, ThroughputMeter, TimeSeries


@dataclass
class ExperimentConfig:
    n_clients: int = 20
    warmup: float = 20e-3
    duration: float = 100e-3
    drain: float = 20e-3
    #: Count only ops matching this filter toward throughput (e.g.
    #: TPC-C new-order); latency is recorded for the same subset.
    count_filter: Optional[Callable[[WorkloadOp], bool]] = None
    #: Optional bucket width for a throughput time series (Fig 14).
    timeseries_bucket: Optional[float] = None
    #: Export the cluster's causal trace as JSONL here after the run.
    #: Tracing is enabled on the cluster if it is not already.
    trace_path: Optional[str] = None


@dataclass
class ExperimentResult:
    system: str
    throughput: float            # committed (filtered) txns per second
    mean_latency: float
    median_latency: float
    p99_latency: float
    committed: int
    aborted: int
    retries: int
    n_clients: int
    duration: float
    timeseries: list[tuple[float, float]] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.system}: {self.throughput:,.0f} txn/s, "
                f"mean {self.mean_latency * 1e6:.1f} us, "
                f"p99 {self.p99_latency * 1e6:.1f} us "
                f"({self.committed} committed, {self.aborted} failed)")


class _ClosedLoopClient:
    """One client: submit, wait, repeat — until the window closes."""

    def __init__(self, client: SystemClient, workload, stop_time: float,
                 on_complete):
        self.client = client
        self.workload = workload
        self.stop_time = stop_time
        self.on_complete = on_complete
        self.active = True

    def start(self) -> None:
        self._issue()

    def _issue(self) -> None:
        op = self.workload.next_op()
        self.client.submit(op, lambda result, op=op: self._done(op, result))

    def _done(self, op: WorkloadOp, result: OpResult) -> None:
        self.on_complete(op, result)
        if self.client.node.now < self.stop_time:
            self._issue()
        else:
            self.active = False


def run_experiment(cluster: Cluster, workload,
                   config: Optional[ExperimentConfig] = None
                   ) -> ExperimentResult:
    """Run one measurement on an already-built cluster.

    The cluster must be freshly built (simulated time at zero) or the
    caller accepts that warmup is relative to the current clock.
    """
    config = config or ExperimentConfig()
    if config.trace_path is not None:
        cluster.enable_tracing()
    loop = cluster.loop
    start = loop.now
    window_start = start + config.warmup
    window_end = window_start + config.duration

    meter = ThroughputMeter()
    meter.open_window(window_start, window_end)
    latencies = LatencyRecorder()
    latencies.open_window(window_start, window_end)
    series = (TimeSeries(config.timeseries_bucket, origin=start)
              if config.timeseries_bucket else None)
    counters = {"aborted": 0, "retries": 0}
    count_filter = config.count_filter

    def on_complete(op: WorkloadOp, result: OpResult) -> None:
        counters["retries"] += result.retries
        if not result.committed:
            counters["aborted"] += 1
            return
        if count_filter is not None and not count_filter(op):
            return
        meter.record(loop.now)
        latencies.record(loop.now, result.latency)
        if series is not None:
            series.record(loop.now)

    drivers = []
    for i in range(config.n_clients):
        client = cluster.make_client()
        driver = _ClosedLoopClient(client, workload, window_end, on_complete)
        drivers.append(driver)
        # Stagger starts slightly so the first wave is not a thundering
        # herd of identical timestamps.
        loop.schedule(i * 1e-6, driver.start)

    loop.run(until=window_end + config.drain)

    if config.trace_path is not None:
        cluster.tracer.export(config.trace_path)

    mean = latencies.mean()
    return ExperimentResult(
        system=cluster.config.system,
        throughput=meter.rate(),
        mean_latency=mean if not math.isnan(mean) else 0.0,
        median_latency=latencies.median(),
        p99_latency=latencies.percentile(99),
        committed=meter.count,
        aborted=counters["aborted"],
        retries=counters["retries"],
        n_clients=config.n_clients,
        duration=config.duration,
        timeseries=series.series() if series is not None else [],
    )


# -- Figure 14: sequencer-failover outage windows --------------------------

def failover_window(timeseries: list[tuple[float, float]],
                    kill_time: float,
                    threshold: float = 0.05) -> float:
    """Length of the throughput outage a failure opened at
    ``kill_time``: from the kill until the first bucket *after the
    outage* whose rate climbs back above ``threshold`` x the pre-kill
    peak. The bucket straddling the kill still holds pre-kill commits,
    so recovery is only declared once a below-threshold bucket has
    actually been seen. Returns 0 if no outage registers at this
    bucket granularity, ``inf`` if throughput never recovers."""
    baseline = max((rate for time, rate in timeseries
                    if time <= kill_time), default=0.0)
    cutoff = threshold * baseline
    outage_seen = False
    for time, rate in timeseries:
        if time <= kill_time:
            continue
        if rate <= cutoff:
            outage_seen = True
        elif outage_seen:
            return time - kill_time
    if outage_seen:
        return math.inf
    return 0.0


def run_failover_experiment(cluster: Cluster, workload, kill_at: float,
                            config: Optional[ExperimentConfig] = None
                            ) -> tuple[ExperimentResult, float]:
    """Extended fig14: run ``workload`` under closed-loop load, kill
    the active sequencing element (chain head in chain mode, the
    routed sequencer otherwise) at absolute time ``kill_at``, and
    measure the outage window until throughput recovers.

    Returns ``(result, window)`` where ``window`` compares directly
    between the epoch-bump path (``sequencer_chain=0``) and the
    chain-repair path (``sequencer_chain>=2``).
    """
    config = config or ExperimentConfig(timeseries_bucket=5e-3)
    if not config.timeseries_bucket:
        raise ValueError("failover experiment needs a timeseries bucket")
    from repro.harness.faults import FaultPlan

    plan = FaultPlan(cluster)
    controller = cluster.controller
    if controller is not None and controller.chain:
        plan.kill_chain_node_at(kill_at, 0)
    else:
        plan.kill_sequencer_at(kill_at)
    result = run_experiment(cluster, workload, config)
    window = failover_window(result.timeseries, kill_at)
    return result, window
