"""Multi-process UDP smoke run: the driver side.

Same experiment as :func:`repro.harness.udp_smoke.run_udp_smoke`, but
the cluster is real OS processes: the driver (rank 0) hosts only the
clients on a :class:`~repro.runtime.udp_mp.WorkerUdpRuntime`, and the
:class:`~repro.runtime.launcher.ClusterLauncher` spawns one worker
process per role. Every replica/sequencer/controller/FC interaction
crosses process boundaries over UDP.

End of run, the distributed observability plumbing reassembles the
single-process picture:

- the state-collection RPC brings back per-replica snapshots, which
  rehydrate into a :class:`~repro.harness.snapshot.SnapshotCluster` so
  the unmodified §6.7 checkers run on merged state;
- per-process trace shards (collision-free causal ids via per-rank
  ``cause_base``) merge timestamp-sorted into one stream that feeds
  the trace checkers and the 7-phase span decomposition;
- per-process metrics shards and flight-recorder dumps land in the
  run directory next to each worker's log.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from typing import Callable, Optional

from repro.baselines.common import OpResult
from repro.errors import ExperimentError, InvariantViolation
from repro.harness.checkers import run_all_checks
from repro.harness.cluster import eris_client_factory
from repro.harness.snapshot import SnapshotCluster
from repro.harness.topology import (
    define_groups,
    eris_topology,
    topology_roles,
)
from repro.harness.udp_smoke import (
    _UDP_ERIS,
    GracefulInterrupt,
    SmokeResult,
    smoke_cluster_config,
)
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.sampler import MetricsSampler
from repro.obs.trace import Tracer, merge_trace_shards
from repro.runtime.launcher import ClusterLauncher
from repro.runtime.udp_mp import WorkerUdpRuntime
from repro.sim.randomness import SplitRandom
from repro.workloads import Partitioner
from repro.workloads.counters import CountersConfig, CountersWorkload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

#: Default timer coalescing for worker processes: nearby protocol
#: timers (sync, ping, retry) share loop wakeups. Half a millisecond
#: only ever *delays* a timer, an order of magnitude under the
#: tightest protocol timeout (5 ms drop detection).
DEFAULT_TIMER_SLACK = 0.5e-3


def run_udp_smoke_mp(n_shards: int = 2, n_replicas: int = 3,
                     n_clients: int = 4, min_commits: int = 50,
                     timeout: float = 30.0, workload: str = "mrmw",
                     distributed_fraction: float = 0.5,
                     n_keys: int = 200, seed: int = 7,
                     check: bool = True, chain: int = 0,
                     wire: str = "ewc1", batch: int = 1,
                     fast_path: bool = False,
                     run_dir: Optional[str] = None,
                     trace: bool = False, metrics: bool = False,
                     metrics_interval: float = 0.05,
                     recorder_capacity: int = DEFAULT_CAPACITY,
                     timer_slack: float = DEFAULT_TIMER_SLACK,
                     _mid_run: Optional[Callable[[ClusterLauncher],
                                                 None]] = None,
                     ) -> SmokeResult:
    """Run the smoke workload against a process-per-node cluster.

    Raises on invariant violations, on a commit-count timeout, and on
    any worker process dying mid-run (the supervisor names the dead
    worker's log and recorder dump). All per-process artifacts —
    ``worker-<rank>-<role>.log``, ``trace-<rank>.jsonl``,
    ``metrics-<rank>.jsonl``, ``recorder-<rank>.jsonl`` — land in
    ``run_dir`` (a fresh temp directory when not given).

    ``_mid_run``, test-only, is called with the launcher once the
    workload is in flight — the fault-handling test uses it to kill a
    worker and assert supervision catches it.
    """
    if run_dir is None:
        run_dir = tempfile.mkdtemp(prefix="repro-udp-mp-")
    os.makedirs(run_dir, exist_ok=True)
    config = smoke_cluster_config(n_shards=n_shards,
                                  n_replicas=n_replicas, seed=seed,
                                  chain=chain, wire=wire, batch=batch,
                                  fast_path=fast_path)
    topology = eris_topology(config)
    roles = topology_roles(topology)
    runtime = WorkerUdpRuntime(rank=0, seed=seed, wire=wire,
                               batch_frames=batch,
                               timer_slack=timer_slack)
    recorder = FlightRecorder(capacity=recorder_capacity)
    # Driver shard uses cause_base 0; workers use rank * stride — the
    # merged stream's causal ids are collision-free by construction.
    tracer = runtime.attach_tracer(Tracer(recorder=recorder,
                                          retain=trace))
    define_groups(runtime, topology)
    sampler = None
    if metrics:
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        runtime.instrument(registry)
        sampler = MetricsSampler(runtime, registry,
                                 interval=metrics_interval)

    # Clients must exist before the port map is merged: their reply
    # ports travel in the broadcast so replicas can answer them.
    build_client = eris_client_factory(runtime, topology.shard_sizes,
                                       config.client_retry_timeout)
    clients = [build_client(f"client-{i + 1}")
               for i in range(n_clients)]

    if workload == "counters":
        workload_gen = CountersWorkload(
            CountersConfig(n_keys=n_keys,
                           multi_shard_fraction=distributed_fraction),
            Partitioner(n_shards), SplitRandom(seed))
    else:
        workload_gen = YCSBWorkload(
            YCSBConfig(workload=workload, n_keys=n_keys,
                       distributed_fraction=distributed_fraction),
            Partitioner(n_shards), SplitRandom(seed))
    stats = {"committed": 0, "aborted": 0, "retries": 0}

    def issue(client) -> None:
        op = workload_gen.next_op()
        client.submit(op, lambda result, c=client: done(c, result))

    def done(client, result: OpResult) -> None:
        stats["retries"] += result.retries
        if result.committed:
            stats["committed"] += 1
        else:
            stats["aborted"] += 1
        if stats["committed"] < min_commits:
            issue(client)

    launcher = ClusterLauncher(run_dir)
    spec = {"shards": n_shards, "replicas": n_replicas, "keys": n_keys,
            "seed": seed, "chain": chain, "wire": wire, "batch": batch,
            "fast_path": fast_path,
            "trace": trace, "metrics": metrics,
            "metrics_interval": metrics_interval, "run_dir": run_dir,
            "recorder_capacity": recorder_capacity,
            "timer_slack": timer_slack}
    interrupt = GracefulInterrupt()
    result = SmokeResult(committed=0, aborted=0, retries=0,
                         wall_seconds=0.0, packets_sent=0,
                         packets_delivered=0, processes=1 + len(roles),
                         run_dir=run_dir)
    recorder_path = os.path.join(run_dir, "recorder-0.jsonl")

    async def wait_until(predicate: Callable[[], bool],
                         deadline_s: float) -> bool:
        """Poll ``predicate`` while the loop serves UDP + control I/O;
        supervises children and honors interrupts on every tick."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + deadline_s
        while not predicate():
            launcher.check_children()
            if interrupt.triggered is not None:
                return False
            if loop.time() > deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def drive() -> tuple[list, list, float]:
        await launcher.open()
        launcher.spawn(roles, spec)
        await launcher.await_hellos()
        port_map = launcher.merged_port_map(dict(runtime._ports))
        runtime.install_port_map(launcher.host, port_map)
        runtime.start()
        if sampler is not None:
            sampler.start()
        await launcher.broadcast_start(port_map)
        # The controller worker broadcasts the sequencer route as it
        # starts; clients are useless until it lands here.
        routed = await wait_until(
            lambda: runtime.sequencer_address is not None, timeout)
        if not routed and interrupt.triggered is None:
            raise ExperimentError(
                f"no sequencer route reached the driver within "
                f"{timeout}s (logs in {run_dir})")

        start_t = runtime.now
        for client in clients:
            issue(client)
        if _mid_run is not None:
            _mid_run(launcher)
        reached = await wait_until(
            lambda: stats["committed"] >= min_commits, timeout)
        wall = runtime.now - start_t
        if (not reached and interrupt.triggered is None
                and stats["committed"] < min_commits):
            raise ExperimentError(
                f"only {stats['committed']}/{min_commits} transactions "
                f"committed within {timeout}s across "
                f"{result.processes} processes (logs in {run_dir})")
        replies = await launcher.collect_states(
            drain=3 * _UDP_ERIS["sync_interval"])
        acks = await launcher.shutdown()
        return replies, acks, wall

    replies: list = []
    acks: list = []
    try:
        with interrupt:
            replies, acks, wall = runtime.aloop.run_until_complete(
                drive())
        result.wall_seconds = wall
        result.committed = stats["committed"]
        result.aborted = stats["aborted"]
        result.retries = stats["retries"]
        totals: dict[str, int] = {}
        for reply in replies:
            for name, value in reply.counters:
                totals[name] = totals.get(name, 0) + value
        result.packets_sent = runtime.packets_sent + totals.get(
            "packets_sent", 0)
        result.packets_delivered = (runtime.packets_delivered
                                    + totals.get("packets_delivered", 0))
        result.frames_sent = runtime.frames_sent + totals.get(
            "frames_sent", 0)
        result.datagrams_sent = runtime.datagrams_sent + totals.get(
            "datagrams_sent", 0)

        merged_events = None
        if trace:
            driver_shard = os.path.join(run_dir, "trace-0.jsonl")
            tracer.export(driver_shard)
            shards = [driver_shard] + [
                os.path.join(run_dir, f"trace-{rank}.jsonl")
                for rank in sorted(launcher.workers)]
            shards = [s for s in shards if os.path.exists(s)]
            merged_path = os.path.join(run_dir, "trace-merged.jsonl")
            merged_events = merge_trace_shards(shards, merged_path)
            result.trace_path = merged_path
            result.trace_events = len(merged_events)

        if interrupt.triggered is not None:
            result.notes.append(
                f"interrupted by {interrupt.triggered}; checks skipped")
            result.checks_passed = False
            if len(recorder):
                recorder.dump(recorder_path,
                              reason=f"interrupted: {interrupt.triggered}",
                              context={"origin": "run_udp_smoke_mp"})
                result.recorder_dump = recorder_path
            return result

        if check:
            snapshots = [snap for reply in replies
                         for snap in reply.snapshots]
            cluster = SnapshotCluster(snapshots)
            run_all_checks(cluster, trace=merged_events,
                           recorder=recorder,
                           recorder_path=recorder_path)
            result.notes.append(
                f"§6.7 invariant checks passed on merged state from "
                f"{len(replies)} workers")
        return result
    except InvariantViolation:
        result.checks_passed = False
        if len(recorder):
            result.recorder_dump = recorder_path
        raise
    except Exception as exc:
        result.checks_passed = False
        launcher.emergency_teardown()
        if len(recorder):
            recorder.dump(recorder_path, reason=str(exc),
                          context={"origin": "run_udp_smoke_mp"})
            result.recorder_dump = recorder_path
        raise
    finally:
        if sampler is not None:
            sampler.stop()
            metrics_path = os.path.join(run_dir, "metrics-0.jsonl")
            result.metrics_samples = sampler.export(metrics_path)
            result.metrics_path = metrics_path
        runtime.stop()
