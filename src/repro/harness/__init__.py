"""Experiment harness: build clusters, drive closed-loop load, check
invariants, and format results (§8 methodology).

- :mod:`repro.harness.cluster` — wires up any of the six systems
  (eris, eris-oum, granola, tapir, lockstore, ntur) on the simulated
  fabric and exposes a uniform client interface.
- :mod:`repro.harness.experiment` — warmup/measure closed-loop runs.
- :mod:`repro.harness.checkers` — serializability / atomicity /
  replica-consistency checkers over recorded executions.
- :mod:`repro.harness.faults` — drop-rate injection, sequencer and
  replica kills.
- :mod:`repro.harness.results` — text tables for benchmark output.
- :mod:`repro.harness.udp_smoke` — Eris over real UDP loopback sockets
  (the asyncio runtime backend) with invariant checks.
- :mod:`repro.harness.mp_smoke` — the same smoke as a process-per-node
  cluster driven by the launcher, checked on merged snapshots.
"""

from repro.harness.cluster import Cluster, ClusterConfig, build_cluster
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    failover_window,
    run_experiment,
    run_failover_experiment,
)
from repro.harness.checkers import (
    check_atomicity,
    check_replica_consistency,
    check_serializability,
    check_trace_atomicity,
    check_trace_chain_gapless_logs,
    check_trace_chain_no_stale_release,
    check_trace_chain_stamp_monotonicity,
    check_trace_replica_consistency,
    check_trace_serializability,
    run_all_checks,
    run_trace_checks,
)
from repro.harness.faults import FaultPlan
from repro.harness.results import format_metrics, format_table
from repro.harness.udp_smoke import SmokeResult, run_udp_smoke
from repro.harness.mp_smoke import run_udp_smoke_mp

__all__ = [
    "Cluster",
    "ClusterConfig",
    "build_cluster",
    "ExperimentConfig",
    "ExperimentResult",
    "failover_window",
    "run_experiment",
    "run_failover_experiment",
    "check_atomicity",
    "check_replica_consistency",
    "check_serializability",
    "check_trace_atomicity",
    "check_trace_chain_gapless_logs",
    "check_trace_chain_no_stale_release",
    "check_trace_chain_stamp_monotonicity",
    "check_trace_replica_consistency",
    "check_trace_serializability",
    "run_trace_checks",
    "FaultPlan",
    "format_metrics",
    "format_table",
    "SmokeResult",
    "run_udp_smoke",
    "run_udp_smoke_mp",
]
