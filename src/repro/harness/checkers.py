"""Correctness checkers for Eris executions (§6.7 invariants).

Two interchangeable evidence sources:

- **replica state** — a finished cluster's logs and stores (the
  original checkers);
- **a causal trace** — the ``log_append`` / ``log_adopt`` event stream
  recorded by :class:`repro.obs.trace.Tracer`, so the same invariants
  are checkable on an exported JSONL file long after the cluster is
  gone, and on executions reconstructed event-by-event rather than from
  end state.

The invariants:

- **serializability** — build the cross-shard precedence graph over
  transactions from each shard's committed log order; strict
  serializability requires it be acyclic (checked with networkx). This
  is the executable counterpart of the paper's second §6.7 invariant.
- **atomicity** — a transaction committed at any participant appears in
  the log of *every* participant shard.
- **replica consistency** — within each shard, all replicas' logs are
  prefix-consistent (and, state-side, executed stores converge after a
  drain).
"""

from __future__ import annotations

from typing import Any, Optional, Union

import networkx as nx

from repro.core.replica import ErisReplica
from repro.core.transaction import TxnId
from repro.errors import InvariantViolation
from repro.harness.cluster import Cluster
from repro.obs.trace import TraceEvent, Tracer, load_trace


def _eris_like(replica) -> bool:
    """Checker admission: a real replica object, or a rehydrated
    multi-process :class:`~repro.harness.snapshot.SnapshotReplica`
    (marked ``eris_like``) exposing the same checker-facing surface."""
    return isinstance(replica, ErisReplica) or \
        getattr(replica, "eris_like", False)


def _live_dl(shard: int, replicas) -> ErisReplica:
    """The live replica that is DL in the *highest* view among live
    replicas — a crashed old DL may still believe it leads its view."""
    live = [r for r in replicas
            if _eris_like(r) and not r.crashed]
    if not live:
        raise InvariantViolation(f"shard {shard} has no live replicas")
    top_view = max(r.view_num for r in live)
    for replica in live:
        if replica.view_num == top_view and replica.is_dl:
            return replica
    raise InvariantViolation(f"shard {shard} has no live DL")


def _shard_txn_orders(cluster: Cluster) -> dict[int, list[TxnId]]:
    """Per shard, the txn-ids in the DL's log order (NO-OPs skipped).

    A retried transaction can occupy two slots (the client's retry gets
    a fresh stamp; execution suppresses the duplicate via the
    at-most-once table) — only the first occurrence is the
    serialization point, so later duplicates are dropped here.
    """
    orders: dict[int, list[TxnId]] = {}
    for shard, replicas in cluster.replicas.items():
        dl = _live_dl(shard, replicas)
        seen: set[TxnId] = set()
        order: list[TxnId] = []
        for entry in dl.log:
            if entry.kind != "txn":
                continue
            txn_id = entry.record.txn.txn_id
            if txn_id in seen:
                continue
            seen.add(txn_id)
            order.append(txn_id)
        orders[shard] = order
    return orders


def check_serializability(cluster: Cluster) -> None:
    """Raise :class:`InvariantViolation` if the cross-shard precedence
    graph has a cycle."""
    orders = _shard_txn_orders(cluster)
    graph = nx.DiGraph()
    for order in orders.values():
        for earlier, later in zip(order, order[1:]):
            # Consecutive edges suffice: shard order is total, so the
            # transitive closure covers all same-shard pairs.
            graph.add_edge(earlier, later)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return
    raise InvariantViolation(
        f"precedence cycle across shards: {cycle[:10]}")


def check_atomicity(cluster: Cluster) -> None:
    """Every logged transaction appears at every participant shard."""
    orders = _shard_txn_orders(cluster)
    logged: dict[int, set[TxnId]] = {shard: set(order)
                                     for shard, order in orders.items()}
    for shard, replicas in cluster.replicas.items():
        dl = _live_dl(shard, replicas)
        for entry in dl.log:
            if entry.kind != "txn":
                continue
            txn = entry.record.txn
            for participant in txn.participants:
                if participant not in logged:
                    continue
                if txn.txn_id not in logged[participant]:
                    raise InvariantViolation(
                        f"txn {txn.txn_id} logged at shard {shard} but "
                        f"missing at participant shard {participant}")


def check_replica_consistency(cluster: Cluster) -> None:
    """Within each shard: logs are prefix-consistent; stores of fully
    caught-up replicas match the DL's."""
    for shard, replicas in cluster.replicas.items():
        eris = [r for r in replicas if _eris_like(r) and not r.crashed]
        if not eris:
            continue
        dl = _live_dl(shard, replicas)
        reference = dl.log.entries()
        for replica in eris:
            for mine, ref in zip(replica.log.entries(), reference):
                if (mine.slot, mine.kind) != (ref.slot, ref.kind):
                    raise InvariantViolation(
                        f"log divergence in shard {shard} at index "
                        f"{mine.index}: {replica.address} has "
                        f"{(mine.slot, mine.kind)}, DL has "
                        f"{(ref.slot, ref.kind)}")
            if len(replica._fed) == len(reference) and \
                    not getattr(replica, "_early_unconfirmed", ()) and \
                    replica.store.snapshot() != dl.store.snapshot():
                raise InvariantViolation(
                    f"store divergence in shard {shard}: "
                    f"{replica.address} executed the full log but its "
                    f"state differs from the DL's")


# -- trace-backed checkers -------------------------------------------------

#: What the trace checkers accept: a JSONL path, a live Tracer, or a
#: sequence of TraceEvent objects / flat event dicts.
TraceLike = Union[str, Tracer, list]


def _trace_events(trace: TraceLike) -> list[dict]:
    if isinstance(trace, str):
        trace = load_trace(trace)
    if isinstance(trace, Tracer):
        trace = trace.events
    flat = [e.to_dict() if isinstance(e, TraceEvent) else e for e in trace]
    # Tolerate metadata lines (flight-recorder dump headers have no
    # "kind"): the checkers consume only event records.
    return [e for e in flat if "kind" in e]


def trace_replica_orders(trace: TraceLike
                         ) -> dict[int, dict[str, list[tuple]]]:
    """Per shard, per replica, the log as ``(slot, kind, txn)`` tuples
    in append order, reconstructed from ``log_append`` events with
    ``log_adopt`` (view/epoch-change log replacement) applied."""
    orders: dict[int, dict[str, list[tuple]]] = {}
    for event in _trace_events(trace):
        kind = event["kind"]
        if kind == "log_append":
            shard_orders = orders.setdefault(event["shard"], {})
            shard_orders.setdefault(event["node"], []).append(
                (tuple(event["slot"]), event["entry_kind"], event["txn"]))
        elif kind == "log_adopt":
            shard_orders = orders.setdefault(event["shard"], {})
            shard_orders[event["node"]] = [
                (tuple(slot), entry_kind, txn)
                for _index, entry_kind, txn, slot in event["entries"]]
    return orders


def _trace_participants(trace: TraceLike) -> dict[str, tuple]:
    """txn label → participant shards, from ``log_append`` events."""
    participants: dict[str, tuple] = {}
    for event in _trace_events(trace):
        if event["kind"] == "log_append" and event.get("txn") is not None \
                and "participants" in event:
            participants[event["txn"]] = tuple(event["participants"])
    return participants


def _trace_shard_txn_orders(orders: dict[int, dict[str, list[tuple]]],
                            crashed: set[str] = frozenset()
                            ) -> dict[int, list[str]]:
    """Per shard, the deduplicated txn order of the longest *live*
    replica log (mirrors the state checkers' use of the most advanced
    live replica)."""
    out: dict[int, list[str]] = {}
    for shard, replica_orders in orders.items():
        live = [order for node, order in replica_orders.items()
                if node not in crashed]
        longest = max(live, key=len, default=[])
        seen: set[str] = set()
        order: list[str] = []
        for _slot, entry_kind, txn in longest:
            if entry_kind != "txn" or txn in seen:
                continue
            seen.add(txn)
            order.append(txn)
        out[shard] = order
    return out


def _trace_crashed_nodes(trace: TraceLike) -> set[str]:
    return {e["node"] for e in _trace_events(trace) if e["kind"] == "crash"}


def check_trace_replica_consistency(trace: TraceLike) -> None:
    """Within each shard, every pair of recorded replica logs must be
    prefix-consistent on (slot, kind). Crashed replicas are excluded
    (mirroring the state checkers): a dead DL's final appends may
    legitimately be superseded by the view/epoch change that buried it.
    """
    events = _trace_events(trace)
    crashed = _trace_crashed_nodes(events)
    for shard, replica_orders in trace_replica_orders(events).items():
        nodes = sorted(n for n in replica_orders if n not in crashed)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                for index, (mine, theirs) in enumerate(
                        zip(replica_orders[a], replica_orders[b])):
                    if mine[:2] != theirs[:2]:
                        raise InvariantViolation(
                            f"trace log divergence in shard {shard} at "
                            f"index {index + 1}: {a} has {mine[:2]}, "
                            f"{b} has {theirs[:2]}")


def check_trace_serializability(trace: TraceLike) -> None:
    """Cross-shard precedence graph over the traced per-shard commit
    orders must be acyclic."""
    events = _trace_events(trace)
    orders = _trace_shard_txn_orders(trace_replica_orders(events),
                                     _trace_crashed_nodes(events))
    graph = nx.DiGraph()
    for order in orders.values():
        for earlier, later in zip(order, order[1:]):
            graph.add_edge(earlier, later)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return
    raise InvariantViolation(
        f"trace precedence cycle across shards: {cycle[:10]}")


def check_trace_atomicity(trace: TraceLike) -> None:
    """A traced transaction logged at any shard appears at every
    participant shard."""
    events = _trace_events(trace)
    orders = _trace_shard_txn_orders(trace_replica_orders(events),
                                     _trace_crashed_nodes(events))
    participants = _trace_participants(events)
    logged = {shard: set(order) for shard, order in orders.items()}
    for shard, order in orders.items():
        for txn in order:
            for participant in participants.get(txn, ()):
                if participant not in logged:
                    continue
                if txn not in logged[participant]:
                    raise InvariantViolation(
                        f"trace: txn {txn} logged at shard {shard} but "
                        f"missing at participant shard {participant}")


# -- chain-replicated sequencer invariants ---------------------------------
#
# These only apply to traces from chain-mode clusters (they key on the
# ``chain_release`` / ``chain_repair`` events the chain emits); on any
# other trace they are vacuous no-ops.

def _has_chain_events(events: list[dict]) -> bool:
    return any(e["kind"] in ("chain_release", "chain_repair")
               for e in events)


def check_trace_chain_stamp_monotonicity(trace: TraceLike) -> None:
    """Stamps stay monotonic across splice repairs: per (epoch, group),
    no sequence number is ever released twice, and a release by a
    repaired chain (higher version) is strictly greater than everything
    any older version released — repair carries the surviving tail's
    counters forward, so a regression means a re-assigned sequence
    number escaped the fence. Within one version, *release order* may
    legitimately be inverted by non-FIFO links (receivers reorder by
    the stamp itself), so only duplication and cross-repair regression
    are violations."""
    events = _trace_events(trace)
    released: dict[tuple[int, int], set[int]] = {}
    high_water: dict[tuple[int, int], dict[int, int]] = {}
    for event in events:
        if event["kind"] != "chain_release":
            continue
        epoch, version = event["epoch"], event["version"]
        for group, seq in event["stamps"]:
            key = (epoch, group)
            seen = released.setdefault(key, set())
            if seq in seen:
                raise InvariantViolation(
                    f"duplicate chain release: epoch {epoch} group "
                    f"{group} seq {seq} released twice "
                    f"(node {event['node']}, version {version})")
            seen.add(seq)
            by_version = high_water.setdefault(key, {})
            for older, top in by_version.items():
                if older < version and seq <= top:
                    raise InvariantViolation(
                        f"chain stamp regression across repair: epoch "
                        f"{epoch} group {group} version {version} "
                        f"released seq {seq}, but version {older} had "
                        f"already released up to {top} "
                        f"(node {event['node']})")
            if seq > by_version.get(version, 0):
                by_version[version] = seq


def check_trace_chain_gapless_logs(trace: TraceLike) -> None:
    """No replica's final log contains a duplicate or internally
    skipped sequence number (per epoch). Externally-lost stamps become
    NO-OP entries via the §6.3/§6.5 drop machinery, so any *internal*
    gap or duplicate in a replica group's observed sequence means chain
    repair leaked or replayed a stamp."""
    events = _trace_events(trace)
    if not _has_chain_events(events):
        return
    crashed = _trace_crashed_nodes(events)
    for shard, replica_orders in trace_replica_orders(events).items():
        for node, order in replica_orders.items():
            if node in crashed:
                continue
            per_epoch: dict[int, list[int]] = {}
            for slot, _entry_kind, _txn in order:
                _shard, epoch, seq = slot
                per_epoch.setdefault(epoch, []).append(seq)
            for epoch, seqs in per_epoch.items():
                if len(set(seqs)) != len(seqs):
                    dup = sorted(s for s in set(seqs) if seqs.count(s) > 1)
                    raise InvariantViolation(
                        f"shard {shard} replica {node} observed duplicate "
                        f"sequence number(s) {dup[:5]} in epoch {epoch}")
                expected = set(range(min(seqs), max(seqs) + 1))
                missing = sorted(expected - set(seqs))
                if missing:
                    raise InvariantViolation(
                        f"shard {shard} replica {node} skipped sequence "
                        f"number(s) {missing[:5]} in epoch {epoch}")


def check_trace_chain_no_stale_release(trace: TraceLike) -> None:
    """After a splice repair installs chain version V, no release
    carrying a version < V may appear — a stale (spliced-out) tail that
    keeps serving stamps after repair is exactly the failure the
    install fence exists to prevent."""
    events = _trace_events(trace)
    repaired_version = 0
    for event in events:
        kind = event["kind"]
        if kind == "chain_repair":
            repaired_version = max(repaired_version, event["version"])
        elif kind == "chain_release" \
                and event["version"] < repaired_version:
            raise InvariantViolation(
                f"stale-tail release: node {event['node']} released "
                f"stamps {event['stamps']} at chain version "
                f"{event['version']} after repair installed version "
                f"{repaired_version}")


# -- coordination-free fast-path invariants --------------------------------
#
# These key on the ``fast_read`` / ``early_apply`` events the fast
# paths emit (knobs on); on any other trace they are vacuous no-ops.
# The sequencer's ``stamp`` events carry the ground truth they check
# against: each stamped transaction's op-class and declared write set.

def _fastpath_shard_members(events: list[dict]) -> dict[int, set[str]]:
    """Shard -> every replica that ever appended or applied for it.
    Pre-scanned over the whole trace so a replica that lags at the time
    of a fast read still counts toward the coverage requirement."""
    members: dict[int, set[str]] = {}
    for event in events:
        if event["kind"] in ("log_append", "apply"):
            members.setdefault(event["shard"], set()).add(event["node"])
    return members


def check_trace_fast_reads(trace: TraceLike) -> None:
    """No fast read observes a dirty key (§3 external consistency under
    the Harmonia read path).

    A ``fast_read`` event names the keys served and the shard. Walking
    the trace in order: every earlier-stamped non-READ_ONLY transaction
    whose declared write set intersects those keys — or whose write set
    was undeclared (blind) — must already carry an ``apply`` event at
    *every* non-crashed replica of the shard. Application at a later
    epoch also covers (entering epoch e+1 means the FC-rebuilt log
    resolved every epoch-e stamp as applied or permanently dropped, and
    a perm-dropped write never committed).
    """
    events = _trace_events(trace)
    members = _fastpath_shard_members(events)
    #: group -> list of in-flight writes [epoch, seq, write_keys|None]
    writes: dict[int, list] = {}
    #: (group, node) -> highest applied (epoch, seq), lexicographic
    applied: dict[tuple[int, str], tuple[int, int]] = {}
    crashed: set[str] = set()

    def covered(group: int, epoch: int, seq: int) -> bool:
        need = members.get(group, set()) - crashed
        return bool(need) and all(
            applied.get((group, node), (0, 0)) >= (epoch, seq)
            for node in need)

    for event in events:
        kind = event["kind"]
        if kind == "crash":
            crashed.add(event["node"])
        elif kind == "stamp" and event.get("op_class") not in (None,
                                                               "read_only"):
            write_keys = event.get("write_keys") or None
            for group, seq in event["stamps"]:
                writes.setdefault(group, []).append(
                    [event["epoch"], seq, write_keys])
        elif kind == "apply":
            _shard, epoch, seq = event["slot"]
            key = (event["shard"], event["node"])
            if (epoch, seq) > applied.get(key, (0, 0)):
                applied[key] = (epoch, seq)
        elif kind == "fast_read":
            group = event["shard"]
            read_keys = set(event["keys"])
            in_flight = writes.get(group, [])
            remaining = []
            for record in in_flight:
                epoch, seq, write_keys = record
                if covered(group, epoch, seq):
                    continue  # applied everywhere: no longer in flight
                remaining.append(record)
                if write_keys is not None and not read_keys & set(write_keys):
                    continue  # disjoint declared write set: no conflict
                raise InvariantViolation(
                    f"dirty fast read: {event['node']} served txn "
                    f"{event['txn']} keys {sorted(read_keys)} on shard "
                    f"{group} while the "
                    f"{'blind ' if write_keys is None else ''}write at "
                    f"(epoch {epoch}, seq {seq}) was not yet applied at "
                    f"every replica")
            writes[group] = remaining


def check_trace_commutative_applies(trace: TraceLike) -> None:
    """Out-of-order application is confined to COMMUTATIVE transactions
    behind their reorder barrier (§3.2 relaxation).

    For every ``early_apply`` event: the applied transaction's stamped
    op-class must be ``commutative``, and the barrier — both the one
    the event records and the one recomputed from the stamp stream (the
    last non-commutative stamp below the applied sequence number) —
    must be below the replica's in-order point, so every jumped slot is
    known commutative with the applied transaction.
    """
    events = _trace_events(trace)
    op_classes: dict[str, str] = {}
    #: (epoch, group) -> [(seq, op_class), ...] in stamp order
    stamp_streams: dict[tuple[int, int], list[tuple[int, str]]] = {}
    for event in events:
        if event["kind"] != "stamp":
            continue
        op_class = event.get("op_class", "generic")
        if event.get("txn") is not None:
            op_classes[event["txn"]] = op_class
        for group, seq in event["stamps"]:
            stamp_streams.setdefault((event["epoch"], group), []).append(
                (seq, op_class))
    for event in events:
        if event["kind"] != "early_apply":
            continue
        group, epoch, seq = event["slot"]
        txn = event["txn"]
        op_class = op_classes.get(txn)
        if op_class != "commutative":
            raise InvariantViolation(
                f"non-commutative early apply: {event['node']} applied "
                f"txn {txn} (stamped op-class {op_class!r}) out of order "
                f"at (epoch {epoch}, group {group}, seq {seq})")
        next_seq = event["next_seq"]
        if event["barrier"] >= next_seq:
            raise InvariantViolation(
                f"early apply past its barrier: {event['node']} applied "
                f"txn {txn} at seq {seq} with barrier "
                f"{event['barrier']} >= in-order point {next_seq}")
        true_barrier = max(
            (s for s, oc in stamp_streams.get((epoch, group), ())
             if s < seq and oc != "commutative"), default=0)
        if true_barrier >= next_seq:
            raise InvariantViolation(
                f"early apply jumped a non-commutative slot: "
                f"{event['node']} applied txn {txn} at seq {seq} over "
                f"the non-commutative stamp at seq {true_barrier} "
                f">= in-order point {next_seq}")


def run_trace_checks(trace: TraceLike) -> None:
    """All trace-backed invariant checks on one event stream."""
    events = _trace_events(trace)
    check_trace_replica_consistency(events)
    check_trace_serializability(events)
    check_trace_atomicity(events)
    check_trace_chain_stamp_monotonicity(events)
    check_trace_chain_gapless_logs(events)
    check_trace_chain_no_stale_release(events)
    check_trace_fast_reads(events)
    check_trace_commutative_applies(events)


def run_all_checks(cluster: Optional[Cluster] = None,
                   trace: Optional[TraceLike] = None,
                   recorder: Optional[Any] = None,
                   recorder_path: str = "flight-recorder.jsonl") -> None:
    """Run every applicable invariant check.

    ``cluster`` drives the state-based checkers; ``trace`` (a JSONL
    path, a live Tracer, or an event list) additionally drives the
    trace-backed checkers. Passing a traced cluster alone checks its
    live tracer too.

    ``recorder`` (a :class:`repro.obs.recorder.FlightRecorder`) is the
    black-box hook: when any check raises, the recorder's ring is
    dumped to ``recorder_path`` before the violation propagates, so
    the events leading up to the failure survive the crash.
    """
    if cluster is None and trace is None:
        raise ValueError("run_all_checks needs a cluster, a trace, or both")
    try:
        if cluster is not None:
            check_serializability(cluster)
            check_atomicity(cluster)
            check_replica_consistency(cluster)
            if trace is None and cluster.tracer is not None:
                trace = cluster.tracer
        if trace is not None:
            run_trace_checks(trace)
    except InvariantViolation as exc:
        if recorder is not None and len(recorder):
            recorder.dump(recorder_path, reason=str(exc),
                          context={"origin": "run_all_checks"})
        raise
