"""Correctness checkers for Eris executions (§6.7 invariants).

These operate on a finished cluster's replica state:

- **serializability** — build the cross-shard precedence graph over
  transactions from each shard's committed log order; strict
  serializability requires it be acyclic (checked with networkx). This
  is the executable counterpart of the paper's second §6.7 invariant.
- **atomicity** — a transaction committed at any participant appears in
  the log of *every* participant shard.
- **replica consistency** — within each shard, all replicas' logs are
  prefix-consistent and executed stores converge after a drain.
"""

from __future__ import annotations

import networkx as nx

from repro.core.replica import ErisReplica
from repro.core.transaction import TxnId
from repro.errors import InvariantViolation
from repro.harness.cluster import Cluster


def _live_dl(shard: int, replicas) -> ErisReplica:
    """The live replica that is DL in the *highest* view among live
    replicas — a crashed old DL may still believe it leads its view."""
    live = [r for r in replicas
            if isinstance(r, ErisReplica) and not r.crashed]
    if not live:
        raise InvariantViolation(f"shard {shard} has no live replicas")
    top_view = max(r.view_num for r in live)
    for replica in live:
        if replica.view_num == top_view and replica.is_dl:
            return replica
    raise InvariantViolation(f"shard {shard} has no live DL")


def _shard_txn_orders(cluster: Cluster) -> dict[int, list[TxnId]]:
    """Per shard, the txn-ids in the DL's log order (NO-OPs skipped).

    A retried transaction can occupy two slots (the client's retry gets
    a fresh stamp; execution suppresses the duplicate via the
    at-most-once table) — only the first occurrence is the
    serialization point, so later duplicates are dropped here.
    """
    orders: dict[int, list[TxnId]] = {}
    for shard, replicas in cluster.replicas.items():
        dl = _live_dl(shard, replicas)
        seen: set[TxnId] = set()
        order: list[TxnId] = []
        for entry in dl.log:
            if entry.kind != "txn":
                continue
            txn_id = entry.record.txn.txn_id
            if txn_id in seen:
                continue
            seen.add(txn_id)
            order.append(txn_id)
        orders[shard] = order
    return orders


def check_serializability(cluster: Cluster) -> None:
    """Raise :class:`InvariantViolation` if the cross-shard precedence
    graph has a cycle."""
    orders = _shard_txn_orders(cluster)
    graph = nx.DiGraph()
    for order in orders.values():
        for earlier, later in zip(order, order[1:]):
            # Consecutive edges suffice: shard order is total, so the
            # transitive closure covers all same-shard pairs.
            graph.add_edge(earlier, later)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return
    raise InvariantViolation(
        f"precedence cycle across shards: {cycle[:10]}")


def check_atomicity(cluster: Cluster) -> None:
    """Every logged transaction appears at every participant shard."""
    orders = _shard_txn_orders(cluster)
    logged: dict[int, set[TxnId]] = {shard: set(order)
                                     for shard, order in orders.items()}
    for shard, replicas in cluster.replicas.items():
        dl = _live_dl(shard, replicas)
        for entry in dl.log:
            if entry.kind != "txn":
                continue
            txn = entry.record.txn
            for participant in txn.participants:
                if participant not in logged:
                    continue
                if txn.txn_id not in logged[participant]:
                    raise InvariantViolation(
                        f"txn {txn.txn_id} logged at shard {shard} but "
                        f"missing at participant shard {participant}")


def check_replica_consistency(cluster: Cluster) -> None:
    """Within each shard: logs are prefix-consistent; stores of fully
    caught-up replicas match the DL's."""
    for shard, replicas in cluster.replicas.items():
        eris = [r for r in replicas if isinstance(r, ErisReplica)
                and not r.crashed]
        if not eris:
            continue
        dl = _live_dl(shard, replicas)
        reference = dl.log.entries()
        for replica in eris:
            for mine, ref in zip(replica.log.entries(), reference):
                if (mine.slot, mine.kind) != (ref.slot, ref.kind):
                    raise InvariantViolation(
                        f"log divergence in shard {shard} at index "
                        f"{mine.index}: {replica.address} has "
                        f"{(mine.slot, mine.kind)}, DL has "
                        f"{(ref.slot, ref.kind)}")
            if len(replica._fed) == len(reference) and \
                    replica.store.snapshot() != dl.store.snapshot():
                raise InvariantViolation(
                    f"store divergence in shard {shard}: "
                    f"{replica.address} executed the full log but its "
                    f"state differs from the DL's")


def run_all_checks(cluster: Cluster) -> None:
    check_serializability(cluster)
    check_atomicity(cluster)
    check_replica_consistency(cluster)
