"""Scheduled fault injection for the §8.3 resilience experiments.

A :class:`FaultPlan` schedules mutations of a running cluster at
absolute simulation times: packet-drop rates (Figure 13), sequencer
kills triggering controller failover + epoch change (Figure 14),
replica kills triggering DL view changes.
"""

from __future__ import annotations

from repro.harness.cluster import Cluster


class FaultPlan:
    """Queue of timed fault actions against one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.injected: list[tuple[float, str]] = []

    def _log(self, label: str) -> None:
        self.injected.append((self.cluster.loop.now, label))

    def set_drop_rate_at(self, at_time: float, rate: float) -> "FaultPlan":
        def apply() -> None:
            self.cluster.set_drop_rate(rate)
            self._log(f"drop_rate={rate}")
        self.cluster.loop.schedule_at(at_time, apply)
        return self

    def kill_sequencer_at(self, at_time: float) -> "FaultPlan":
        def apply() -> None:
            self.cluster.crash_active_sequencer()
            self._log("sequencer-killed")
        self.cluster.loop.schedule_at(at_time, apply)
        return self

    def kill_chain_node_at(self, at_time: float, index: int) -> "FaultPlan":
        def apply() -> None:
            self.cluster.crash_chain_node(index)
            self._log(f"chain-node-killed index={index}")
        self.cluster.loop.schedule_at(at_time, apply)
        return self

    def kill_replica_at(self, at_time: float, shard: int,
                        index: int) -> "FaultPlan":
        def apply() -> None:
            self.cluster.crash_replica(shard, index)
            self._log(f"replica-killed shard={shard} index={index}")
        self.cluster.loop.schedule_at(at_time, apply)
        return self
