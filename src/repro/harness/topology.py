"""Static Eris topology: addresses and roles derived from the config.

One deployment shape, two consumers. The single-process builders in
:mod:`repro.harness.cluster` construct every protocol object in one
runtime; the multi-process launcher (:mod:`repro.runtime.launcher`)
spawns one OS process per **role** and each worker constructs only its
own slice. Both must agree exactly on the address plan — replica group
membership, sequencer names, the FC and controller addresses — because
those strings are what travels in packets. Deriving everything from
:class:`~repro.harness.cluster.ClusterConfig` here makes the agreement
structural rather than conventional.

A *role* is a string naming one process's responsibility:

========================  ==============================================
role                       hosts
========================  ==============================================
``replica:<shard>:<i>``    one :class:`~repro.core.replica.ErisReplica`
``chain:<i>``              one chain-replicated sequencer element
``seq:<i>``                one multi-sequencer (primary or standby)
``controller``             the SDN controller
``fc``                     the failure coordinator
========================  ==============================================

The driver process (rank 0) hosts the clients and is not a role.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ErisTopology:
    """The complete address plan of one Eris deployment."""

    #: shard -> replica addresses, in replica-index order.
    shard_addrs: dict[int, list[str]]
    #: Chain-replicated sequencer elements, head first (empty = no chain).
    chain_addrs: tuple[str, ...]
    #: Multi-sequencers (primary + epoch-fallback standbys).
    standby_addrs: tuple[str, ...]
    fc_address: str = "fc"
    controller_address: str = "controller"

    @property
    def shard_sizes(self) -> dict[int, int]:
        return {shard: len(addrs)
                for shard, addrs in self.shard_addrs.items()}


def eris_topology(config) -> ErisTopology:
    """Derive the address plan from a ``ClusterConfig`` — the same
    names, in the same order, as the single-process ``_build_eris``."""
    shard_addrs = {
        shard: [f"eris-r{shard}.{i}" for i in range(config.n_replicas)]
        for shard in range(config.n_shards)
    }
    chain_addrs = tuple(f"chain{i}" for i in range(config.sequencer_chain))
    standby_addrs = tuple(f"seq{i}"
                          for i in range(max(1, config.n_sequencers)))
    return ErisTopology(shard_addrs=shard_addrs, chain_addrs=chain_addrs,
                        standby_addrs=standby_addrs)


def topology_roles(topology: ErisTopology) -> list[str]:
    """Every worker role of the deployment, in spawn order (stable:
    the launcher's rank assignment and the trace shards' cause-id
    spaces both key off this order)."""
    roles = [f"replica:{shard}:{index}"
             for shard, addrs in sorted(topology.shard_addrs.items())
             for index in range(len(addrs))]
    roles += [f"chain:{i}" for i in range(len(topology.chain_addrs))]
    roles += [f"seq:{i}" for i in range(len(topology.standby_addrs))]
    roles += [topology.controller_address, topology.fc_address]
    return roles


def role_addresses(topology: ErisTopology, role: str) -> list[str]:
    """The protocol addresses a role hosts."""
    kind, _, rest = role.partition(":")
    if kind == "replica":
        shard, index = (int(part) for part in rest.split(":"))
        return [topology.shard_addrs[shard][index]]
    if kind == "chain":
        return [topology.chain_addrs[int(rest)]]
    if kind == "seq":
        return [topology.standby_addrs[int(rest)]]
    if kind == "controller":
        return [topology.controller_address]
    if kind == "fc":
        return [topology.fc_address]
    raise ConfigurationError(f"unknown role {role!r}")


def define_groups(runtime, topology: ErisTopology) -> None:
    """Install the groupcast membership map. Every process needs it:
    sequencers fan stamped copies out by group, and the launcher's
    port map is keyed by the same addresses."""
    for shard, addrs in topology.shard_addrs.items():
        runtime.groups.define(shard, addrs)


def load_shard_store(store, partitioner, shard: int, n_keys: int) -> None:
    """Worker-side YCSB load: only this shard's keys. The whole-cluster
    loader (:func:`repro.workloads.ycsb.load_ycsb`) walks a stores dict
    covering every shard; a replica worker holds exactly one store."""
    for key in range(n_keys):
        if partitioner.shard_of(key) == shard:
            store.put(key, 0)


def build_worker_role(role: str, config, topology: ErisTopology,
                      runtime, registry, partitioner,
                      n_keys: int) -> dict:
    """Construct one role's protocol objects on ``runtime``.

    Returns a dict with whichever of ``replicas`` / ``sequencers`` /
    ``controller`` / ``fc`` the role hosts, so the worker can snapshot,
    instrument, and (for the controller) start them. The objects are
    the unmodified protocol classes — nothing here knows it is running
    multi-process; location transparency comes entirely from the
    runtime's wire-based address resolution.
    """
    from repro.core.fc import FailureCoordinator
    from repro.core.replica import ErisReplica
    from repro.net.controller import SDNController
    from repro.net.sequencer import MultiSequencer
    from repro.store.kv import KVStore

    from repro.harness.cluster import _PROFILES

    built: dict = {"replicas": [], "sequencers": [],
                   "controller": None, "fc": None}
    profile = _PROFILES[config.sequencer_profile]()
    kind, _, rest = role.partition(":")
    if kind == "replica":
        shard, index = (int(part) for part in rest.split(":"))
        addrs = topology.shard_addrs[shard]
        store = KVStore()
        load_shard_store(store, partitioner, shard, n_keys)
        eris_config = config.eris
        eris_config.execution_cost = config.execution_cost
        eris_config.read_fast_path = config.read_fast_path
        eris_config.commutative_apply = config.commutative_apply
        replica = ErisReplica(
            addrs[index], runtime, shard, index, addrs,
            topology.fc_address, store, registry,
            owns=partitioner.owns_fn(shard), config=eris_config)
        replica.msg_service_time = config.server_service_time
        built["replicas"].append(replica)
    elif kind == "chain":
        from repro.net.chainseq import ChainSequencerNode
        node = ChainSequencerNode(
            topology.chain_addrs[int(rest)], runtime, profile,
            stamp_batch=config.sequencer_batch,
            pipeline=config.chain_pipeline,
            read_fast_path=config.read_fast_path,
            commutative_apply=config.commutative_apply)
        built["sequencers"].append(node)
    elif kind == "seq":
        sequencer = MultiSequencer(
            topology.standby_addrs[int(rest)], runtime, profile,
            stamp_batch=config.sequencer_batch,
            read_fast_path=config.read_fast_path,
            commutative_apply=config.commutative_apply)
        built["sequencers"].append(sequencer)
    elif kind == "controller":
        built["controller"] = SDNController(
            topology.controller_address, runtime,
            sequencers=list(topology.standby_addrs),
            config=config.controller,
            chain=list(topology.chain_addrs) or None)
    elif kind == "fc":
        fc = FailureCoordinator(topology.fc_address, runtime,
                                shards=topology.shard_addrs)
        fc.msg_service_time = config.server_service_time
        built["fc"] = fc
    else:
        raise ConfigurationError(f"unknown role {role!r}")
    return built
