"""Plain-text result tables for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report, alongside the paper's reference values, so EXPERIMENTS.md can
record paper-vs-measured without extra tooling.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) if _numericish(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "") \
        .replace("x", "").replace("%", "")
    return stripped.isdigit()


def write_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence],
              append: bool = False) -> None:
    """Write (or append) rows as CSV; the header is emitted only when
    creating the file, so sweeps can accumulate into one file."""
    import csv
    import os
    fresh = not (append and os.path.exists(path))
    mode = "a" if append else "w"
    with open(path, mode, newline="") as handle:
        writer = csv.writer(handle)
        if fresh:
            writer.writerow(headers)
        writer.writerows(rows)


def format_metrics(snapshot: dict, title: str = "metrics") -> str:
    """Render a :meth:`Cluster.metrics_snapshot` as one per-component
    table. Histogram summaries are flattened to ``name.count``,
    ``name.p99``... rows."""
    rows = []
    for component, metrics in sorted(snapshot.items()):
        for name, value in sorted(metrics.items()):
            if isinstance(value, dict):
                for stat, stat_value in value.items():
                    rows.append([component, f"{name}.{stat}", stat_value])
            else:
                rows.append([component, name, value])
    return format_table(["component", "metric", "value"], rows, title=title)


def speedup(numerator: float, denominator: float) -> str:
    """'3.6x'-style ratio, guarding division by zero."""
    if denominator <= 0:
        return "inf"
    return f"{numerator / denominator:.2f}x"
