"""Command-line experiment runner.

Runs one measurement — any system, any YCSB+T workload or TPC-C — and
prints (optionally CSV-exports) the result, so parameter sweeps can be
scripted without writing Python::

    python -m repro.harness.cli --system eris --workload mrmw \
        --distributed 0.2 --zipf 0.9 --shards 3 --clients 200
    python -m repro.harness.cli --system lockstore --workload tpcc
    python -m repro.harness.cli --list-systems

With ``--trace PATH`` the run records a causal trace (``repro.obs``)
and exports it as JSONL; ``--metrics`` prints the per-component metric
table after the run. The ``trace`` subcommand summarizes a previously
exported trace, and ``trace analyze`` reconstructs per-transaction
span trees and attributes commit latency to protocol phases::

    python -m repro.harness.cli --system eris --trace run.jsonl --metrics
    python -m repro.harness.cli trace run.jsonl
    python -m repro.harness.cli trace analyze run.jsonl \
        --json breakdown.json --chrome run.trace.json

The same stack runs over real sockets: ``udpsmoke --trace --metrics-out``
records a wall-clock causal trace plus a sampled metrics time-series
from the asyncio-UDP backend, and ``stats`` renders any series file::

    python -m repro udpsmoke --trace udp.jsonl --metrics-out udp-metrics.jsonl
    python -m repro trace analyze udp.jsonl
    python -m repro stats udp-metrics.jsonl

(``python -m repro`` is shorthand for this module.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.cluster import SYSTEMS, ClusterConfig, build_cluster
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.results import format_metrics, format_table, write_csv
from repro.net.network import NetConfig
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import (
    CountersConfig,
    CountersWorkload,
    Partitioner,
    YCSBConfig,
    YCSBWorkload,
    load_counters,
    register_counters_procedures,
    register_ycsb_procedures,
)
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCWorkload,
    load_tpcc,
    register_tpcc_procedures,
    tpcc_partitioner,
)
from repro.workloads.tpcc.schema import TPCCScale
from repro.workloads.ycsb import load_ycsb

WORKLOADS = ("srw", "mrmw", "crmw", "tpcc", "counters")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Run one Eris-reproduction measurement.")
    parser.add_argument("--system", choices=SYSTEMS, default="eris")
    parser.add_argument("--workload", choices=WORKLOADS, default="srw")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--keys", type=int, default=2000,
                        help="YCSB key-space size")
    parser.add_argument("--distributed", type=float, default=0.0,
                        help="fraction of multi-shard txns (mrmw/crmw)")
    parser.add_argument("--zipf", type=float, default=0.0,
                        help="Zipf exponent for key access")
    parser.add_argument("--warehouses", type=int, default=6,
                        help="TPC-C warehouses")
    parser.add_argument("--remote", type=float, default=0.10,
                        help="TPC-C remote fraction")
    parser.add_argument("--read-fraction", type=float, default=0.5,
                        help="counters: fraction of READ_ONLY point "
                             "reads")
    parser.add_argument("--commutative-fraction", type=float, default=0.4,
                        help="counters: fraction of COMMUTATIVE "
                             "increments/tag-unions (remainder are "
                             "GENERIC resets)")
    parser.add_argument("--read-fast-path", action="store_true",
                        help="Eris only: serve clean READ_ONLY txns "
                             "from a single replica via the "
                             "sequencer's dirty-set (default off; "
                             "see DESIGN.md)")
    parser.add_argument("--commutative", action="store_true",
                        help="Eris only: let replicas apply "
                             "COMMUTATIVE txns out of order behind "
                             "the sequencer's reorder barrier "
                             "(default off)")
    parser.add_argument("--drop-rate", type=float, default=0.0)
    parser.add_argument("--chain", type=int, default=0, metavar="N",
                        help="front Eris with an N-node chain-replicated "
                             "sequencer (N=2..3; 0 = single sequencer)")
    parser.add_argument("--kill-sequencer", type=float, default=None,
                        metavar="T",
                        help="kill the active sequencing element (chain "
                             "head, or the routed sequencer) at simulated "
                             "time T")
    parser.add_argument("--wire", choices=("ewc1", "ewc2"), default="ewc1",
                        help="wire codec for serialized paths (the sim "
                             "only serializes under paranoid codec)")
    parser.add_argument("--seq-batch", type=int, default=1, metavar="N",
                        help="stamp up to N queued groupcasts per "
                             "sequencer wakeup (also pipelines N chain "
                             "forwards per hop with --chain)")
    parser.add_argument("--warmup", type=float, default=4e-3,
                        help="simulated seconds before measurement")
    parser.add_argument("--duration", type=float, default=10e-3,
                        help="simulated measurement window")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--csv", metavar="PATH",
                        help="append the result as a CSV row")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a causal trace and export it as JSONL")
    parser.add_argument("--metrics", action="store_true",
                        help="print the per-component metric table")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="sample the metrics registry periodically "
                             "(simulated time) and export the JSONL "
                             "time-series for `stats`")
    parser.add_argument("--metrics-interval", type=float, default=1e-3,
                        metavar="SECS",
                        help="sampling period for --metrics-out "
                             "(simulated seconds)")
    parser.add_argument("--list-systems", action="store_true")
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli trace",
        description="Summarize an exported JSONL causal trace.")
    parser.add_argument("path", help="trace file (JSONL)")
    parser.add_argument("--check", action="store_true",
                        help="also run the trace-backed invariant checkers")
    return parser


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli trace analyze",
        description="Reconstruct transaction span trees from a JSONL "
                    "trace and attribute commit latency to protocol "
                    "phases along the critical path.")
    parser.add_argument("path", help="trace file (JSONL)")
    parser.add_argument("--json", metavar="PATH",
                        help="export the full breakdown as JSON")
    parser.add_argument("--chrome", metavar="PATH",
                        help="export a Chrome trace-event / Perfetto "
                             "JSON timeline of every span tree")
    parser.add_argument("--top", type=int, default=0, metavar="N",
                        help="also list the N slowest transactions")
    parser.add_argument("--require-attributed", action="store_true",
                        help="exit non-zero when no transaction could "
                             "be phase-attributed (CI gate: an empty "
                             "breakdown means tracing was not actually "
                             "wired)")
    return parser


def build_udpsmoke_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli udpsmoke",
        description="Run Eris end-to-end over real UDP loopback sockets "
                    "(asyncio runtime backend) and check the §6.7 "
                    "invariants.")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--min-commits", type=int, default=50)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="real seconds to wait for --min-commits")
    parser.add_argument("--workload",
                        choices=("srw", "mrmw", "crmw", "counters"),
                        default="mrmw")
    parser.add_argument("--distributed", type=float, default=0.5,
                        help="fraction of multi-shard txns (counters: "
                             "fraction of cross-shard increments)")
    parser.add_argument("--keys", type=int, default=200)
    parser.add_argument("--fast-path", action="store_true",
                        help="turn on both coordination-free knobs "
                             "(Harmonia fast reads + commutative "
                             "early apply); pairs with "
                             "--workload counters")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chain", type=int, default=0, metavar="N",
                        help="front Eris with an N-node chain-replicated "
                             "sequencer (N=2..3; 0 = single sequencer)")
    parser.add_argument("--wire", choices=("ewc1", "ewc2"), default="ewc1",
                        help="frame codec on the loopback wire")
    parser.add_argument("--batch", type=int, default=1, metavar="N",
                        help="enable the batching stack at depth N: "
                             "sequencer stamping, chain pipelining, "
                             "reply coalescing, EWCB datagram packing")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a full causal trace (clocked off "
                             "the asyncio loop's monotonic clock) and "
                             "export it as JSONL for `trace analyze`")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="sample the metrics registry periodically "
                             "and export the JSONL time-series for "
                             "`stats`")
    parser.add_argument("--metrics-interval", type=float, default=0.05,
                        metavar="SECS",
                        help="sampling period for --metrics-out")
    parser.add_argument("--recorder", metavar="PATH",
                        default="flight-recorder.jsonl",
                        help="flight-recorder dump path (written only "
                             "when a check fails or the run crashes)")
    parser.add_argument("--recorder-capacity", type=int, default=4096,
                        metavar="N", help="flight-recorder ring size")
    parser.add_argument("--processes", choices=("single", "per-node"),
                        default="single",
                        help="'single' runs everything in this process; "
                             "'per-node' spawns one OS process per "
                             "replica/sequencer/controller/FC via the "
                             "cluster launcher (driver hosts the clients)")
    parser.add_argument("--run-dir", metavar="DIR",
                        help="per-node mode: directory for worker logs, "
                             "trace/metrics shards, and recorder dumps "
                             "(default: a fresh temp directory)")
    parser.add_argument("--timer-slack", type=float, default=None,
                        metavar="SECS",
                        help="per-node mode: coalesce timer wakeups onto "
                             "a SECS-wide grid (default 0.5ms; 0 "
                             "disables)")
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli stats",
        description="Render a metrics time-series (JSONL, written by "
                    "--metrics-out / udpsmoke --metrics-out) as "
                    "per-component tables: totals and mean/peak rates "
                    "for counters, last values for gauges, count/p50/"
                    "p99 for histograms.")
    parser.add_argument("path", help="metrics series file (JSONL)")
    parser.add_argument("--component", metavar="NAME",
                        help="only show this component")
    return parser


def _fmt_stat(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.6g}"
    return str(value)


def stats_main(argv: Sequence[str]) -> int:
    """The ``stats`` subcommand: metrics time-series -> tables."""
    from repro.obs import load_series, summarize_series

    args = build_stats_parser().parse_args(argv)
    try:
        meta, samples = load_series(args.path)
    except OSError as exc:
        print(f"error: cannot read series: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = summarize_series(meta, samples)
    span = report["span"]
    duration = ((span["t_last"] - span["t_first"])
                if span["samples"] else 0.0)
    print(format_table(
        ["stat", "value"],
        [["backend", span["backend"]],
         ["samples", span["samples"]],
         ["interval", _fmt_stat(span["interval"])],
         ["series span (s)", f"{duration:.3f}"]],
        title=args.path))
    rows = report["rows"]
    if args.component:
        rows = [r for r in rows if r["component"] == args.component]
        if not rows:
            print(f"error: no component {args.component!r} in series "
                  f"(have: {sorted({r['component'] for r in report['rows']})})",
                  file=sys.stderr)
            return 2
    rates = [r for r in rows if r["kind"] == "rate"]
    if rates:
        print(format_table(
            ["component", "counter", "total", "mean rate/s", "peak rate/s"],
            [[r["component"], r["name"], _fmt_stat(r["total"]),
              _fmt_stat(r.get("rate_mean", 0.0)),
              _fmt_stat(r.get("rate_peak", 0.0))] for r in rates],
            title="\ncounters"))
    gauges = [r for r in rows if r["kind"] == "gauge"]
    if gauges:
        print(format_table(
            ["component", "gauge", "last"],
            [[r["component"], r["name"], _fmt_stat(r["last"])]
             for r in gauges],
            title="\ngauges (final sample)"))
    hists = [r for r in rows if r["kind"] == "hist"]
    if hists:
        print(format_table(
            ["component", "histogram", "count", "mean", "p50", "p99", "max"],
            [[r["component"], r["name"], r["count"],
              _fmt_stat(r.get("mean")), _fmt_stat(r.get("p50")),
              _fmt_stat(r.get("p99")), _fmt_stat(r.get("max"))]
             for r in hists],
            title="\nhistograms (final sample)"))
    return 0


def udpsmoke_main(argv: Sequence[str]) -> int:
    """The ``udpsmoke`` subcommand: real-transport smoke run."""
    from repro.errors import ExperimentError, InvariantViolation
    from repro.harness.udp_smoke import run_udp_smoke

    args = build_udpsmoke_parser().parse_args(argv)
    try:
        if args.processes == "per-node":
            from repro.harness.mp_smoke import (
                DEFAULT_TIMER_SLACK,
                run_udp_smoke_mp,
            )
            result = run_udp_smoke_mp(
                n_shards=args.shards, n_replicas=args.replicas,
                n_clients=args.clients, min_commits=args.min_commits,
                timeout=args.timeout, workload=args.workload,
                distributed_fraction=args.distributed, n_keys=args.keys,
                seed=args.seed, chain=args.chain, wire=args.wire,
                batch=args.batch, fast_path=args.fast_path,
                run_dir=args.run_dir,
                trace=bool(args.trace), metrics=bool(args.metrics_out),
                metrics_interval=args.metrics_interval,
                recorder_capacity=args.recorder_capacity,
                timer_slack=(DEFAULT_TIMER_SLACK
                             if args.timer_slack is None
                             else args.timer_slack))
        else:
            result = run_udp_smoke(
                n_shards=args.shards, n_replicas=args.replicas,
                n_clients=args.clients, min_commits=args.min_commits,
                timeout=args.timeout, workload=args.workload,
                distributed_fraction=args.distributed, n_keys=args.keys,
                seed=args.seed, chain=args.chain, wire=args.wire,
                batch=args.batch, fast_path=args.fast_path,
                trace_path=args.trace,
                metrics_path=args.metrics_out,
                metrics_interval=args.metrics_interval,
                recorder_path=args.recorder,
                recorder_capacity=args.recorder_capacity)
    except (ExperimentError, InvariantViolation) as exc:
        print(f"udp smoke: FAILED\n  {exc}", file=sys.stderr)
        if args.processes == "per-node":
            print("  per-process logs and recorder dumps are in the "
                  "run directory named above", file=sys.stderr)
        else:
            print(f"  flight recorder dump (last events before the "
                  f"failure): {args.recorder}", file=sys.stderr)
        return 1
    backend = ("asyncio-udp-mp (process per node)"
               if args.processes == "per-node"
               else "asyncio-udp (loopback)")
    rows = [["backend", backend],
            ["shards x replicas", f"{args.shards} x {args.replicas}"],
            ["wire / batch", f"{args.wire} / {args.batch}"],
            ["chain", args.chain or "off"],
            ["fast path", "on" if args.fast_path else "off"],
            ["committed", result.committed],
            ["aborted", result.aborted],
            ["retries", result.retries],
            ["wall seconds", f"{result.wall_seconds:.3f}"],
            ["packets sent", result.packets_sent],
            ["packets delivered", result.packets_delivered],
            ["frames / datagrams", f"{result.frames_sent} / "
                                   f"{result.datagrams_sent}"],
            ["invariant checks", "OK"]]
    if result.processes > 1:
        rows.insert(1, ["processes", result.processes])
        rows.insert(2, ["run dir", result.run_dir])
    if result.trace_path:
        rows.append(["trace", f"{result.trace_events} events -> "
                              f"{result.trace_path}"])
    if result.metrics_path:
        rows.append(["metrics series", f"{result.metrics_samples} samples "
                                       f"-> {result.metrics_path}"])
    print(format_table(["stat", "value"], rows, title="udp smoke"))
    return 0


def run(args: argparse.Namespace):
    config = ClusterConfig(system=args.system, n_shards=args.shards,
                           n_replicas=args.replicas, seed=args.seed,
                           sequencer_chain=getattr(args, "chain", 0),
                           sequencer_batch=getattr(args, "seq_batch", 1),
                           chain_pipeline=getattr(args, "seq_batch", 1),
                           read_fast_path=getattr(args, "read_fast_path",
                                                  False),
                           commutative_apply=getattr(args, "commutative",
                                                     False),
                           net=NetConfig(drop_rate=args.drop_rate,
                                         wire=getattr(args, "wire", "ewc1")))
    registry = ProcedureRegistry()
    count_filter = None
    if args.workload == "counters":
        register_counters_procedures(registry)
        partitioner = Partitioner(args.shards)
        cluster = build_cluster(
            config, registry, partitioner,
            loader=lambda stores, p: load_counters(stores, p, args.keys))
        workload = CountersWorkload(
            CountersConfig(n_keys=args.keys,
                           read_fraction=args.read_fraction,
                           commutative_fraction=args.commutative_fraction,
                           multi_shard_fraction=args.distributed,
                           zipf_theta=args.zipf),
            partitioner, SplitRandom(args.seed + 1))
    elif args.workload == "tpcc":
        register_tpcc_procedures(registry)
        scale = TPCCScale(n_warehouses=args.warehouses)
        partitioner = tpcc_partitioner(args.shards)
        cluster = build_cluster(
            config, registry, partitioner,
            loader=lambda stores, p: load_tpcc(stores, p, scale))
        workload = TPCCWorkload(
            TPCCConfig(scale=scale, remote_fraction=args.remote),
            partitioner, SplitRandom(args.seed + 1))
        count_filter = lambda op: op.proc == "tpcc_new_order"  # noqa: E731
    else:
        register_ycsb_procedures(registry)
        partitioner = Partitioner(args.shards)
        cluster = build_cluster(
            config, registry, partitioner,
            loader=lambda stores, p: load_ycsb(stores, p, args.keys))
        workload = YCSBWorkload(
            YCSBConfig(workload=args.workload, n_keys=args.keys,
                       distributed_fraction=args.distributed,
                       zipf_theta=args.zipf),
            partitioner, SplitRandom(args.seed + 1))
    kill_at = getattr(args, "kill_sequencer", None)
    if kill_at is not None:
        from repro.harness.faults import FaultPlan
        plan = FaultPlan(cluster)
        controller = cluster.controller
        if controller is not None and controller.chain:
            plan.kill_chain_node_at(kill_at, 0)
        else:
            plan.kill_sequencer_at(kill_at)
    sampler = None
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.obs import MetricsSampler
        cluster.instrument_metrics()
        sampler = MetricsSampler(
            cluster.runtime, cluster.metrics,
            interval=getattr(args, "metrics_interval", 1e-3))
        sampler.start()
    try:
        result = run_experiment(cluster, workload, ExperimentConfig(
            n_clients=args.clients, warmup=args.warmup,
            duration=args.duration, count_filter=count_filter,
            trace_path=getattr(args, "trace", None)))
    finally:
        if sampler is not None:
            sampler.stop()
            count = sampler.export(metrics_out)
            print(f"metrics series: {count} samples -> {metrics_out}")
    return cluster, result


def analyze_main(argv: Sequence[str]) -> int:
    """``trace analyze``: span reconstruction + per-phase latency
    attribution along the commit critical path."""
    import json

    from repro.obs import (
        analyze_spans,
        build_spans,
        export_chrome_trace,
        load_trace,
    )

    args = build_analyze_parser().parse_args(argv)
    try:
        events = load_trace(args.path)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    forest = build_spans(events)
    report = analyze_spans(forest)

    txns = report["txns"]
    print(format_table(
        ["stat", "value"],
        [["transactions", txns["total"]],
         ["completed", txns["completed"]],
         ["committed", txns["committed"]],
         ["timed out", txns["timedout"]],
         ["attributed", txns["attributed"]],
         ["recoveries", report["recovery"]["count"]],
         ["fc escalations", report["recovery"]["fc_escalated"]]],
        title=args.path))

    def fmt(stats: dict, key: str) -> str:
        value = stats.get(key)
        return "-" if value is None else f"{value:.1f}"

    if txns["attributed"]:
        rows = []
        for name in report["phase_order"]:
            stats = report["phases"][name]
            rows.append([name, fmt(stats, "mean_us"), fmt(stats, "p50_us"),
                         fmt(stats, "p99_us"),
                         f"{stats['share'] * 100:.1f}%"])
        e2e = report["end_to_end"]
        rows.append(["end_to_end", fmt(e2e, "mean_us"), fmt(e2e, "p50_us"),
                     fmt(e2e, "p99_us"), "100.0%"])
        print(format_table(
            ["phase", "mean_us", "p50_us", "p99_us", "share"], rows,
            title="\ncommit latency attribution (fastest reply chain)"))
        consistency = report["consistency"]
        print(f"\nphase sums vs end-to-end: "
              f"{consistency['mean_phase_sum_us']:.3f}us vs "
              f"{consistency['mean_e2e_us']:.3f}us "
              f"(residual {consistency['residual_us']:+.3g}us)")
        members = report["critical_path"]["by_member"]
        if members:
            print(format_table(
                ["critical-path member", "txns"],
                [[node, count] for node, count in members.items()],
                title="\nslowest counted quorum member"))
        queue = report["sequencer_queue"]
        if queue["count"]:
            print(f"\nsequencer queue delay: mean {fmt(queue, 'mean_us')}us"
                  f"  p99 {fmt(queue, 'p99_us')}us"
                  f"  max {fmt(queue, 'max_us')}us"
                  f"  (n={queue['count']})")
    else:
        print("\nno attributable transactions "
              "(trace has no completed quorum-reaching txns)")
        if args.require_attributed:
            print("error: --require-attributed: empty phase breakdown",
                  file=sys.stderr)
            return 1

    if args.top:
        slowest = sorted(forest.attributed(),
                         key=lambda t: t.end_to_end, reverse=True)
        rows = [[t.txn, f"{t.end_to_end * 1e6:.1f}",
                 max(t.phases, key=t.phases.get), t.retries,
                 t.critical["node"] if t.critical else "-"]
                for t in slowest[:args.top]]
        if rows:
            print(format_table(
                ["txn", "e2e_us", "dominant phase", "retries",
                 "critical member"],
                rows, title=f"\n{len(rows)} slowest transactions"))

    if args.json:
        payload = dict(report, trace=args.path)
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nbreakdown -> {args.json}")
    if args.chrome:
        count = export_chrome_trace(forest, args.chrome)
        print(f"chrome trace ({count} events) -> {args.chrome}  "
              "(open in Perfetto: https://ui.perfetto.dev)")
    return 0


def build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli trace merge",
        description="Merge per-process trace shards (written by "
                    "udpsmoke --processes per-node) into one "
                    "timestamp-sorted stream that `trace` / `trace "
                    "analyze` consume like a single-process trace.")
    parser.add_argument("shards", nargs="+",
                        help="per-process trace shard files (JSONL)")
    parser.add_argument("-o", "--out", required=True, metavar="PATH",
                        help="write the merged JSONL stream here")
    return parser


def merge_main(argv: Sequence[str]) -> int:
    """``trace merge``: shard files -> one merged stream."""
    from repro.obs import merge_trace_shards

    args = build_merge_parser().parse_args(argv)
    try:
        events = merge_trace_shards(args.shards, args.out)
    except OSError as exc:
        print(f"error: cannot read shard: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"merged {len(args.shards)} shards ({len(events)} events) "
          f"-> {args.out}")
    return 0


def trace_main(argv: Sequence[str]) -> int:
    """The ``trace`` subcommand: summarize (and optionally check) a
    previously exported JSONL trace."""
    from repro.harness.checkers import run_trace_checks
    from repro.obs import load_trace, summarize_trace

    argv = list(argv)
    if argv and argv[0] == "analyze":
        return analyze_main(argv[1:])
    if argv and argv[0] == "merge":
        return merge_main(argv[1:])
    args = build_trace_parser().parse_args(argv)
    try:
        events = load_trace(args.path)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = summarize_trace(events)
    rows = [["events", summary["events"]],
            ["sends", summary["sends"]],
            ["delivers", summary["delivers"]],
            ["drops", summary["drops"]],
            ["drop_rate", f"{summary['drop_rate'] * 100:.2f}%"],
            ["reorders", summary["reorders"]],
            ["view_changes", summary["view_changes"]],
            ["epoch_changes", summary["epoch_changes"]]]
    for reason, count in summary["drop_reasons"].items():
        rows.append([f"drop.{reason}", count])
    for name, count in summary["recoveries"].items():
        rows.append([f"recovery.{name}", count])
    print(format_table(["stat", "value"], rows, title=args.path))
    if summary["kinds"]:
        print(format_table(
            ["event kind", "count"],
            [[kind, count] for kind, count in summary["kinds"].items()],
            title="\nevents by kind"))
    if summary["stamps"]:
        print(format_table(
            ["sequence space", "stamped", "max_seq", "gaps"],
            [[space, s["stamped"], s["max_seq"], s["gaps"]]
             for space, s in summary["stamps"].items()],
            title="\nmulti-stamp statistics"))
    if args.check:
        from repro.errors import InvariantViolation
        try:
            run_trace_checks(events)
        except InvariantViolation as exc:
            print(f"\ntrace-backed invariant checks: FAILED\n  {exc}",
                  file=sys.stderr)
            return 1
        print("\ntrace-backed invariant checks: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "udpsmoke":
        return udpsmoke_main(argv[1:])
    if argv and argv[0] == "node":
        from repro.runtime.worker import worker_main
        return worker_main(argv[1:])
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_systems:
        print("\n".join(SYSTEMS))
        return 0
    if args.trace:
        # Fail on an unwritable path now, not after the simulation.
        try:
            open(args.trace, "w").close()
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            return 2
    cluster, result = run(args)
    headers = ["system", "workload", "shards", "clients", "txn/s",
               "mean_us", "p99_us", "committed", "aborted", "retries"]
    row = [args.system, args.workload, args.shards, args.clients,
           round(result.throughput), round(result.mean_latency * 1e6, 1),
           round(result.p99_latency * 1e6, 1), result.committed,
           result.aborted, result.retries]
    print(format_table(headers, [row]))
    if args.csv:
        write_csv(args.csv, headers, [row], append=True)
        print(f"appended to {args.csv}")
    if args.trace:
        print(f"trace: {len(cluster.tracer)} events -> {args.trace}")
    if args.metrics:
        print()
        print(format_metrics(cluster.metrics_snapshot()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
