"""TAPIR: inconsistent replication + OCC (Zhang et al., SOSP '15).

TAPIR commits transactions in a single round trip when its *fast path*
succeeds: the client sends Prepare (carrying the transaction and an OCC
timestamp) to **every** replica of every participant; each replica
validates against its prepared set; if all ``n`` replicas of each shard
vote OK, the client decides commit and sends Commit followed by
Finalize. The extra commit and finalize messages per transaction are
exactly the overhead the paper cites for TAPIR's throughput gap
(§8.1), and the OCC validation aborts are what collapse it under
contention (Figure 8).

If replies are missing after the fast-path window but a classic quorum
(f+1) voted OK, the client takes the *slow path*: an extra consensus
round to the shard before committing — this is the degradation packet
loss induces in Figure 13 ("replica state divergence that forces the
more expensive consensus slow path").

Per the paper's Figure 9 note, TAPIR runs the same protocol for
independent and general transactions (prepares return read values for
general ops; the commit carries the client-computed writes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.baselines.common import DoneFn, OpResult, WorkloadOp
from repro.errors import TransactionAborted
from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.net.network import Network
from repro.store.kv import KVStore
from repro.store.procedures import ProcedureRegistry, TxnContext


@dataclass(frozen=True)
class TPrepare:
    tag: str
    ts: float
    proc: str
    args: dict
    read_keys: frozenset
    write_keys: frozenset
    is_general: bool


@dataclass(frozen=True)
class TPrepareReply:
    tag: str
    shard: int
    replica_index: int
    vote: str            # "ok" | "abort"
    result: Any = None


@dataclass(frozen=True)
class TDecision:
    tag: str
    commit: bool
    writes: tuple = ()


@dataclass(frozen=True)
class TDecisionAck:
    tag: str
    shard: int
    replica_index: int
    committed: bool
    result: Any = None


@dataclass(frozen=True)
class TSlowConfirm:
    tag: str


@dataclass(frozen=True)
class TSlowConfirmAck:
    tag: str
    shard: int
    replica_index: int


@dataclass(frozen=True)
class TFinalize:
    tag: str


class TapirReplica(Node):
    """One inconsistently-replicated shard member."""

    def __init__(self, address: Address, network: Network, shard: int,
                 replica_index: int, store: KVStore,
                 registry: ProcedureRegistry, owns=None,
                 execution_cost: float = 0.5e-6):
        super().__init__(address, network)
        self.shard = shard
        self.replica_index = replica_index
        self.store = store
        self.registry = registry
        self._owns = owns or (lambda key: True)
        self.execution_cost = execution_cost
        self._prepared: dict[str, TPrepare] = {}
        self._finished: set[str] = set()
        self.occ_aborts = 0

    # -- OCC validation at prepare time ---------------------------------------
    def on_TPrepare(self, src: Address, msg: TPrepare,
                    packet: Packet) -> None:
        if msg.tag in self._prepared or msg.tag in self._finished:
            return  # duplicate; client retransmissions resolve via acks
        reads = frozenset(k for k in msg.read_keys if self._owns(k))
        writes = frozenset(k for k in msg.write_keys if self._owns(k))
        if self._conflicts(reads, writes):
            self.occ_aborts += 1
            self.send(src, TPrepareReply(tag=msg.tag, shard=self.shard,
                                         replica_index=self.replica_index,
                                         vote="abort"))
            return
        self._prepared[msg.tag] = msg
        result = None
        if msg.is_general:
            result = {k: self.store.get(k) for k in (reads | writes)}
        self.send(src, TPrepareReply(tag=msg.tag, shard=self.shard,
                                     replica_index=self.replica_index,
                                     vote="ok", result=result))

    def _conflicts(self, reads: frozenset, writes: frozenset) -> bool:
        for other in self._prepared.values():
            other_reads = frozenset(k for k in other.read_keys
                                    if self._owns(k))
            other_writes = frozenset(k for k in other.write_keys
                                     if self._owns(k))
            if writes & (other_reads | other_writes) or reads & other_writes:
                return True
        return False

    # -- commit / abort ------------------------------------------------------
    def on_TDecision(self, src: Address, msg: TDecision,
                     packet: Packet) -> None:
        prepared = self._prepared.pop(msg.tag, None)
        if prepared is None:
            # Not prepared here (we voted abort, or already finished):
            # acknowledge so the coordinator can make progress.
            self._finished.add(msg.tag)
            self.send(src, TDecisionAck(
                tag=msg.tag, shard=self.shard,
                replica_index=self.replica_index,
                committed=msg.commit))
            return
        self._finished.add(msg.tag)
        committed = msg.commit
        result = None
        if msg.commit:
            self.busy(self.execution_cost)
            if prepared.is_general:
                for key, value in msg.writes:
                    if self._owns(key):
                        self.store.put(key, value)
            else:
                ctx = TxnContext(self.store, shard=self.shard,
                                 owns=self._owns)
                try:
                    result = self.registry.execute(prepared.proc, ctx,
                                                   prepared.args)
                except TransactionAborted as abort:
                    committed = False
                    result = abort.reason
        self.send(src, TDecisionAck(tag=msg.tag, shard=self.shard,
                                    replica_index=self.replica_index,
                                    committed=committed, result=result))

    def on_TSlowConfirm(self, src: Address, msg: TSlowConfirm,
                        packet: Packet) -> None:
        self.send(src, TSlowConfirmAck(tag=msg.tag, shard=self.shard,
                                       replica_index=self.replica_index))

    def on_TFinalize(self, src: Address, msg: TFinalize,
                     packet: Packet) -> None:
        # Finalize closes the IR consensus record; no reply needed. The
        # CPU cost of receiving it is the point (§8.1).
        self._finished.add(msg.tag)


@dataclass
class _PendingTxn:
    op: WorkloadOp
    done: DoneFn
    start: float
    tag: str
    ts: float
    phase: str                 # prepare | slow | decide
    votes: dict = field(default_factory=dict)   # (shard, idx) -> reply
    slow_acks: set = field(default_factory=set)
    slow_needed: set = field(default_factory=set)
    acks: dict = field(default_factory=dict)    # shard -> set(idx)
    commit: bool = True
    writes: tuple = ()
    result: Any = None
    retries: int = 0
    fast_timer: Any = None
    retry_timer: Any = None


class TapirClient(Node):
    """Drives the IR fast/slow path and OCC retries."""

    def __init__(self, address: Address, network: Network,
                 shard_replicas: dict[int, list[Address]],
                 fast_timeout: float = 1e-3,
                 retry_timeout: float = 10e-3,
                 backoff: float = 0.5e-3,
                 max_retries: int = 200):
        super().__init__(address, network)
        self.shard_replicas = {s: list(a) for s, a in shard_replicas.items()}
        self.fast_timeout = fast_timeout
        self.retry_timeout = retry_timeout
        self.backoff = backoff
        self.max_retries = max_retries
        self._pending: dict[str, _PendingTxn] = {}
        self.fast_path_commits = 0
        self.slow_path_commits = 0
        self.aborts_retried = 0

    def _n(self, shard: int) -> int:
        return len(self.shard_replicas[shard])

    def _f_plus_1(self, shard: int) -> int:
        return self._n(shard) // 2 + 1

    def submit(self, op: WorkloadOp, done: DoneFn, retries: int = 0,
               start: Optional[float] = None) -> None:
        tag = self.fresh_tag(self.address)
        pending = _PendingTxn(op=op, done=done,
                              start=self.now if start is None else start,
                              tag=tag, ts=self.now, phase="prepare",
                              retries=retries)
        pending.fast_timer = self.timer(self.fast_timeout,
                                        self._fast_window_closed, tag)
        pending.retry_timer = self.timer(self.retry_timeout,
                                         self._retransmit, tag)
        pending.fast_timer.start()
        pending.retry_timer.start()
        self._pending[tag] = pending
        self._send_prepares(pending)

    def _send_prepares(self, pending: _PendingTxn) -> None:
        op = pending.op
        message = TPrepare(tag=pending.tag, ts=pending.ts, proc=op.proc,
                           args=op.args, read_keys=op.read_keys,
                           write_keys=op.write_keys,
                           is_general=op.is_general)
        for shard in op.participants:
            for addr in self.shard_replicas[shard]:
                self.send(addr, message)

    # -- vote collection -------------------------------------------------------
    def on_TPrepareReply(self, src: Address, msg: TPrepareReply,
                         packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "prepare":
            return
        pending.votes[(msg.shard, msg.replica_index)] = msg
        if msg.vote == "abort":
            self._abort_and_retry(pending)
            return
        if all(
            sum(1 for (s, _), v in pending.votes.items()
                if s == shard and v.vote == "ok") == self._n(shard)
            for shard in pending.op.participants
        ):
            self.fast_path_commits += 1
            self._decide(pending, commit=True)

    def _fast_window_closed(self, tag: str) -> None:
        pending = self._pending.get(tag)
        if pending is None or pending.phase != "prepare":
            return
        ok_counts = {shard: sum(1 for (s, _), v in pending.votes.items()
                                if s == shard and v.vote == "ok")
                     for shard in pending.op.participants}
        if all(count >= self._f_plus_1(shard)
               for shard, count in ok_counts.items()):
            # Slow path: one extra consensus round before committing.
            pending.phase = "slow"
            pending.slow_needed = set(pending.op.participants)
            pending.slow_acks = set()
            for shard in pending.op.participants:
                for addr in self.shard_replicas[shard]:
                    self.send(addr, TSlowConfirm(tag=tag))
        else:
            pending.fast_timer.start()  # keep waiting; retransmit covers

    def on_TSlowConfirmAck(self, src: Address, msg: TSlowConfirmAck,
                           packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "slow":
            return
        pending.slow_acks.add((msg.shard, msg.replica_index))
        done_shards = {shard for shard in pending.slow_needed
                       if sum(1 for (s, _) in pending.slow_acks
                              if s == shard) >= self._f_plus_1(shard)}
        if done_shards == pending.slow_needed:
            self.slow_path_commits += 1
            self._decide(pending, commit=True)

    # -- decision -----------------------------------------------------------
    def _decide(self, pending: _PendingTxn, commit: bool) -> None:
        pending.phase = "decide"
        pending.commit = commit
        pending.fast_timer.stop()
        if commit and pending.op.is_general and pending.op.compute is not None:
            values: dict = {}
            for vote in pending.votes.values():
                if isinstance(vote.result, dict):
                    values.update(vote.result)
            writes = pending.op.compute(values)
            if writes is None:
                pending.commit = commit = False
            else:
                pending.writes = tuple(writes.items())
        message = TDecision(tag=pending.tag, commit=commit,
                            writes=pending.writes)
        for shard in pending.op.participants:
            for addr in self.shard_replicas[shard]:
                self.send(addr, message)

    def on_TDecisionAck(self, src: Address, msg: TDecisionAck,
                        packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "decide":
            return
        pending.acks.setdefault(msg.shard, set()).add(msg.replica_index)
        if msg.result is not None:
            pending.result = msg.result
        if not msg.committed:
            pending.commit = False
        if all(len(pending.acks.get(shard, ())) >= self._f_plus_1(shard)
               for shard in pending.op.participants):
            self._finalize(pending)

    def _finalize(self, pending: _PendingTxn) -> None:
        for shard in pending.op.participants:
            for addr in self.shard_replicas[shard]:
                self.send(addr, TFinalize(tag=pending.tag))
        if pending.commit:
            self._complete(pending, committed=True)
        else:
            self._retry_after_abort(pending)

    # -- aborts and retries ------------------------------------------------------
    def _abort_and_retry(self, pending: _PendingTxn) -> None:
        self._decide(pending, commit=False)

    def _retry_after_abort(self, pending: _PendingTxn) -> None:
        self._teardown(pending)
        pending.retries += 1
        self.aborts_retried += 1
        if pending.retries > self.max_retries:
            pending.done(OpResult(committed=False,
                                  latency=self.now - pending.start,
                                  retries=pending.retries))
            return
        self.call_later(
            self.backoff,
            lambda: self.submit(pending.op, pending.done,
                                retries=pending.retries,
                                start=pending.start))

    def _retransmit(self, tag: str) -> None:
        pending = self._pending.get(tag)
        if pending is None:
            return
        if pending.phase == "prepare":
            self._send_prepares(pending)
        elif pending.phase == "slow":
            for shard in pending.op.participants:
                for addr in self.shard_replicas[shard]:
                    self.send(addr, TSlowConfirm(tag=tag))
        else:
            message = TDecision(tag=pending.tag, commit=pending.commit,
                                writes=pending.writes)
            for shard in pending.op.participants:
                for addr in self.shard_replicas[shard]:
                    self.send(addr, message)
        pending.retry_timer.start()

    def _complete(self, pending: _PendingTxn, committed: bool) -> None:
        self._teardown(pending)
        pending.done(OpResult(
            committed=committed,
            latency=self.now - pending.start,
            result=pending.result,
            retries=pending.retries,
        ))

    def _teardown(self, pending: _PendingTxn) -> None:
        self._pending.pop(pending.tag, None)
        pending.fast_timer.stop()
        pending.retry_timer.stop()
