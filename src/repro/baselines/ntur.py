"""NT-UR: non-transactional, unreplicated (§8).

One node per shard, no coordination, no replication, no concurrency
control — "its performance is the maximum expected of any system with
the same number of shards". Multi-shard operations are just independent
messages to each shard (one two-shard operation costs the same as two
one-shard operations, which is why NT-UR throughput also falls as the
distributed fraction grows in Figure 7).

For general operations (the CRMW workload), NT-UR still has to move
data between shards: the client reads in one round and writes in a
second, with no isolation whatsoever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from repro.baselines.common import DoneFn, OpResult, WorkloadOp
from repro.errors import TransactionAborted
from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.net.network import Network
from repro.store.kv import KVStore
from repro.store.procedures import ProcedureRegistry, TxnContext


@dataclass(frozen=True)
class NTURExecute:
    tag: str
    proc: str
    args: dict


@dataclass(frozen=True)
class NTURRead:
    tag: str
    keys: tuple


@dataclass(frozen=True)
class NTURWrite:
    tag: str
    writes: tuple  # ((key, value), ...)


@dataclass(frozen=True)
class NTURReply:
    tag: str
    shard: int
    committed: bool
    result: Any


class NTURServer(Node):
    """A single unreplicated node owning one shard."""

    def __init__(self, address: Address, network: Network, shard: int,
                 store: KVStore, registry: ProcedureRegistry,
                 owns: Optional[Callable[[Hashable], bool]] = None,
                 execution_cost: float = 0.5e-6):
        super().__init__(address, network)
        self.shard = shard
        self.store = store
        self.registry = registry
        self._owns = owns or (lambda key: True)
        self.execution_cost = execution_cost
        self.ops_executed = 0

    def on_NTURExecute(self, src: Address, msg: NTURExecute,
                       packet: Packet) -> None:
        ctx = TxnContext(self.store, shard=self.shard, owns=self._owns)
        self.busy(self.execution_cost)
        self.ops_executed += 1
        try:
            result = self.registry.execute(msg.proc, ctx, msg.args)
            committed = True
        except TransactionAborted as abort:
            result = abort.reason
            committed = False
        self.send(src, NTURReply(tag=msg.tag, shard=self.shard,
                                 committed=committed, result=result))

    def on_NTURRead(self, src: Address, msg: NTURRead,
                    packet: Packet) -> None:
        self.busy(self.execution_cost)
        values = {k: self.store.get(k) for k in msg.keys if self._owns(k)}
        self.send(src, NTURReply(tag=msg.tag, shard=self.shard,
                                 committed=True, result=values))

    def on_NTURWrite(self, src: Address, msg: NTURWrite,
                     packet: Packet) -> None:
        self.busy(self.execution_cost)
        for key, value in msg.writes:
            if self._owns(key):
                self.store.put(key, value)
        self.send(src, NTURReply(tag=msg.tag, shard=self.shard,
                                 committed=True, result=None))


@dataclass
class _Pending:
    op: WorkloadOp
    done: DoneFn
    start: float
    phase: str                      # "execute" | "read" | "write"
    awaiting: set = field(default_factory=set)
    committed: bool = True
    results: dict = field(default_factory=dict)
    values: dict = field(default_factory=dict)


class NTURClient(Node):
    """Fire-and-collect client; no retries (nothing is guaranteed)."""

    def __init__(self, address: Address, network: Network,
                 shard_servers: dict[int, Address],
                 retry_timeout: float = 10e-3):
        super().__init__(address, network)
        self.shard_servers = dict(shard_servers)
        self.retry_timeout = retry_timeout
        self._pending: dict[str, _Pending] = {}

    def submit(self, op: WorkloadOp, done: DoneFn) -> None:
        tag = self.fresh_tag(self.address)
        if op.is_general:
            pending = _Pending(op=op, done=done, start=self.now,
                               phase="read",
                               awaiting=set(op.participants))
            self._pending[tag] = pending
            keys = tuple(op.read_keys | op.write_keys)
            for shard in op.participants:
                self.send(self.shard_servers[shard],
                          NTURRead(tag=tag, keys=keys))
        else:
            pending = _Pending(op=op, done=done, start=self.now,
                               phase="execute",
                               awaiting=set(op.participants))
            self._pending[tag] = pending
            for shard in op.participants:
                self.send(self.shard_servers[shard],
                          NTURExecute(tag=tag, proc=op.proc, args=op.args))

    def on_NTURReply(self, src: Address, msg: NTURReply,
                     packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or msg.shard not in pending.awaiting:
            return
        pending.awaiting.discard(msg.shard)
        pending.committed = pending.committed and msg.committed
        pending.results[msg.shard] = msg.result
        if pending.phase == "read" and isinstance(msg.result, dict):
            pending.values.update(msg.result)
        if pending.awaiting:
            return
        if pending.phase == "read":
            writes = pending.op.compute(pending.values) \
                if pending.op.compute else None
            if writes is None:
                self._finish(msg.tag, pending, committed=False)
                return
            pending.phase = "write"
            pending.awaiting = set(pending.op.participants)
            shipped = tuple(writes.items())
            for shard in pending.op.participants:
                self.send(self.shard_servers[shard],
                          NTURWrite(tag=msg.tag, writes=shipped))
            return
        self._finish(msg.tag, pending, committed=pending.committed)

    def _finish(self, tag: str, pending: _Pending, committed: bool) -> None:
        del self._pending[tag]
        pending.done(OpResult(
            committed=committed,
            latency=self.now - pending.start,
            result=pending.results,
        ))
