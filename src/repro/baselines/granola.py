"""Granola: application-level independent transactions (Cowling &
Liskov, USENIX ATC '12).

Granola is the closest prior system: it also optimizes for independent
transactions and avoids locks for them, but it coordinates entirely at
the application level:

- every operation is synchronously replicated through VR before it can
  proceed ("Multi-Paxos replication overhead", §8.1), and
- distributed independent transactions need a **timestamp vote round**
  between the participant shards' leaders: each proposes a timestamp,
  the final timestamp is the maximum, and execution follows timestamp
  order.

Because transactions never block on locks, Granola keeps its throughput
flat under contention (Figure 8) — but the extra replication and vote
round keep it 2.5–2.75× below Eris (Figures 6, 12).

For *general* transactions Granola must switch to its locking mode
(§7.3 discusses the cost): a lock-prepare/commit exchange per phase,
each synchronously replicated, with lock queues that collapse under
contention (Figures 9, 10).

Simplifications (documented per DESIGN.md): backups log operations for
durability and the leader executes (primary-copy), and decided
transactions execute when their vote set completes rather than in
strict global timestamp order — the message pattern and blocking
behaviour, which the evaluation measures, are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.baselines.common import DoneFn, OpResult, WorkloadOp
from repro.errors import TransactionAborted
from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.net.network import Network
from repro.replication.vr import VRConfig, VRReplica
from repro.store.kv import KVStore
from repro.store.locks import LockManager, LockOutcome, LockPolicy
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.store.undo import UndoLog


@dataclass(frozen=True)
class GRequest:
    """Client → every participant leader (independent transactions).

    Key sets ride along because a repository that has switched into
    locking mode must lock even independent transactions.
    """

    tag: str
    proc: str
    args: dict
    participants: tuple[int, ...]
    read_keys: frozenset = frozenset()
    write_keys: frozenset = frozenset()


@dataclass(frozen=True)
class GVote:
    """Leader ↔ leader timestamp proposal for one transaction."""

    tag: str
    shard: int
    proposed_ts: int


@dataclass(frozen=True)
class GReply:
    tag: str
    shard: int
    committed: bool
    result: Any
    final_ts: int


@dataclass(frozen=True)
class GLockPrepare:
    """Client → leader, locking mode phase 1 (general transactions)."""

    tag: str
    read_keys: frozenset
    write_keys: frozenset


@dataclass(frozen=True)
class GLockReply:
    tag: str
    shard: int
    values: dict


@dataclass(frozen=True)
class GLockCommit:
    tag: str
    commit: bool
    writes: tuple = ()


@dataclass(frozen=True)
class GLockAck:
    tag: str
    shard: int


@dataclass
class _Coordination:
    request: GRequest
    client: Address
    own_ts: int
    votes: dict[int, int] = field(default_factory=dict)


class GranolaReplica(VRReplica):
    """One replica of one Granola repository (shard)."""

    def __init__(self, address: Address, network: Network, shard: int,
                 group: list[Address], index: int,
                 store: KVStore, registry: ProcedureRegistry,
                 peer_leaders: Optional[dict[int, Address]] = None,
                 owns=None, execution_cost: float = 0.5e-6,
                 vr_config: Optional[VRConfig] = None):
        super().__init__(address, network, group, index, vr_config)
        self.shard = shard
        self.store = store
        self.registry = registry
        self.peer_leaders = dict(peer_leaders or {})
        self._owns = owns or (lambda key: True)
        self.execution_cost = execution_cost
        self.locks = LockManager()
        self._clock = 0
        self._coordinating: dict[str, _Coordination] = {}
        self._early_votes: dict[str, dict[int, int]] = {}
        self._replies: dict[str, GReply] = {}
        self._lock_state: dict[str, frozenset] = {}
        self._lock_replies: dict[str, GLockReply] = {}
        self.txns_executed = 0

    def execute_op(self, op: Any) -> Any:
        """Backups log only; the leader executes (primary-copy)."""
        return None

    def _next_ts(self) -> int:
        self._clock += 1
        return self._clock

    def _observe_ts(self, ts: int) -> None:
        self._clock = max(self._clock, ts)

    # -- independent transactions ------------------------------------------------
    def on_GRequest(self, src: Address, msg: GRequest,
                    packet: Packet) -> None:
        if not self.is_leader or self.vr_status != "normal":
            return
        if msg.tag in self._replies:
            self.send(src, self._replies[msg.tag])
            return
        if msg.tag in self._coordinating:
            # Client retransmission: our vote (or a peer's) may have
            # been lost — re-send ours so the exchange can finish.
            state = self._coordinating[msg.tag]
            vote = GVote(tag=msg.tag, shard=self.shard,
                         proposed_ts=state.own_ts)
            for shard in msg.participants:
                if shard != self.shard and shard not in state.votes:
                    self.send(self.peer_leaders[shard], vote)
            return
        self.replicate(("txn", msg.tag, msg.proc),
                       lambda _: self._logged(src, msg))

    def _logged(self, client: Address, msg: GRequest) -> None:
        if len(msg.participants) == 1:
            # Single-repository: execute as soon as the op is durable.
            self._execute_and_reply(client, msg, final_ts=self._next_ts())
            return
        state = _Coordination(request=msg, client=client,
                              own_ts=self._next_ts())
        state.votes[self.shard] = state.own_ts
        for shard, ts in self._early_votes.pop(msg.tag, {}).items():
            state.votes[shard] = ts
        self._coordinating[msg.tag] = state
        vote = GVote(tag=msg.tag, shard=self.shard, proposed_ts=state.own_ts)
        for shard in msg.participants:
            if shard != self.shard:
                self.send(self.peer_leaders[shard], vote)
        self._maybe_execute(msg.tag)

    def on_GVote(self, src: Address, msg: GVote, packet: Packet) -> None:
        self._observe_ts(msg.proposed_ts)
        state = self._coordinating.get(msg.tag)
        if state is None:
            if msg.tag in self._replies:
                # We already executed; the sender must have missed our
                # vote — answer with our decided timestamp.
                self.send(src, GVote(tag=msg.tag, shard=self.shard,
                                     proposed_ts=self._replies[msg.tag]
                                     .final_ts))
                return
            self._early_votes.setdefault(msg.tag, {})[msg.shard] = \
                msg.proposed_ts
            return
        state.votes[msg.shard] = msg.proposed_ts
        self._maybe_execute(msg.tag)

    def _maybe_execute(self, tag: str) -> None:
        state = self._coordinating.get(tag)
        if state is None:
            return
        if len(state.votes) < len(state.request.participants):
            return
        del self._coordinating[tag]
        final_ts = max(state.votes.values())
        self._observe_ts(final_ts)
        self._execute_and_reply(state.client, state.request, final_ts)

    @property
    def locking_mode(self) -> bool:
        """Granola switches the whole repository into locking mode
        while any locking transaction is outstanding; independent
        transactions then pay lock acquisition too — the cost behind
        the paper's >50% CRMW drop (§8.1, Figures 9–10)."""
        return bool(self._lock_state)

    def _execute_and_reply(self, client: Address, msg: GRequest,
                           final_ts: int) -> None:
        if self.locking_mode:
            reads = frozenset(k for k in msg.read_keys if self._owns(k))
            writes = frozenset(k for k in msg.write_keys if self._owns(k))
            lock_txn = ("ind", msg.tag)
            outcome = self.locks.request(
                lock_txn, reads, writes,
                policy=LockPolicy.QUEUE,
                on_grant=lambda: self._execute_locked(client, msg,
                                                      final_ts, lock_txn),
            )
            if outcome is LockOutcome.GRANTED:
                self._execute_locked(client, msg, final_ts, lock_txn)
            return
        self._execute_now(client, msg, final_ts)

    def _execute_locked(self, client: Address, msg: GRequest,
                        final_ts: int, lock_txn) -> None:
        self._execute_now(client, msg, final_ts)
        # Locking mode persists the lock release through the log (lock
        # state must survive leader failure in Granola's design): one
        # extra synchronous replication round per transaction — the
        # "less efficient locking mode" the paper charges for the >50%
        # CRMW throughput drop.
        if self.is_leader and self.vr_status == "normal":
            self.replicate(("unlock", msg.tag),
                           lambda _: self.locks.release_all(lock_txn))
        else:
            self.locks.release_all(lock_txn)

    def _execute_now(self, client: Address, msg: GRequest,
                     final_ts: int) -> None:
        ctx = TxnContext(self.store, shard=self.shard, owns=self._owns)
        self.busy(self.execution_cost)
        self.txns_executed += 1
        try:
            result = self.registry.execute(msg.proc, ctx, msg.args)
            committed = True
        except TransactionAborted as abort:
            result = abort.reason
            committed = False
        reply = GReply(tag=msg.tag, shard=self.shard, committed=committed,
                       result=result, final_ts=final_ts)
        self._replies[msg.tag] = reply
        self.send(client, reply)

    # -- locking mode (general transactions) -----------------------------------
    def on_GLockPrepare(self, src: Address, msg: GLockPrepare,
                        packet: Packet) -> None:
        if not self.is_leader or self.vr_status != "normal":
            return
        if msg.tag in self._lock_replies:
            self.send(src, self._lock_replies[msg.tag])
            return
        if msg.tag in self._lock_state:
            return  # duplicate; reply is on its way once locks grant
        reads = frozenset(k for k in msg.read_keys if self._owns(k))
        writes = frozenset(k for k in msg.write_keys if self._owns(k))
        self._lock_state[msg.tag] = reads | writes
        outcome = self.locks.request(
            msg.tag, reads, writes,
            policy=LockPolicy.QUEUE,
            on_grant=lambda: self._lock_granted(src, msg),
        )
        if outcome is LockOutcome.GRANTED:
            self._lock_granted(src, msg)

    def _lock_granted(self, client: Address, msg: GLockPrepare) -> None:
        self.replicate(("lock-prepare", msg.tag),
                       lambda _: self._lock_prepared(client, msg))

    def _lock_prepared(self, client: Address, msg: GLockPrepare) -> None:
        keys = self._lock_state.get(msg.tag, frozenset())
        values = {k: self.store.get(k) for k in keys}
        self.busy(self.execution_cost)
        reply = GLockReply(tag=msg.tag, shard=self.shard, values=values)
        self._lock_replies[msg.tag] = reply
        self.send(client, reply)

    def on_GLockCommit(self, src: Address, msg: GLockCommit,
                       packet: Packet) -> None:
        if not self.is_leader or self.vr_status != "normal":
            return
        if msg.tag not in self._lock_state:
            self.send(src, GLockAck(tag=msg.tag, shard=self.shard))
            return
        kind = "lock-commit" if msg.commit else "lock-abort"
        self.replicate((kind, msg.tag),
                       lambda _: self._lock_finished(src, msg))

    def _lock_finished(self, client: Address, msg: GLockCommit) -> None:
        if self._lock_state.pop(msg.tag, None) is not None:
            if msg.commit:
                for key, value in msg.writes:
                    if self._owns(key):
                        self.store.put(key, value)
            self.locks.release_all(msg.tag)
        self._lock_replies.pop(msg.tag, None)
        self.send(client, GLockAck(tag=msg.tag, shard=self.shard))


@dataclass
class _PendingOp:
    op: WorkloadOp
    done: DoneFn
    start: float
    tag: str
    phase: str                       # "request" | "lock" | "commit"
    replies: dict = field(default_factory=dict)
    values: dict = field(default_factory=dict)
    acks: set = field(default_factory=set)
    commit: bool = True
    writes: tuple = ()
    timer: Any = None


class GranolaClient(Node):
    """Submits independent ops directly; drives locking mode for
    general ops."""

    def __init__(self, address: Address, network: Network,
                 shard_leaders: dict[int, Address],
                 retry_timeout: float = 10e-3):
        super().__init__(address, network)
        self.shard_leaders = dict(shard_leaders)
        self.retry_timeout = retry_timeout
        self._pending: dict[str, _PendingOp] = {}

    def submit(self, op: WorkloadOp, done: DoneFn) -> None:
        tag = self.fresh_tag(self.address)
        phase = "lock" if op.is_general else "request"
        pending = _PendingOp(op=op, done=done, start=self.now, tag=tag,
                             phase=phase)
        pending.timer = self.timer(self.retry_timeout, self._retransmit, tag)
        pending.timer.start()
        self._pending[tag] = pending
        self._send_phase(pending)

    def _send_phase(self, pending: _PendingOp) -> None:
        op = pending.op
        if pending.phase == "request":
            message = GRequest(tag=pending.tag, proc=op.proc, args=op.args,
                               participants=op.participants,
                               read_keys=op.read_keys,
                               write_keys=op.write_keys)
            for shard in op.participants:
                if shard not in pending.replies:
                    self.send(self.shard_leaders[shard], message)
        elif pending.phase == "lock":
            # Locks are acquired one shard at a time in ascending shard
            # order (resource ordering): no cross-shard wait cycle can
            # form, at the cost of one lock round trip per participant.
            message = GLockPrepare(tag=pending.tag, read_keys=op.read_keys,
                                   write_keys=op.write_keys)
            for shard in sorted(op.participants):
                if shard not in pending.replies:
                    self.send(self.shard_leaders[shard], message)
                    break
        else:
            message = GLockCommit(tag=pending.tag, commit=pending.commit,
                                  writes=pending.writes)
            for shard in op.participants:
                if shard not in pending.acks:
                    self.send(self.shard_leaders[shard], message)

    # -- independent path ---------------------------------------------------
    def on_GReply(self, src: Address, msg: GReply, packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "request":
            return
        pending.replies[msg.shard] = msg
        if len(pending.replies) == len(pending.op.participants):
            committed = all(r.committed for r in pending.replies.values())
            self._complete(pending, committed,
                           {s: r.result for s, r in pending.replies.items()})

    # -- locking-mode path ----------------------------------------------------
    def on_GLockReply(self, src: Address, msg: GLockReply,
                      packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "lock":
            return
        pending.replies[msg.shard] = msg
        pending.values.update(msg.values)
        if len(pending.replies) < len(pending.op.participants):
            self._send_phase(pending)   # lock the next shard in order
            return
        writes = pending.op.compute(pending.values) \
            if pending.op.compute else {}
        pending.commit = writes is not None
        pending.writes = tuple(writes.items()) if writes else ()
        pending.phase = "commit"
        pending.acks = set()
        self._send_phase(pending)

    def on_GLockAck(self, src: Address, msg: GLockAck,
                    packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "commit":
            return
        pending.acks.add(msg.shard)
        if len(pending.acks) == len(pending.op.participants):
            self._complete(pending, pending.commit, pending.values)

    # -- shared ----------------------------------------------------------
    def _retransmit(self, tag: str) -> None:
        pending = self._pending.get(tag)
        if pending is None:
            return
        self._send_phase(pending)
        pending.timer.start()

    def _complete(self, pending: _PendingOp, committed: bool,
                  result: Any) -> None:
        self._pending.pop(pending.tag, None)
        pending.timer.stop()
        pending.done(OpResult(
            committed=committed,
            latency=self.now - pending.start,
            result=result,
        ))
