"""Lock-Store: the conventional layered design (Figure 1).

Two-phase commit across shards, strict two-phase locking within them,
and Viewstamped Replication (Multi-Paxos-equivalent) under each shard —
the architecture the paper attributes to Spanner-like systems. The
client acts as the 2PC coordinator:

1. **Prepare** to each participant's leader. The leader acquires the
   transaction's locks (wait-die on conflict — the younger transaction
   aborts and the client retries with its original timestamp, so
   deadlock is impossible and starvation bounded), synchronously
   replicates the prepare through VR, executes the stored procedure
   (independent ops) or reads the lock set (general ops), and votes.
2. **Commit/Abort** to each leader, again synchronously replicated;
   locks release and (for general ops) the client-computed writes
   install.

Single-shard transactions take the standard one-phase-commit shortcut:
one lock-acquire + one VR round.

Per the paper's Figure 9 note, Lock-Store runs the *same* protocol for
independent (MRMW) and general (CRMW) transactions, so the two perform
identically. Backups log prepares/commits for durability; execution
happens at the leader (primary-copy), which is all the paper's
normal-case experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.baselines.common import DoneFn, OpResult, WorkloadOp
from repro.errors import TransactionAborted
from repro.net.endpoint import Node
from repro.net.message import Address, Packet
from repro.net.network import Network
from repro.replication.vr import VRConfig, VRReplica
from repro.store.kv import KVStore
from repro.store.locks import LockManager, LockOutcome, LockPolicy
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.store.undo import UndoLog


@dataclass(frozen=True)
class LSPrepare:
    tag: str
    ts: tuple            # unique wait-die priority: (submit time, tag)
    proc: str
    args: dict
    read_keys: frozenset
    write_keys: frozenset
    is_general: bool
    one_phase: bool


@dataclass(frozen=True)
class LSVote:
    tag: str
    shard: int
    vote: str            # "ok" | "abort"
    result: Any = None
    committed: bool = True   # one-phase outcome


@dataclass(frozen=True)
class LSDecision:
    tag: str
    commit: bool
    writes: tuple = ()   # general ops: ((key, value), ...)


@dataclass(frozen=True)
class LSAck:
    tag: str
    shard: int


class LockStoreReplica(VRReplica):
    """One replica of one Lock-Store shard."""

    def __init__(self, address: Address, network: Network, shard: int,
                 group: list[Address], index: int,
                 store: KVStore, registry: ProcedureRegistry,
                 owns=None, execution_cost: float = 0.5e-6,
                 vr_config: Optional[VRConfig] = None):
        super().__init__(address, network, group, index, vr_config)
        self.shard = shard
        self.store = store
        self.registry = registry
        self._owns = owns or (lambda key: True)
        self.execution_cost = execution_cost
        self.locks = LockManager()
        self._undo: dict[str, UndoLog] = {}
        self._vote_cache: dict[str, LSVote] = {}
        self._finished: set[str] = set()
        self._lock_pending: set[str] = set()
        self.txns_prepared = 0

    def execute_op(self, op: Any) -> Any:
        """Backups log only (primary-copy execution); see module doc."""
        return None

    # -- prepare phase ------------------------------------------------------
    def on_LSPrepare(self, src: Address, msg: LSPrepare,
                     packet: Packet) -> None:
        if not self.is_leader or self.vr_status != "normal":
            return
        if msg.tag in self._vote_cache:
            self.send(src, self._vote_cache[msg.tag])
            return
        if msg.tag in self._finished or msg.tag in self._undo \
                or msg.tag in self._lock_pending:
            return  # queued/deciding/applied; retransmissions wait
        reads = frozenset(k for k in msg.read_keys if self._owns(k))
        writes = frozenset(k for k in msg.write_keys if self._owns(k))
        self._lock_pending.add(msg.tag)
        outcome = self.locks.request(
            msg.tag, reads, writes,
            timestamp=msg.ts,
            policy=LockPolicy.WAIT_DIE,
            on_grant=lambda: self._locks_granted(src, msg),
            on_abort=lambda: self._locks_denied(src, msg),
        )
        if outcome is LockOutcome.ABORTED:
            self._lock_pending.discard(msg.tag)
            self.send(src, LSVote(tag=msg.tag, shard=self.shard,
                                  vote="abort"))
        elif outcome is LockOutcome.GRANTED:
            self._locks_granted(src, msg)

    def _locks_denied(self, client: Address, msg: LSPrepare) -> None:
        """Wait-die killed this request while it was queued."""
        self._lock_pending.discard(msg.tag)
        self.send(client, LSVote(tag=msg.tag, shard=self.shard,
                                 vote="abort"))

    def _locks_granted(self, client: Address, msg: LSPrepare) -> None:
        self._lock_pending.discard(msg.tag)
        if not self.is_leader or msg.tag in self._finished:
            # The coordinator already aborted this transaction (its
            # prepare was still queued when the decision arrived).
            self.locks.release_all(msg.tag)
            return
        if msg.one_phase:
            self.replicate(("commit-1p", msg.tag),
                           lambda _: self._finish_one_phase(client, msg))
        else:
            self.replicate(("prepare", msg.tag),
                           lambda _: self._finish_prepare(client, msg))

    def _finish_one_phase(self, client: Address, msg: LSPrepare) -> None:
        committed, result = self._execute(msg, undo=None)
        self.locks.release_all(msg.tag)
        self._finished.add(msg.tag)
        vote = LSVote(tag=msg.tag, shard=self.shard, vote="ok",
                      result=result, committed=committed)
        self._vote_cache[msg.tag] = vote
        self.send(client, vote)

    def _finish_prepare(self, client: Address, msg: LSPrepare) -> None:
        undo = UndoLog()
        if msg.is_general:
            # General ops read their lock set; writes come at commit.
            keys = (msg.read_keys | msg.write_keys)
            result = {k: self.store.get(k) for k in keys if self._owns(k)}
            committed = True
            self.busy(self.execution_cost)
        else:
            committed, result = self._execute(msg, undo=undo)
        if not committed:
            # Deterministic application abort at prepare time.
            undo.rollback(self.store)
            self.locks.release_all(msg.tag)
            vote = LSVote(tag=msg.tag, shard=self.shard, vote="abort",
                          result=result)
        else:
            self._undo[msg.tag] = undo
            self.txns_prepared += 1
            vote = LSVote(tag=msg.tag, shard=self.shard, vote="ok",
                          result=result)
        self._vote_cache[msg.tag] = vote
        self.send(client, vote)

    def _execute(self, msg: LSPrepare, undo: Optional[UndoLog]) -> tuple:
        ctx = TxnContext(self.store, shard=self.shard, owns=self._owns,
                         undo=undo)
        self.busy(self.execution_cost)
        try:
            return True, self.registry.execute(msg.proc, ctx, msg.args)
        except TransactionAborted as abort:
            if undo is not None:
                undo.rollback(self.store)
            return False, abort.reason

    # -- decision phase ------------------------------------------------------
    def on_LSDecision(self, src: Address, msg: LSDecision,
                      packet: Packet) -> None:
        if not self.is_leader or self.vr_status != "normal":
            return
        if msg.tag in self._finished:
            self.send(src, LSAck(tag=msg.tag, shard=self.shard))
            return
        if msg.tag not in self._undo:
            # Never prepared here (aborted at lock time, or the prepare
            # is still waiting in the lock queue): ack an abort so the
            # coordinator can finish, and drop any queued lock request.
            if not msg.commit:
                self._finished.add(msg.tag)
                self._lock_pending.discard(msg.tag)
                self.locks.release_all(msg.tag)
                self._vote_cache.pop(msg.tag, None)
                self.send(src, LSAck(tag=msg.tag, shard=self.shard))
            return
        kind = "commit" if msg.commit else "abort"
        self.replicate((kind, msg.tag),
                       lambda _: self._finish_decision(src, msg))

    def _finish_decision(self, client: Address, msg: LSDecision) -> None:
        undo = self._undo.pop(msg.tag, None)
        if undo is not None:
            if msg.commit:
                for key, value in msg.writes:
                    if self._owns(key):
                        self.store.put(key, value)
            else:
                undo.rollback(self.store)
        self.locks.release_all(msg.tag)
        self._finished.add(msg.tag)
        self._vote_cache.pop(msg.tag, None)
        self.send(client, LSAck(tag=msg.tag, shard=self.shard))


@dataclass
class _PendingTxn:
    op: WorkloadOp
    done: DoneFn
    start: float
    tag: str
    ts: tuple
    phase: str                   # "prepare" | "decide"
    votes: dict = field(default_factory=dict)
    acks: set = field(default_factory=set)
    commit: bool = True
    writes: tuple = ()
    retries: int = 0
    one_phase: bool = False
    timer: Any = None


class LockStoreClient(Node):
    """2PC coordinator with wait-die retry loops."""

    def __init__(self, address: Address, network: Network,
                 shard_leaders: dict[int, Address],
                 retry_timeout: float = 10e-3,
                 backoff: float = 0.5e-3,
                 max_retries: int = 200,
                 one_phase: bool = False):
        super().__init__(address, network)
        self.shard_leaders = dict(shard_leaders)
        self.retry_timeout = retry_timeout
        self.backoff = backoff
        self.max_retries = max_retries
        #: One-phase commit for single-shard transactions. Off by
        #: default: the paper's Lock-Store runs the full 2PC exchange
        #: for every transaction (its measured 4.5x gap matches the
        #: two-round cost). The ablation benchmark flips this on.
        self.one_phase = one_phase
        self._pending: dict[str, _PendingTxn] = {}
        self.aborts_retried = 0

    def submit(self, op: WorkloadOp, done: DoneFn,
               ts: Optional[tuple] = None) -> None:
        tag = self.fresh_tag(self.address)
        # Wait-die priority: unique and totally ordered (time, tag) —
        # ties would let conflicting transactions all wait and deadlock.
        pending = _PendingTxn(op=op, done=done, start=self.now,
                              tag=tag,
                              ts=(self.now, tag) if ts is None else ts,
                              phase="prepare")
        pending.timer = self.timer(self.retry_timeout, self._retransmit, tag)
        pending.timer.start()
        self._pending[tag] = pending
        self._send_prepares(pending)

    def _send_prepares(self, pending: _PendingTxn) -> None:
        op = pending.op
        pending.one_phase = (self.one_phase and not op.is_distributed
                             and not op.is_general)
        message = LSPrepare(
            tag=pending.tag, ts=pending.ts, proc=op.proc, args=op.args,
            read_keys=op.read_keys, write_keys=op.write_keys,
            is_general=op.is_general, one_phase=pending.one_phase,
        )
        for shard in op.participants:
            if shard not in pending.votes:
                self.send(self.shard_leaders[shard], message)

    def on_LSVote(self, src: Address, msg: LSVote, packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "prepare":
            return
        op = pending.op
        if pending.one_phase:
            if msg.vote == "abort":
                # Wait-die lock abort on the one-phase path: retry.
                self._retry(pending)
            else:
                self._complete(pending, committed=msg.committed,
                               result=msg.result)
            return
        pending.votes[msg.shard] = msg
        if msg.vote == "abort":
            self._decide(pending, commit=False)
            return
        if len(pending.votes) == len(op.participants):
            if op.is_general and op.compute is not None:
                values: dict = {}
                for vote in pending.votes.values():
                    if isinstance(vote.result, dict):
                        values.update(vote.result)
                writes = op.compute(values)
                if writes is None:
                    self._decide(pending, commit=False)
                    return
                pending.writes = tuple(writes.items())
            self._decide(pending, commit=True)

    def _decide(self, pending: _PendingTxn, commit: bool) -> None:
        pending.phase = "decide"
        pending.commit = commit
        pending.acks = set()
        message = LSDecision(tag=pending.tag, commit=commit,
                             writes=pending.writes if commit else ())
        for shard in pending.op.participants:
            self.send(self.shard_leaders[shard], message)

    def on_LSAck(self, src: Address, msg: LSAck, packet: Packet) -> None:
        pending = self._pending.get(msg.tag)
        if pending is None or pending.phase != "decide":
            return
        pending.acks.add(msg.shard)
        if len(pending.acks) == len(pending.op.participants):
            if pending.commit:
                result = {shard: vote.result
                          for shard, vote in pending.votes.items()}
                self._complete(pending, committed=True, result=result)
            else:
                self._retry(pending)

    def _retry(self, pending: _PendingTxn) -> None:
        """Wait-die abort: back off briefly and retry with the original
        timestamp (guaranteeing eventual progress)."""
        del self._pending[pending.tag]
        pending.timer.stop()
        pending.retries += 1
        self.aborts_retried += 1
        if pending.retries > self.max_retries:
            pending.done(OpResult(committed=False,
                                  latency=self.now - pending.start,
                                  retries=pending.retries))
            return
        self.call_later(self.backoff, self._resubmit, pending)

    def _resubmit(self, pending: _PendingTxn) -> None:
        tag = self.fresh_tag(self.address)
        fresh = _PendingTxn(op=pending.op, done=pending.done,
                            start=pending.start, tag=tag, ts=pending.ts,
                            phase="prepare", retries=pending.retries)
        fresh.timer = self.timer(self.retry_timeout, self._retransmit, tag)
        fresh.timer.start()
        self._pending[tag] = fresh
        self._send_prepares(fresh)

    def _retransmit(self, tag: str) -> None:
        pending = self._pending.get(tag)
        if pending is None:
            return
        if pending.phase == "prepare":
            self._send_prepares(pending)
        else:
            message = LSDecision(tag=pending.tag, commit=pending.commit,
                                 writes=pending.writes if pending.commit
                                 else ())
            for shard in pending.op.participants:
                if shard not in pending.acks:
                    self.send(self.shard_leaders[shard], message)
        pending.timer.start()

    def _complete(self, pending: _PendingTxn, committed: bool,
                  result: Any) -> None:
        self._pending.pop(pending.tag, None)
        pending.timer.stop()
        pending.done(OpResult(
            committed=committed,
            latency=self.now - pending.start,
            result=result,
            retries=pending.retries,
        ))
