"""The comparison systems from the paper's evaluation (§8).

All four are implemented on the same simulated substrate as Eris,
mirroring the paper's methodology ("All systems were implemented in the
same C++ framework as Eris, and all transactions used stored
procedures"):

- :mod:`repro.baselines.ntur` — NT-UR: non-transactional, unreplicated;
  the throughput ceiling any system with the same shard count could
  reach.
- :mod:`repro.baselines.lockstore` — Lock-Store: two-phase commit +
  two-phase locking + VR replication (the Spanner-like layered design).
- :mod:`repro.baselines.tapir` — TAPIR: inconsistent replication with a
  fast path plus OCC, with extra commit/finalize messages per txn.
- :mod:`repro.baselines.granola` — Granola: timestamp-coordinated
  independent transactions over VR, with a locking mode for
  non-independent workloads.
"""

from repro.baselines.common import WorkloadOp
from repro.baselines.ntur import NTURClient, NTURServer
from repro.baselines.lockstore import LockStoreClient, LockStoreReplica
from repro.baselines.tapir import TapirClient, TapirReplica
from repro.baselines.granola import GranolaClient, GranolaReplica

__all__ = [
    "WorkloadOp",
    "NTURClient",
    "NTURServer",
    "LockStoreClient",
    "LockStoreReplica",
    "TapirClient",
    "TapirReplica",
    "GranolaClient",
    "GranolaReplica",
]
