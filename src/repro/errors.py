"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers
can catch everything from one root, while still distinguishing protocol
aborts (expected control flow, e.g. an OCC validation failure) from
programming errors (malformed configuration, unknown procedure names).
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class ConfigurationError(ReproError):
    """A cluster, workload, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class NetworkError(ReproError):
    """Invalid use of the simulated network fabric."""


class UnknownProcedureError(ReproError):
    """A stored procedure name was not found in the registry."""


class TransactionAborted(ReproError):
    """A transaction was aborted; carries the abort reason.

    This is expected control flow for optimistic/locking protocols and
    for application-initiated aborts, not a bug.
    """

    def __init__(self, reason: str = "aborted"):
        super().__init__(reason)
        self.reason = reason


class LockConflict(TransactionAborted):
    """A lock request was denied under an abort-on-conflict policy."""


class InvariantViolation(ReproError):
    """A correctness checker found a violated protocol invariant."""


class ExperimentError(ReproError):
    """An experiment or smoke run failed to meet its success criteria
    (distinct from a protocol invariant being violated)."""
