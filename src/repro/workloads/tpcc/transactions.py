"""The five TPC-C transactions as independent stored procedures.

Every procedure runs unchanged on each participant shard, touching only
the keys that shard owns (``ctx.owns``); the partitioning guarantees
the pieces compose into the full transaction:

- **new_order** — the home shard consumes the district's next order id
  and inserts the order/order-line/new-order rows; each supply shard
  updates its own stock rows; the 1% invalid-item abort is decided from
  the generator-provided flag (derived from the replicated item table),
  identically everywhere.
- **payment** — home shard updates warehouse and district YTD; the
  customer's shard (possibly remote) updates the customer row.
- **order_status** — read-only, home shard.
- **delivery** — per-district oldest undelivered order, home shard.
- **stock_level** — read-only join over recent order lines and stock,
  home shard.
"""

from __future__ import annotations

from repro.store.kv import MISSING
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.workloads.tpcc.schema import (
    customer_key,
    customer_last_order_key,
    delivery_cursor_key,
    district_key,
    item_key,
    new_order_key,
    order_key,
    order_line_key,
    stock_key,
    warehouse_key,
)


def new_order(ctx: TxnContext, args: dict) -> dict:
    w = args["w_id"]
    d = args["d_id"]
    c = args["c_id"]
    items = args["items"]  # tuple of (i_id, supply_w_id, quantity)
    if args.get("invalid_item"):
        # Decided from the (replicated) item table: deterministic and
        # identical on every participant — safe for independent txns.
        ctx.abort("invalid item id")
    result: dict = {}
    home_district = district_key(w, d)
    if ctx.owns(home_district):
        district = dict(ctx.get(home_district))
        o_id = district["next_o_id"]
        district["next_o_id"] = o_id + 1
        ctx.put(home_district, district)
        warehouse = ctx.get(warehouse_key(w))
        customer = ctx.get(customer_key(w, d, c))
        total = 0.0
        all_local = all(supply_w == w for _, supply_w, _ in items)
        for number, (i_id, supply_w, quantity) in enumerate(items):
            item = ctx.get(item_key(i_id))
            amount = item["price"] * quantity
            total += amount
            ctx.put(order_line_key(w, d, o_id, number), {
                "i_id": i_id, "supply_w_id": supply_w,
                "quantity": quantity, "amount": amount,
            })
        total *= (1.0 - customer["discount"]) \
            * (1.0 + warehouse["tax"] + district["tax"])
        ctx.put(order_key(w, d, o_id), {
            "c_id": c, "entry_d": args["entry_d"], "carrier_id": None,
            "ol_cnt": len(items), "all_local": all_local,
        })
        ctx.put(new_order_key(w, d, o_id), 1)
        ctx.put(customer_last_order_key(w, d, c), o_id)
        result = {"o_id": o_id, "total": round(total, 2)}
    for i_id, supply_w, quantity in items:
        skey = stock_key(supply_w, i_id)
        if not ctx.owns(skey):
            continue
        stock = dict(ctx.get(skey))
        if stock["quantity"] - quantity >= 10:
            stock["quantity"] -= quantity
        else:
            stock["quantity"] = stock["quantity"] - quantity + 91
        stock["ytd"] += quantity
        stock["order_cnt"] += 1
        if supply_w != w:
            stock["remote_cnt"] += 1
        ctx.put(skey, stock)
    return result


def payment(ctx: TxnContext, args: dict) -> dict:
    w = args["w_id"]
    d = args["d_id"]
    amount = args["amount"]
    result: dict = {}
    wkey = warehouse_key(w)
    if ctx.owns(wkey):
        warehouse = dict(ctx.get(wkey))
        warehouse["ytd"] += amount
        ctx.put(wkey, warehouse)
        dkey = district_key(w, d)
        district = dict(ctx.get(dkey))
        district["ytd"] += amount
        ctx.put(dkey, district)
    ckey = customer_key(args["c_w_id"], args["c_d_id"], args["c_id"])
    if ctx.owns(ckey):
        customer = dict(ctx.get(ckey))
        customer["balance"] -= amount
        customer["ytd_payment"] += amount
        customer["payment_cnt"] += 1
        if customer["credit"] == "BC":
            customer["data"] = (f"{args['c_id']}|{w}|{d}|{amount}|"
                                + customer["data"])[:500]
        ctx.put(ckey, customer)
        result = {"balance": customer["balance"]}
    return result


def order_status(ctx: TxnContext, args: dict) -> dict:
    w = args["w_id"]
    d = args["d_id"]
    c = args["c_id"]
    if not ctx.owns(customer_key(w, d, c)):
        return {}
    customer = ctx.get(customer_key(w, d, c))
    o_id = ctx.get(customer_last_order_key(w, d, c))
    if o_id is MISSING:
        return {"balance": customer["balance"], "order": None}
    order = ctx.get(order_key(w, d, o_id))
    lines = []
    for number in range(order["ol_cnt"]):
        line = ctx.get(order_line_key(w, d, o_id, number))
        if line is not MISSING:
            lines.append(line)
    return {"balance": customer["balance"], "order": o_id,
            "carrier_id": order["carrier_id"], "lines": len(lines)}


def delivery(ctx: TxnContext, args: dict) -> dict:
    """Deliver the oldest undelivered order in each district."""
    w = args["w_id"]
    carrier = args["carrier_id"]
    delivered = []
    if not ctx.owns(warehouse_key(w)):
        return {}
    for d in range(args["n_districts"]):
        cursor_key = delivery_cursor_key(w, d)
        cursor = ctx.get(cursor_key)
        o_id = 1 if cursor is MISSING else cursor
        no_key = new_order_key(w, d, o_id)
        if ctx.get(no_key) is MISSING:
            continue  # nothing undelivered in this district
        ctx.delete(no_key)
        ctx.put(cursor_key, o_id + 1)
        order = dict(ctx.get(order_key(w, d, o_id)))
        order["carrier_id"] = carrier
        ctx.put(order_key(w, d, o_id), order)
        total = 0.0
        for number in range(order["ol_cnt"]):
            line = ctx.get(order_line_key(w, d, o_id, number))
            if line is not MISSING:
                total += line["amount"]
        ckey = customer_key(w, d, order["c_id"])
        customer = dict(ctx.get(ckey))
        customer["balance"] += total
        customer["delivery_cnt"] += 1
        ctx.put(ckey, customer)
        delivered.append((d, o_id))
    return {"delivered": delivered}


def stock_level(ctx: TxnContext, args: dict) -> dict:
    """Count recently-ordered items with stock below a threshold."""
    w = args["w_id"]
    d = args["d_id"]
    threshold = args["threshold"]
    if not ctx.owns(district_key(w, d)):
        return {}
    district = ctx.get(district_key(w, d))
    next_o = district["next_o_id"]
    item_ids = set()
    for o_id in range(max(1, next_o - 20), next_o):
        order = ctx.get(order_key(w, d, o_id))
        if order is MISSING:
            continue
        for number in range(order["ol_cnt"]):
            line = ctx.get(order_line_key(w, d, o_id, number))
            if line is not MISSING:
                item_ids.add(line["i_id"])
    low = 0
    for i_id in item_ids:
        stock = ctx.get(stock_key(w, i_id))
        if stock is not MISSING and stock["quantity"] < threshold:
            low += 1
    return {"low_stock": low}


def register_tpcc_procedures(registry: ProcedureRegistry) -> None:
    registry.register("tpcc_new_order", new_order)
    registry.register("tpcc_payment", payment)
    registry.register("tpcc_order_status", order_status)
    registry.register("tpcc_delivery", delivery)
    registry.register("tpcc_stock_level", stock_level)
