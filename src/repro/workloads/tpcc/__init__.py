"""TPC-C with H-Store partitioning (§8.2).

The schema is partitioned by warehouse (districts, customers, stock,
orders live with their warehouse; the read-only item table is
replicated to every shard), which lets *all five* TPC-C transactions be
expressed as independent transactions — the H-Store partitioning result
the paper adopts. New-order touches remote warehouses only through
their stock rows (shard-local updates), and payment touches a remote
customer only through its own row, so neither has cross-shard data
dependencies; the 1% invalid-item abort is decided from the replicated
item table, hence deterministically and identically on every
participant ("strongly two-phase").

As in the paper, this is not a fully conforming TPC-C implementation —
it reproduces the transaction logic and data flows that drive the
performance comparison, at a configurable scale.
"""

from repro.workloads.tpcc.generator import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc.loader import load_tpcc
from repro.workloads.tpcc.partition import tpcc_partitioner
from repro.workloads.tpcc.transactions import register_tpcc_procedures

__all__ = [
    "TPCCConfig",
    "TPCCWorkload",
    "load_tpcc",
    "tpcc_partitioner",
    "register_tpcc_procedures",
]
