"""TPC-C transaction mix generator.

Emits the standard mix (new-order 45%, payment 43%, order-status 4%,
delivery 4%, stock-level 4%); ``remote_fraction`` of new-orders include
a remote supply warehouse and the same fraction of payments a remote
customer — the paper's "10% of transactions issued to multiple
participants". 1% of new-orders carry an invalid item id and abort
deterministically, per the spec.

Declared read/write key sets (consumed by the lock- and OCC-based
systems) follow row-level locking with one convention: order,
order-line and new-order inserts are covered by the home district's
write lock, whose ``next_o_id`` they derive from — every writer of
those rows holds that lock, so the coverage is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.common import WorkloadOp
from repro.sim.randomness import SplitRandom
from repro.workloads.partition import Partitioner
from repro.workloads.tpcc.schema import (
    TPCCScale,
    customer_key,
    customer_last_order_key,
    district_key,
    stock_key,
    warehouse_key,
)

#: (name, cumulative probability) — the standard TPC-C mix.
_MIX = (
    ("new_order", 0.45),
    ("payment", 0.88),
    ("order_status", 0.92),
    ("delivery", 0.96),
    ("stock_level", 1.00),
)


@dataclass
class TPCCConfig:
    scale: TPCCScale = field(default_factory=TPCCScale)
    remote_fraction: float = 0.10
    invalid_item_fraction: float = 0.01
    min_order_lines: int = 5
    max_order_lines: int = 10


class TPCCWorkload:
    """Emits :class:`WorkloadOp` for the TPC-C mix."""

    def __init__(self, config: TPCCConfig, partitioner: Partitioner,
                 rng: SplitRandom):
        self.config = config
        self.partitioner = partitioner
        self._rng = rng.split("tpcc")
        self._clock = 0

    # -- helpers ----------------------------------------------------------
    def _warehouse(self) -> int:
        return self._rng.randrange(self.config.scale.n_warehouses)

    def _remote_warehouse(self, home: int) -> int:
        n = self.config.scale.n_warehouses
        if n == 1:
            return home
        other = self._rng.randrange(n - 1)
        return other if other < home else other + 1

    def _district(self) -> int:
        return self._rng.randrange(self.config.scale.districts_per_warehouse)

    def _customer(self) -> int:
        return self._rng.randrange(self.config.scale.customers_per_district)

    def _item(self) -> int:
        return self._rng.randint(1, self.config.scale.n_items)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _shard(self, w: int) -> int:
        return self.partitioner.shard_of(warehouse_key(w))

    # -- transaction builders ----------------------------------------------
    def _new_order(self) -> WorkloadOp:
        scale = self.config.scale
        w = self._warehouse()
        d = self._district()
        c = self._customer()
        n_lines = self._rng.randint(self.config.min_order_lines,
                                    self.config.max_order_lines)
        remote = self._rng.random() < self.config.remote_fraction
        items = []
        seen = set()
        for line in range(n_lines):
            i_id = self._item()
            while i_id in seen:
                i_id = self._item()
            seen.add(i_id)
            supply_w = w
            if remote and line == 0 and scale.n_warehouses > 1:
                supply_w = self._remote_warehouse(w)
            items.append((i_id, supply_w, self._rng.randint(1, 10)))
        invalid = self._rng.random() < self.config.invalid_item_fraction
        reads = {warehouse_key(w), customer_key(w, d, c)}
        writes = {district_key(w, d)}
        writes.update(stock_key(sw, i) for i, sw, _ in items)
        participants = {self._shard(w)}
        participants.update(self._shard(sw) for _, sw, _ in items)
        return WorkloadOp(
            proc="tpcc_new_order",
            args={"w_id": w, "d_id": d, "c_id": c, "items": tuple(items),
                  "entry_d": self._tick(), "invalid_item": invalid},
            participants=tuple(sorted(participants)),
            read_keys=frozenset(reads),
            write_keys=frozenset(writes),
        )

    def _payment(self) -> WorkloadOp:
        w = self._warehouse()
        d = self._district()
        remote = (self._rng.random() < self.config.remote_fraction
                  and self.config.scale.n_warehouses > 1)
        c_w = self._remote_warehouse(w) if remote else w
        c_d = self._district()
        c = self._customer()
        amount = round(self._rng.uniform(1.0, 5000.0), 2)
        writes = {warehouse_key(w), district_key(w, d),
                  customer_key(c_w, c_d, c)}
        participants = {self._shard(w), self._shard(c_w)}
        return WorkloadOp(
            proc="tpcc_payment",
            args={"w_id": w, "d_id": d, "c_w_id": c_w, "c_d_id": c_d,
                  "c_id": c, "amount": amount},
            participants=tuple(sorted(participants)),
            write_keys=frozenset(writes),
        )

    def _order_status(self) -> WorkloadOp:
        w = self._warehouse()
        d = self._district()
        c = self._customer()
        reads = {customer_key(w, d, c), customer_last_order_key(w, d, c),
                 district_key(w, d)}
        return WorkloadOp(
            proc="tpcc_order_status",
            args={"w_id": w, "d_id": d, "c_id": c},
            participants=(self._shard(w),),
            read_keys=frozenset(reads),
        )

    def _delivery(self) -> WorkloadOp:
        w = self._warehouse()
        writes = {warehouse_key(w)}
        writes.update(district_key(w, d)
                      for d in range(self.config.scale
                                     .districts_per_warehouse))
        return WorkloadOp(
            proc="tpcc_delivery",
            args={"w_id": w, "carrier_id": self._rng.randint(1, 10),
                  "n_districts": self.config.scale.districts_per_warehouse},
            participants=(self._shard(w),),
            write_keys=frozenset(writes),
        )

    def _stock_level(self) -> WorkloadOp:
        w = self._warehouse()
        d = self._district()
        return WorkloadOp(
            proc="tpcc_stock_level",
            args={"w_id": w, "d_id": d,
                  "threshold": self._rng.randint(10, 20)},
            participants=(self._shard(w),),
            read_keys=frozenset({district_key(w, d)}),
        )

    def next_op(self) -> WorkloadOp:
        draw = self._rng.random()
        for name, cumulative in _MIX:
            if draw < cumulative:
                return getattr(self, f"_{name}")()
        return self._stock_level()  # pragma: no cover - float edge
