"""Warehouse-based partitioning for TPC-C (H-Store style).

Every row key is a tuple whose first element names the table; all
warehouse-anchored tables carry the warehouse id second, so the shard
of a key is ``w_id % n_shards``. The item table is read-only and
replicated to every shard.
"""

from __future__ import annotations

from typing import Hashable

from repro.workloads.partition import Partitioner


def warehouse_of(key: Hashable) -> int:
    """Warehouse id embedded in a TPC-C row key."""
    return key[1]


def tpcc_partitioner(n_shards: int) -> Partitioner:
    def shard_fn(key: Hashable) -> int:
        if not isinstance(key, tuple):
            raise TypeError(f"TPC-C keys are tuples, got {key!r}")
        if key[0] == "item":
            return 0  # never consulted: items are replicated
        return warehouse_of(key) % n_shards

    def replicated(key: Hashable) -> bool:
        return isinstance(key, tuple) and key[0] == "item"

    return Partitioner(n_shards, shard_fn=shard_fn, replicated=replicated)
