"""TPC-C database loader.

Populates every replica store with its shard's rows; the item table is
replicated into every store (the H-Store partitioning scheme).
"""

from __future__ import annotations

from repro.store.kv import KVStore
from repro.workloads.partition import Partitioner
from repro.workloads.tpcc.schema import (
    TPCCScale,
    customer_key,
    district_key,
    item_key,
    make_customer,
    make_district,
    make_item,
    make_stock,
    make_warehouse,
    stock_key,
    warehouse_key,
)


def generate_rows(scale: TPCCScale):
    """Yield every (key, row) in the initial database."""
    scale.validate()
    for i in range(1, scale.n_items + 1):
        yield item_key(i), make_item(i)
    for w in range(scale.n_warehouses):
        yield warehouse_key(w), make_warehouse(w)
        for i in range(1, scale.n_items + 1):
            yield stock_key(w, i), make_stock(w, i)
        for d in range(scale.districts_per_warehouse):
            yield district_key(w, d), make_district(w, d)
            for c in range(scale.customers_per_district):
                yield customer_key(w, d, c), make_customer(w, d, c)


def load_tpcc(stores: dict[int, list[KVStore]], partitioner: Partitioner,
              scale: TPCCScale) -> int:
    """Load all rows into the owning shards' stores; returns row count."""
    count = 0
    for key, row in generate_rows(scale):
        count += 1
        if partitioner.is_replicated(key):
            owners = list(stores)
        else:
            owners = [partitioner.shard_of(key)]
        for shard in owners:
            for store in stores[shard]:
                store.put(key, row)
    return count
