"""TPC-C row constructors and scale parameters.

Rows are plain dicts stored under tuple keys; procedures copy-on-write
(``dict(row)`` before mutating) so undo logging's shallow pre-images
stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TPCCScale:
    """How much data to load. Defaults are scaled down from the spec's
    (100k items, 3k customers/district) so simulations stay laptop-
    sized; ratios between tables are preserved."""

    n_warehouses: int = 15
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    n_items: int = 200

    def validate(self) -> None:
        if min(self.n_warehouses, self.districts_per_warehouse,
               self.customers_per_district, self.n_items) <= 0:
            raise ValueError("all TPC-C scale parameters must be positive")


# -- key constructors --------------------------------------------------

def warehouse_key(w: int) -> tuple:
    return ("warehouse", w)


def district_key(w: int, d: int) -> tuple:
    return ("district", w, d)


def customer_key(w: int, d: int, c: int) -> tuple:
    return ("customer", w, d, c)


def customer_last_order_key(w: int, d: int, c: int) -> tuple:
    return ("cust_last_order", w, d, c)


def stock_key(w: int, i: int) -> tuple:
    return ("stock", w, i)


def item_key(i: int) -> tuple:
    return ("item", i)


def order_key(w: int, d: int, o: int) -> tuple:
    return ("order", w, d, o)


def order_line_key(w: int, d: int, o: int, number: int) -> tuple:
    return ("order_line", w, d, o, number)


def new_order_key(w: int, d: int, o: int) -> tuple:
    return ("new_order", w, d, o)


def delivery_cursor_key(w: int, d: int) -> tuple:
    """Oldest undelivered order id for one district."""
    return ("delivery_cursor", w, d)


# -- row constructors ----------------------------------------------------

def make_warehouse(w: int) -> dict:
    return {"w_id": w, "name": f"WH{w}", "tax": 0.05 + (w % 10) * 0.005,
            "ytd": 300_000.0}


def make_district(w: int, d: int) -> dict:
    return {"w_id": w, "d_id": d, "tax": 0.04 + (d % 10) * 0.005,
            "ytd": 30_000.0, "next_o_id": 1}


def make_customer(w: int, d: int, c: int) -> dict:
    return {"w_id": w, "d_id": d, "c_id": c,
            "credit": "BC" if c % 10 == 0 else "GC",
            "balance": -10.0, "ytd_payment": 10.0,
            "payment_cnt": 1, "delivery_cnt": 0,
            "discount": (c % 50) / 100.0,
            "data": f"customer-{w}-{d}-{c}"}


def make_stock(w: int, i: int) -> dict:
    return {"w_id": w, "i_id": i, "quantity": 50 + (i % 50),
            "ytd": 0, "order_cnt": 0, "remote_cnt": 0}


def make_item(i: int) -> dict:
    return {"i_id": i, "name": f"item-{i}", "price": 1.0 + (i % 100) / 10.0,
            "data": "ORIGINAL" if i % 10 == 0 else f"data-{i}"}
