"""Workload generators for the evaluation (§8).

- :mod:`repro.workloads.zipf` — YCSB-style Zipfian key chooser.
- :mod:`repro.workloads.ycsb` — YCSB+T: the SRW / MRMW / CRMW
  transactional microbenchmarks of §8.1.
- :mod:`repro.workloads.tpcc` — TPC-C with H-Store partitioning (§8.2).
"""

from repro.workloads.partition import Partitioner
from repro.workloads.ycsb import (
    YCSBConfig,
    YCSBWorkload,
    register_ycsb_procedures,
)
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "Partitioner",
    "YCSBConfig",
    "YCSBWorkload",
    "register_ycsb_procedures",
    "ZipfGenerator",
]
