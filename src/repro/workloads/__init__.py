"""Workload generators for the evaluation (§8).

- :mod:`repro.workloads.zipf` — YCSB-style Zipfian key chooser.
- :mod:`repro.workloads.ycsb` — YCSB+T: the SRW / MRMW / CRMW
  transactional microbenchmarks of §8.1.
- :mod:`repro.workloads.tpcc` — TPC-C with H-Store partitioning (§8.2).
- :mod:`repro.workloads.counters` — coordination-free counters: the
  commutativity-heavy mix exercising the op-class fast paths.
"""

from repro.workloads.counters import (
    CountersConfig,
    CountersWorkload,
    load_counters,
    register_counters_procedures,
)
from repro.workloads.partition import Partitioner
from repro.workloads.ycsb import (
    YCSBConfig,
    YCSBWorkload,
    register_ycsb_procedures,
)
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "CountersConfig",
    "CountersWorkload",
    "Partitioner",
    "YCSBConfig",
    "YCSBWorkload",
    "load_counters",
    "register_counters_procedures",
    "register_ycsb_procedures",
    "ZipfGenerator",
]
