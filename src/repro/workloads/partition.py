"""Key partitioning across shards.

A :class:`Partitioner` maps every key to its owning shard and builds
the per-shard ownership predicates the execution contexts use. Keys
listed as *replicated* (e.g. TPC-C's read-only item table) are owned by
every shard, so any participant can read them locally — the paper's
§4.1 note that cross-shard replicated data can still be updated
consistently with an independent transaction.
"""

from __future__ import annotations

import zlib
from typing import Callable, Hashable


class Partitioner:
    """Deterministic key → shard mapping (stable across processes,
    unlike ``hash()``)."""

    def __init__(self, n_shards: int,
                 shard_fn: Callable[[Hashable], int] | None = None,
                 replicated: Callable[[Hashable], bool] | None = None):
        if n_shards <= 0:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self._shard_fn = shard_fn or self._default_shard
        self._replicated = replicated or (lambda key: False)

    def _default_shard(self, key: Hashable) -> int:
        if isinstance(key, int):
            return key % self.n_shards
        return zlib.crc32(repr(key).encode()) % self.n_shards

    def shard_of(self, key: Hashable) -> int:
        return self._shard_fn(key) % self.n_shards

    def is_replicated(self, key: Hashable) -> bool:
        return self._replicated(key)

    def owns_fn(self, shard: int) -> Callable[[Hashable], bool]:
        """Ownership predicate for one shard's execution contexts."""
        def owns(key: Hashable) -> bool:
            if self._replicated(key):
                return True
            return self.shard_of(key) == shard
        return owns

    def participants_for(self, keys) -> tuple[int, ...]:
        """Sorted shard set touching ``keys`` (replicated keys do not
        add participants on their own)."""
        shards = {self.shard_of(k) for k in keys if not self._replicated(k)}
        return tuple(sorted(shards))
