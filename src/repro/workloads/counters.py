"""Coordination-free counters: a commutativity-heavy workload.

The op-class taxonomy (see :mod:`repro.store.procedures`) only pays
off on workloads where most operations are semantically commutative or
read-only. This module provides one: an analytics-style mix of counter
increments, tag-set unions, point reads, and occasional read-modify-
write resets, in the spirit of the "coordination-free" aggregate
workloads used to evaluate Harmonia-style fast paths.

Key space layout (chosen so the multi-process launcher's per-shard
loader works unchanged):

- **counter keys** are the integers ``0 .. n_keys-1``, loaded with 0;
- **tag-set keys** are ``n_keys .. 2*n_keys-1`` (counter key +
  ``n_keys``), *not* pre-loaded — the procedures treat a missing value
  as the empty set and store sorted tuples so every replica serializes
  the set identically.

Operation mix (three independent fractions of the total):

==================  ===========  ======================================
operation           op-class     semantics
==================  ===========  ======================================
``counter_read``    READ_ONLY    point read of one counter
``counter_add``     COMMUTATIVE  increment 1–2 counters (Abelian: +)
``tag_add``         COMMUTATIVE  add a tag (semilattice: set union)
``counter_reset``   GENERIC      read-modify-write: zero the counter
==================  ===========  ======================================

Reads take the Harmonia single-replica fast path when their key is
clean; commutative writes may be early-applied out of order behind the
sequencer's reorder barrier; resets are ordinary Eris independent
transactions and act as the ordering barrier for everything behind
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import WorkloadOp
from repro.errors import ConfigurationError
from repro.sim.randomness import SplitRandom
from repro.store.kv import KVStore, MISSING
from repro.store.procedures import OpClass, ProcedureRegistry, TxnContext
from repro.workloads.partition import Partitioner
from repro.workloads.zipf import ZipfGenerator


# -- stored procedures --------------------------------------------------

def counter_read(ctx: TxnContext, args: dict) -> dict:
    key = args["key"]
    if ctx.owns(key):
        value = ctx.get(key)
        return {key: 0 if value is MISSING else value}
    return {}


def counter_add(ctx: TxnContext, args: dict) -> None:
    """Increment each owned counter. Integer addition is Abelian, so
    any two ``counter_add`` executions commute — the COMMUTATIVE
    contract. Returns nothing: a commutative op must not expose the
    intermediate value it observed (replicas may apply it at different
    points of the serial order)."""
    delta = args.get("delta", 1)
    for key in args["keys"]:
        if ctx.owns(key):
            value = ctx.get(key)
            value = 0 if value is MISSING else value
            ctx.put(key, value + delta)


def tag_add(ctx: TxnContext, args: dict) -> None:
    """Add a tag to a key's tag set. Set union is a semilattice join
    (idempotent, commutative, associative). The set is stored as a
    sorted tuple so every replica's byte-level state is identical
    regardless of insertion order."""
    key = args["key"]
    if not ctx.owns(key):
        return
    current = ctx.get(key)
    tags = set() if current is MISSING or current == 0 else set(current)
    tags.add(args["tag"])
    ctx.put(key, tuple(sorted(tags)))


def counter_reset(ctx: TxnContext, args: dict) -> dict:
    """Read the counter and zero it — a read-modify-write that does
    NOT commute with ``counter_add`` (reset-then-add != add-then-
    reset), so it stays GENERIC and barriers the fast paths."""
    key = args["key"]
    if not ctx.owns(key):
        return {}
    value = ctx.get(key)
    value = 0 if value is MISSING else value
    ctx.put(key, 0)
    return {key: value}


def register_counters_procedures(registry: ProcedureRegistry) -> None:
    registry.register("counter_read", counter_read,
                      op_class=OpClass.READ_ONLY)
    registry.register("counter_add", counter_add,
                      op_class=OpClass.COMMUTATIVE,
                      merge=lambda a, b: a + b)
    registry.register("tag_add", tag_add,
                      op_class=OpClass.COMMUTATIVE,
                      merge=lambda a, b: tuple(sorted(set(a) | set(b))))
    registry.register("counter_reset", counter_reset)


def load_counters(stores: dict[int, list[KVStore]],
                  partitioner: Partitioner, n_keys: int) -> None:
    """Populate every replica store with its shard's counter keys
    (value 0). Tag-set keys are intentionally absent: the procedures
    treat MISSING as the empty set."""
    for key in range(n_keys):
        shard = partitioner.shard_of(key)
        for store in stores[shard]:
            store.put(key, 0)


# -- the generator ------------------------------------------------------

@dataclass
class CountersConfig:
    """One counters experiment's workload parameters.

    ``read_fraction`` + ``commutative_fraction`` is the coordination-
    free fraction; the remainder are GENERIC ``counter_reset`` RMWs.
    """

    n_keys: int = 10_000
    read_fraction: float = 0.5
    commutative_fraction: float = 0.4
    #: Of the commutative increments, this fraction touch two counters
    #: on different shards (multi-stamped, still commutative).
    multi_shard_fraction: float = 0.0
    #: Of the commutative ops, this fraction are tag-set unions
    #: instead of integer increments.
    tag_fraction: float = 0.2
    zipf_theta: float = 0.0

    def validate(self) -> None:
        if self.n_keys <= 1:
            raise ConfigurationError("need at least two keys")
        for name in ("read_fraction", "commutative_fraction",
                     "multi_shard_fraction", "tag_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1]: {value}")
        if self.read_fraction + self.commutative_fraction > 1.0:
            raise ConfigurationError(
                "read_fraction + commutative_fraction must be <= 1: "
                f"{self.read_fraction} + {self.commutative_fraction}")


class CountersWorkload:
    """Emits :class:`WorkloadOp` according to the configured mix."""

    def __init__(self, config: CountersConfig, partitioner: Partitioner,
                 rng: SplitRandom):
        config.validate()
        self.config = config
        self.partitioner = partitioner
        self._rng = rng.split("counters")
        self._zipf = ZipfGenerator(config.n_keys, config.zipf_theta,
                                   self._rng.split("keys"))
        self._tag_counter = 0

    # -- key selection ------------------------------------------------------
    def _key(self) -> int:
        return self._zipf.next()

    def _cross_shard_pair(self) -> tuple[int, int]:
        first = self._key()
        if self.partitioner.n_shards < 2:
            second = self._key()
            while second == first:
                second = self._key()
            return first, second
        second = self._key()
        attempts = 0
        while (self.partitioner.shard_of(second)
               == self.partitioner.shard_of(first)):
            second = self._key()
            attempts += 1
            if attempts > 1000:  # pathological shard skew; give up
                second = (first + 1) % self.config.n_keys
        return first, second

    # -- op builders ----------------------------------------------------------
    def _read_op(self) -> WorkloadOp:
        key = self._key()
        return WorkloadOp(proc="counter_read", args={"key": key},
                          participants=(self.partitioner.shard_of(key),),
                          read_keys=frozenset([key]),
                          op_class=OpClass.READ_ONLY)

    def _add_op(self) -> WorkloadOp:
        if self._rng.random() < self.config.multi_shard_fraction:
            keys: tuple[int, ...] = self._cross_shard_pair()
        else:
            keys = (self._key(),)
        keyset = frozenset(keys)
        return WorkloadOp(
            proc="counter_add", args={"keys": keys, "delta": 1},
            participants=self.partitioner.participants_for(keyset),
            write_keys=keyset, op_class=OpClass.COMMUTATIVE)

    def _tag_op(self) -> WorkloadOp:
        # Tag-set keys live at counter key + n_keys (see module doc).
        key = self._key() + self.config.n_keys
        self._tag_counter += 1
        tag = f"t{self._tag_counter % 64}"
        return WorkloadOp(
            proc="tag_add", args={"key": key, "tag": tag},
            participants=(self.partitioner.shard_of(key),),
            write_keys=frozenset([key]), op_class=OpClass.COMMUTATIVE)

    def _reset_op(self) -> WorkloadOp:
        key = self._key()
        keyset = frozenset([key])
        return WorkloadOp(proc="counter_reset", args={"key": key},
                          participants=(self.partitioner.shard_of(key),),
                          read_keys=keyset, write_keys=keyset)

    def next_op(self) -> WorkloadOp:
        draw = self._rng.random()
        if draw < self.config.read_fraction:
            return self._read_op()
        if draw < self.config.read_fraction + self.config.commutative_fraction:
            if self._rng.random() < self.config.tag_fraction:
                return self._tag_op()
            return self._add_op()
        return self._reset_op()
