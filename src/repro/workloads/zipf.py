"""Zipfian key selection, YCSB-style.

Implements the Gray et al. "Quickly generating billion-record synthetic
databases" zipfian generator used by YCSB, parameterized by the Zipf
exponent theta in [0, 1). theta=0 degenerates to uniform; the Figure
8/10 sweeps run theta from 0.5 toward 1.0 (values >= 1 are clamped just
below, where the closed form remains valid — the same approach YCSB's
scrambled generator takes).
"""

from __future__ import annotations

from repro.sim.randomness import SplitRandom

_MAX_THETA = 0.9999


class ZipfGenerator:
    """Draws ranks in [0, n) with P(rank=k) proportional to 1/(k+1)^theta."""

    def __init__(self, n: int, theta: float, rng: SplitRandom):
        if n <= 0:
            raise ValueError(f"need a positive key space, got {n}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self.n = n
        self.theta = min(theta, _MAX_THETA)
        self._rng = rng
        if self.theta == 0.0:
            self._uniform = True
            return
        self._uniform = False
        self._zetan = self._zeta(n, self.theta)
        self._alpha = 1.0 / (1.0 - self.theta)
        denominator = 1.0 - self._zeta(2, self.theta) / self._zetan
        # With n == 2 the draw always lands in the first two branches of
        # next(), so eta is never consulted; any finite value works.
        self._eta = (0.0 if denominator == 0.0 else
                     (1.0 - (2.0 / n) ** (1.0 - self.theta)) / denominator)
        self._half_pow_theta = 1.0 + 0.5 ** self.theta

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        if self._uniform:
            return self._rng.randrange(self.n)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._half_pow_theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next_distinct_pair(self) -> tuple[int, int]:
        """Two distinct ranks (for two-key transactions)."""
        first = self.next()
        second = self.next()
        while second == first:
            second = self.next()
        return first, second
