"""YCSB+T: transactional key-value microbenchmarks (§8.1).

Three workloads, matching the paper:

- **SRW** — single-shard read/write: single-key reads and writes in a
  1:1 ratio. No distributed transactions, minimal contention: the
  ideal case for every system (Figure 6).
- **MRMW** — multi-shard read-modify-write: a configurable fraction of
  transactions atomically increment two keys on *different* shards
  (no cross-shard data dependency → independent transactions); the rest
  are SRW singles (Figures 7, 8, 9, 11).
- **CRMW** — cross-shard read-modify-write: the distributed fraction
  transactionally *swaps* two keys on different shards — each write
  depends on the other shard's read, so these are general transactions
  (Figures 9, 10).

Key access is uniform or Zipfian per the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import WorkloadOp
from repro.errors import ConfigurationError
from repro.sim.randomness import SplitRandom
from repro.store.kv import KVStore, MISSING
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.workloads.partition import Partitioner
from repro.workloads.zipf import ZipfGenerator


# -- stored procedures --------------------------------------------------

def ycsb_read(ctx: TxnContext, args: dict) -> dict:
    key = args["key"]
    if ctx.owns(key):
        return {key: ctx.get(key)}
    return {}


def ycsb_write(ctx: TxnContext, args: dict) -> None:
    key = args["key"]
    if ctx.owns(key):
        ctx.put(key, args["value"])


def ycsb_rmw(ctx: TxnContext, args: dict) -> dict:
    """Unconditionally increment each owned key — a one-round
    distributed read/write transaction that always commits, i.e. an
    independent transaction (§4.1)."""
    out = {}
    for key in args["keys"]:
        if ctx.owns(key):
            value = ctx.get(key)
            value = 0 if value is MISSING else value
            ctx.put(key, value + 1)
            out[key] = value + 1
    return out


def register_ycsb_procedures(registry: ProcedureRegistry) -> None:
    registry.register("ycsb_read", ycsb_read)
    registry.register("ycsb_write", ycsb_write)
    registry.register("ycsb_rmw", ycsb_rmw)


def load_ycsb(stores: dict[int, list[KVStore]], partitioner: Partitioner,
              n_keys: int) -> None:
    """Populate every replica store with its shard's keys (value 0)."""
    for key in range(n_keys):
        shard = partitioner.shard_of(key)
        for store in stores[shard]:
            store.put(key, 0)


# -- the generator ------------------------------------------------------

@dataclass
class YCSBConfig:
    """One YCSB+T experiment's workload parameters."""

    workload: str = "srw"                  # srw | mrmw | crmw
    n_keys: int = 10_000
    distributed_fraction: float = 0.0      # fraction of two-key txns
    zipf_theta: float = 0.0                # 0 = uniform key access

    def validate(self) -> None:
        if self.workload not in ("srw", "mrmw", "crmw"):
            raise ConfigurationError(f"unknown workload {self.workload!r}")
        if not 0.0 <= self.distributed_fraction <= 1.0:
            raise ConfigurationError("distributed_fraction must be in [0,1]")
        if self.n_keys <= 1:
            raise ConfigurationError("need at least two keys")


class YCSBWorkload:
    """Emits :class:`WorkloadOp` according to the configured mix."""

    def __init__(self, config: YCSBConfig, partitioner: Partitioner,
                 rng: SplitRandom):
        config.validate()
        self.config = config
        self.partitioner = partitioner
        self._rng = rng.split("ycsb")
        self._zipf = ZipfGenerator(config.n_keys, config.zipf_theta,
                                   self._rng.split("keys"))
        self._value_counter = 0

    # -- key selection ------------------------------------------------------
    def _key(self) -> int:
        return self._zipf.next()

    def _cross_shard_pair(self) -> tuple[int, int]:
        """Two keys guaranteed to live on different shards (the paper's
        multi-shard transactions)."""
        if self.partitioner.n_shards < 2:
            return self._zipf.next_distinct_pair()
        first = self._key()
        second = self._key()
        attempts = 0
        while (self.partitioner.shard_of(second)
               == self.partitioner.shard_of(first)):
            second = self._key()
            attempts += 1
            if attempts > 1000:  # pathological shard skew; give up
                second = (first + 1) % self.config.n_keys
        return first, second

    # -- op builders ----------------------------------------------------------
    def _srw_op(self) -> WorkloadOp:
        key = self._key()
        shard = self.partitioner.shard_of(key)
        if self._rng.random() < 0.5:
            return WorkloadOp(proc="ycsb_read", args={"key": key},
                              participants=(shard,),
                              read_keys=frozenset([key]))
        self._value_counter += 1
        return WorkloadOp(proc="ycsb_write",
                          args={"key": key, "value": self._value_counter},
                          participants=(shard,),
                          write_keys=frozenset([key]))

    def _mrmw_op(self) -> WorkloadOp:
        k1, k2 = self._cross_shard_pair()
        keys = frozenset([k1, k2])
        return WorkloadOp(proc="ycsb_rmw", args={"keys": (k1, k2)},
                          participants=self.partitioner.participants_for(keys),
                          read_keys=keys, write_keys=keys)

    def _crmw_op(self) -> WorkloadOp:
        k1, k2 = self._cross_shard_pair()
        keys = frozenset([k1, k2])

        def swap(values: dict, k1=k1, k2=k2) -> dict:
            return {k1: values.get(k2, 0), k2: values.get(k1, 0)}

        return WorkloadOp(proc="ycsb_swap", args={"keys": (k1, k2)},
                          participants=self.partitioner.participants_for(keys),
                          read_keys=keys, write_keys=keys,
                          is_general=True, compute=swap)

    def next_op(self) -> WorkloadOp:
        workload = self.config.workload
        if workload == "srw":
            return self._srw_op()
        if self._rng.random() >= self.config.distributed_fraction:
            return self._srw_op()
        return self._mrmw_op() if workload == "mrmw" else self._crmw_op()
