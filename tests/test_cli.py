"""Tests for the command-line experiment runner and CSV export."""

import csv

import pytest

from repro.harness.cli import build_parser, main, run
from repro.harness.results import write_csv


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.system == "eris"
    assert args.workload == "srw"
    assert args.shards == 3


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "mystery"])


def test_list_systems(capsys):
    assert main(["--list-systems"]) == 0
    out = capsys.readouterr().out
    assert "eris" in out and "lockstore" in out


def test_run_srw_small(capsys):
    code = main(["--system", "eris", "--workload", "srw",
                 "--shards", "2", "--clients", "5", "--keys", "100",
                 "--warmup", "0.002", "--duration", "0.005"])
    assert code == 0
    out = capsys.readouterr().out
    assert "txn/s" in out and "eris" in out


def test_run_returns_result_object():
    args = build_parser().parse_args(
        ["--system", "ntur", "--workload", "mrmw", "--distributed", "0.5",
         "--shards", "2", "--clients", "5", "--keys", "100",
         "--warmup", "0.002", "--duration", "0.005"])
    cluster, result = run(args)
    assert result.committed > 0
    assert cluster.config.system == "ntur"


def test_run_tpcc_small():
    args = build_parser().parse_args(
        ["--workload", "tpcc", "--warehouses", "2", "--shards", "2",
         "--clients", "5", "--warmup", "0.002", "--duration", "0.005"])
    cluster, result = run(args)
    assert result.committed > 0   # new-order commits only


def test_csv_export(tmp_path, capsys):
    target = tmp_path / "out.csv"
    code = main(["--system", "ntur", "--shards", "2", "--clients", "4",
                 "--keys", "100", "--warmup", "0.002",
                 "--duration", "0.004", "--csv", str(target)])
    assert code == 0
    rows = list(csv.reader(open(target)))
    assert rows[0][0] == "system"
    assert rows[1][0] == "ntur"


def test_write_csv_append_keeps_single_header(tmp_path):
    target = tmp_path / "sweep.csv"
    write_csv(str(target), ["a", "b"], [[1, 2]], append=True)
    write_csv(str(target), ["a", "b"], [[3, 4]], append=True)
    rows = list(csv.reader(open(target)))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_write_csv_overwrite(tmp_path):
    target = tmp_path / "fresh.csv"
    write_csv(str(target), ["x"], [[1]])
    write_csv(str(target), ["x"], [[2]])
    rows = list(csv.reader(open(target)))
    assert rows == [["x"], ["2"]]
