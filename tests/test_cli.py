"""Tests for the command-line experiment runner and CSV export."""

import csv
import json

import pytest

from repro.harness.cli import build_parser, main, run
from repro.harness.results import write_csv


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.system == "eris"
    assert args.workload == "srw"
    assert args.shards == 3


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "mystery"])


def test_list_systems(capsys):
    assert main(["--list-systems"]) == 0
    out = capsys.readouterr().out
    assert "eris" in out and "lockstore" in out


def test_run_srw_small(capsys):
    code = main(["--system", "eris", "--workload", "srw",
                 "--shards", "2", "--clients", "5", "--keys", "100",
                 "--warmup", "0.002", "--duration", "0.005"])
    assert code == 0
    out = capsys.readouterr().out
    assert "txn/s" in out and "eris" in out


def test_run_returns_result_object():
    args = build_parser().parse_args(
        ["--system", "ntur", "--workload", "mrmw", "--distributed", "0.5",
         "--shards", "2", "--clients", "5", "--keys", "100",
         "--warmup", "0.002", "--duration", "0.005"])
    cluster, result = run(args)
    assert result.committed > 0
    assert cluster.config.system == "ntur"


def test_run_tpcc_small():
    args = build_parser().parse_args(
        ["--workload", "tpcc", "--warehouses", "2", "--shards", "2",
         "--clients", "5", "--warmup", "0.002", "--duration", "0.005"])
    cluster, result = run(args)
    assert result.committed > 0   # new-order commits only


def test_csv_export(tmp_path, capsys):
    target = tmp_path / "out.csv"
    code = main(["--system", "ntur", "--shards", "2", "--clients", "4",
                 "--keys", "100", "--warmup", "0.002",
                 "--duration", "0.004", "--csv", str(target)])
    assert code == 0
    rows = list(csv.reader(open(target)))
    assert rows[0][0] == "system"
    assert rows[1][0] == "ntur"


def test_write_csv_append_keeps_single_header(tmp_path):
    target = tmp_path / "sweep.csv"
    write_csv(str(target), ["a", "b"], [[1, 2]], append=True)
    write_csv(str(target), ["a", "b"], [[3, 4]], append=True)
    rows = list(csv.reader(open(target)))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


@pytest.fixture
def traced_run(tmp_path):
    """One small traced Eris run exported to JSONL."""
    trace = tmp_path / "run.jsonl"
    code = main(["--system", "eris", "--workload", "srw",
                 "--shards", "2", "--clients", "5", "--keys", "100",
                 "--warmup", "0.002", "--duration", "0.005",
                 "--trace", str(trace)])
    assert code == 0
    return trace


def test_trace_analyze_reports_phase_attribution(traced_run, capsys):
    capsys.readouterr()
    assert main(["trace", "analyze", str(traced_run)]) == 0
    out = capsys.readouterr().out
    assert "commit latency attribution" in out
    for phase in ("client_to_seq", "sequencer", "replica_apply",
                  "quorum_wait", "end_to_end"):
        assert phase in out
    assert "phase sums vs end-to-end" in out
    assert "slowest counted quorum member" in out


def test_trace_analyze_json_and_chrome_export(traced_run, tmp_path, capsys):
    breakdown = tmp_path / "breakdown.json"
    chrome = tmp_path / "run.trace.json"
    code = main(["trace", "analyze", str(traced_run),
                 "--json", str(breakdown), "--chrome", str(chrome),
                 "--top", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "slowest transactions" in out
    report = json.load(open(breakdown))
    assert report["txns"]["attributed"] > 0
    assert report["trace"] == str(traced_run)
    assert set(report["phase_order"]) <= set(report["phases"])
    payload = json.load(open(chrome))
    assert payload["traceEvents"]


def test_trace_analyze_missing_file(capsys):
    assert main(["trace", "analyze", "/nonexistent/trace.jsonl"]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_trace_analyze_malformed_line_names_lineno(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ts": 0.0, "kind": "send", "node": "a", "cause": 1}\n'
                   "garbage\n")
    assert main(["trace", "analyze", str(bad)]) == 2
    assert "bad.jsonl:2" in capsys.readouterr().err


def test_trace_summary_malformed_line_names_lineno(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("garbage\n")
    assert main(["trace", str(bad)]) == 2
    assert "bad.jsonl:1" in capsys.readouterr().err


def test_write_csv_overwrite(tmp_path):
    target = tmp_path / "fresh.csv"
    write_csv(str(target), ["x"], [[1]])
    write_csv(str(target), ["x"], [[2]])
    rows = list(csv.reader(open(target)))
    assert rows == [["x"], ["2"]]


# -- observability subcommands (stats, drop breakdown, CI gates) -----------

def test_sim_metrics_out_exports_series(tmp_path, capsys):
    series = tmp_path / "series.jsonl"
    code = main(["--system", "eris", "--workload", "srw",
                 "--shards", "2", "--clients", "5", "--keys", "100",
                 "--warmup", "0.002", "--duration", "0.005",
                 "--metrics-out", str(series)])
    assert code == 0
    assert "metrics series" in capsys.readouterr().out
    from repro.obs import load_series
    meta, samples = load_series(str(series))
    assert meta["backend"] == "sim"
    assert samples
    # Deterministic simulated timestamps, not wall clock.
    assert samples[0]["t"] < 1.0


def test_stats_renders_series_tables(tmp_path, capsys):
    series = tmp_path / "series.jsonl"
    main(["--system", "eris", "--workload", "srw",
          "--shards", "2", "--clients", "5", "--keys", "100",
          "--warmup", "0.002", "--duration", "0.005",
          "--metrics-out", str(series)])
    capsys.readouterr()
    assert main(["stats", str(series)]) == 0
    out = capsys.readouterr().out
    assert "counters" in out
    assert "mean rate/s" in out
    assert "events_processed" in out   # sim dispatch-rate counter
    assert "gauges (final sample)" in out


def test_stats_component_filter(tmp_path, capsys):
    series = tmp_path / "series.jsonl"
    main(["--system", "eris", "--workload", "srw",
          "--shards", "2", "--clients", "5", "--keys", "100",
          "--warmup", "0.002", "--duration", "0.005",
          "--metrics-out", str(series)])
    capsys.readouterr()
    assert main(["stats", str(series), "--component", "sim"]) == 0
    out = capsys.readouterr().out
    assert "sim" in out and "fc" not in out
    assert main(["stats", str(series), "--component", "bogus"]) == 2
    assert "no component" in capsys.readouterr().err


def test_stats_missing_file(capsys):
    assert main(["stats", "/nonexistent/series.jsonl"]) == 2
    assert "cannot read series" in capsys.readouterr().err


def test_trace_summary_breaks_drops_down_by_reason(tmp_path, capsys):
    trace = tmp_path / "droppy.jsonl"
    code = main(["--system", "eris", "--workload", "srw",
                 "--shards", "2", "--clients", "5", "--keys", "100",
                 "--warmup", "0.002", "--duration", "0.005",
                 "--drop-rate", "0.2", "--trace", str(trace)])
    assert code == 0
    capsys.readouterr()
    assert main(["trace", str(trace)]) == 0
    out = capsys.readouterr().out
    # Random fabric loss is recorded per-reason and surfaced as
    # drop.<reason> rows, not one collapsed count.
    assert "drop.random-loss" in out


def test_trace_analyze_require_attributed_gates_empty_traces(tmp_path,
                                                             capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text('{"ts": 0.0, "kind": "send", "node": "a", '
                     '"cause": 1, "msg": "X", "dst": "b"}\n')
    assert main(["trace", "analyze", str(empty)]) == 0
    capsys.readouterr()
    assert main(["trace", "analyze", str(empty),
                 "--require-attributed"]) == 1
    assert "--require-attributed" in capsys.readouterr().err


def test_trace_analyze_require_attributed_passes_real_trace(traced_run):
    assert main(["trace", "analyze", str(traced_run),
                 "--require-attributed"]) == 0


def test_udpsmoke_parser_accepts_observability_flags():
    from repro.harness.cli import build_udpsmoke_parser

    args = build_udpsmoke_parser().parse_args(
        ["--trace", "t.jsonl", "--metrics-out", "m.jsonl",
         "--metrics-interval", "0.01", "--recorder", "fr.jsonl",
         "--recorder-capacity", "512"])
    assert args.trace == "t.jsonl"
    assert args.metrics_out == "m.jsonl"
    assert args.metrics_interval == 0.01
    assert args.recorder == "fr.jsonl"
    assert args.recorder_capacity == 512
