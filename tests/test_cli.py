"""Tests for the command-line experiment runner and CSV export."""

import csv
import json

import pytest

from repro.harness.cli import build_parser, main, run
from repro.harness.results import write_csv


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.system == "eris"
    assert args.workload == "srw"
    assert args.shards == 3


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "mystery"])


def test_list_systems(capsys):
    assert main(["--list-systems"]) == 0
    out = capsys.readouterr().out
    assert "eris" in out and "lockstore" in out


def test_run_srw_small(capsys):
    code = main(["--system", "eris", "--workload", "srw",
                 "--shards", "2", "--clients", "5", "--keys", "100",
                 "--warmup", "0.002", "--duration", "0.005"])
    assert code == 0
    out = capsys.readouterr().out
    assert "txn/s" in out and "eris" in out


def test_run_returns_result_object():
    args = build_parser().parse_args(
        ["--system", "ntur", "--workload", "mrmw", "--distributed", "0.5",
         "--shards", "2", "--clients", "5", "--keys", "100",
         "--warmup", "0.002", "--duration", "0.005"])
    cluster, result = run(args)
    assert result.committed > 0
    assert cluster.config.system == "ntur"


def test_run_tpcc_small():
    args = build_parser().parse_args(
        ["--workload", "tpcc", "--warehouses", "2", "--shards", "2",
         "--clients", "5", "--warmup", "0.002", "--duration", "0.005"])
    cluster, result = run(args)
    assert result.committed > 0   # new-order commits only


def test_csv_export(tmp_path, capsys):
    target = tmp_path / "out.csv"
    code = main(["--system", "ntur", "--shards", "2", "--clients", "4",
                 "--keys", "100", "--warmup", "0.002",
                 "--duration", "0.004", "--csv", str(target)])
    assert code == 0
    rows = list(csv.reader(open(target)))
    assert rows[0][0] == "system"
    assert rows[1][0] == "ntur"


def test_write_csv_append_keeps_single_header(tmp_path):
    target = tmp_path / "sweep.csv"
    write_csv(str(target), ["a", "b"], [[1, 2]], append=True)
    write_csv(str(target), ["a", "b"], [[3, 4]], append=True)
    rows = list(csv.reader(open(target)))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


@pytest.fixture
def traced_run(tmp_path):
    """One small traced Eris run exported to JSONL."""
    trace = tmp_path / "run.jsonl"
    code = main(["--system", "eris", "--workload", "srw",
                 "--shards", "2", "--clients", "5", "--keys", "100",
                 "--warmup", "0.002", "--duration", "0.005",
                 "--trace", str(trace)])
    assert code == 0
    return trace


def test_trace_analyze_reports_phase_attribution(traced_run, capsys):
    capsys.readouterr()
    assert main(["trace", "analyze", str(traced_run)]) == 0
    out = capsys.readouterr().out
    assert "commit latency attribution" in out
    for phase in ("client_to_seq", "sequencer", "replica_apply",
                  "quorum_wait", "end_to_end"):
        assert phase in out
    assert "phase sums vs end-to-end" in out
    assert "slowest counted quorum member" in out


def test_trace_analyze_json_and_chrome_export(traced_run, tmp_path, capsys):
    breakdown = tmp_path / "breakdown.json"
    chrome = tmp_path / "run.trace.json"
    code = main(["trace", "analyze", str(traced_run),
                 "--json", str(breakdown), "--chrome", str(chrome),
                 "--top", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "slowest transactions" in out
    report = json.load(open(breakdown))
    assert report["txns"]["attributed"] > 0
    assert report["trace"] == str(traced_run)
    assert set(report["phase_order"]) <= set(report["phases"])
    payload = json.load(open(chrome))
    assert payload["traceEvents"]


def test_trace_analyze_missing_file(capsys):
    assert main(["trace", "analyze", "/nonexistent/trace.jsonl"]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_trace_analyze_malformed_line_names_lineno(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ts": 0.0, "kind": "send", "node": "a", "cause": 1}\n'
                   "garbage\n")
    assert main(["trace", "analyze", str(bad)]) == 2
    assert "bad.jsonl:2" in capsys.readouterr().err


def test_trace_summary_malformed_line_names_lineno(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("garbage\n")
    assert main(["trace", str(bad)]) == 2
    assert "bad.jsonl:1" in capsys.readouterr().err


def test_write_csv_overwrite(tmp_path):
    target = tmp_path / "fresh.csv"
    write_csv(str(target), ["x"], [[1]])
    write_csv(str(target), ["x"], [[2]])
    rows = list(csv.reader(open(target)))
    assert rows == [["x"], ["2"]]
