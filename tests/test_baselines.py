"""Integration tests for the four comparison systems."""

import pytest

from repro.baselines.common import WorkloadOp
from repro.store.kv import MISSING

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def write_op(key, value, partitioner):
    return WorkloadOp(proc="ycsb_write", args={"key": key, "value": value},
                      participants=(partitioner.shard_of(key),),
                      write_keys=frozenset([key]))


def swap_op(k1, k2, partitioner):
    keys = frozenset([k1, k2])
    return WorkloadOp(proc="swap", args={},
                      participants=partitioner.participants_for(keys),
                      read_keys=keys, write_keys=keys, is_general=True,
                      compute=lambda v: {k1: v.get(k2, 0),
                                         k2: v.get(k1, 0)})


# -- NT-UR ----------------------------------------------------------------

def test_ntur_single_shard_execute():
    cluster = make_ycsb_cluster(system="ntur")
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 1


def test_ntur_multi_shard_is_independent_messages():
    cluster = make_ycsb_cluster(system="ntur")
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 1
    assert cluster.stores[1][0].get(1) == 1


def test_ntur_general_two_round_swap():
    cluster = make_ycsb_cluster(system="ntur")
    client = cluster.make_client()
    submit_and_wait(cluster, client, write_op(0, 7, cluster.partitioner))
    submit_and_wait(cluster, client, write_op(1, 9, cluster.partitioner))
    result = submit_and_wait(cluster, client,
                             swap_op(0, 1, cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 9
    assert cluster.stores[1][0].get(1) == 7


def test_ntur_application_abort_reported():
    cluster = make_ycsb_cluster(system="ntur")
    cluster.registry.register("fail", lambda ctx, args: ctx.abort("no"))
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             WorkloadOp(proc="fail", args={},
                                        participants=(0,)))
    assert not result.committed


# -- Lock-Store ------------------------------------------------------------

def test_lockstore_single_shard_commit():
    cluster = make_ycsb_cluster(system="lockstore")
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 1


def test_lockstore_distributed_2pc_commit():
    cluster = make_ycsb_cluster(system="lockstore")
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 1
    assert cluster.stores[1][0].get(1) == 1
    # Locks fully released afterwards.
    for replicas in cluster.replicas.values():
        leader = replicas[0]
        assert leader.locks.queue_length() == 0
        assert not leader.locks._writer


def test_lockstore_general_swap():
    cluster = make_ycsb_cluster(system="lockstore")
    client = cluster.make_client()
    submit_and_wait(cluster, client, write_op(0, 7, cluster.partitioner))
    submit_and_wait(cluster, client, write_op(1, 9, cluster.partitioner))
    result = submit_and_wait(cluster, client,
                             swap_op(0, 1, cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 9
    assert cluster.stores[1][0].get(1) == 7


def test_lockstore_application_abort_rolls_back():
    cluster = make_ycsb_cluster(system="lockstore")

    def half_write(ctx, args):
        if ctx.owns(0):
            ctx.put(0, "tainted")
        ctx.abort("deterministic")

    cluster.registry.register("half", half_write)
    client = cluster.make_client()
    result = submit_and_wait(
        cluster, client,
        WorkloadOp(proc="half", args={}, participants=(0, 1),
                   write_keys=frozenset([0])))
    assert not result.committed
    assert cluster.stores[0][0].get(0) == 0  # rolled back to loaded value


def test_lockstore_conflicting_txns_serialize():
    cluster = make_ycsb_cluster(system="lockstore")
    clients = [cluster.make_client() for _ in range(10)]
    done = []
    for client in clients:
        client.submit(rmw_op([0, 1], cluster.partitioner), done.append)
    drive(cluster, 0.5)
    assert len(done) == 10
    assert all(r.committed for r in done)
    assert cluster.stores[0][0].get(0) == 10
    assert cluster.stores[1][0].get(1) == 10


def test_lockstore_one_phase_flag_reduces_rounds():
    normal = make_ycsb_cluster(system="lockstore")
    fast = make_ycsb_cluster(system="lockstore", lockstore_one_phase=True)
    op = rmw_op([0], normal.partitioner)
    slow_latency = submit_and_wait(normal, normal.make_client(), op).latency
    fast_latency = submit_and_wait(fast, fast.make_client(), op).latency
    assert fast_latency < slow_latency


# -- TAPIR ----------------------------------------------------------------

def test_tapir_fast_path_commit():
    cluster = make_ycsb_cluster(system="tapir")
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner))
    assert result.committed
    assert client.node.fast_path_commits == 1
    assert client.node.slow_path_commits == 0
    assert cluster.stores[0][0].get(0) == 1


def test_tapir_replicas_all_apply_on_commit():
    cluster = make_ycsb_cluster(system="tapir")
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    drive(cluster, 0.02)
    for store in cluster.stores[0]:
        assert store.get(0) == 1


def test_tapir_occ_conflict_aborts_and_retries():
    cluster = make_ycsb_cluster(system="tapir")
    clients = [cluster.make_client() for _ in range(8)]
    done = []
    for client in clients:
        client.submit(rmw_op([0, 1], cluster.partitioner), done.append)
    drive(cluster, 0.5)
    assert len(done) == 8
    assert all(r.committed for r in done)
    total_aborts = sum(c.node.aborts_retried for c in clients)
    assert total_aborts >= 1   # simultaneous conflicting prepares
    assert cluster.stores[0][0].get(0) == 8


def test_tapir_slow_path_on_partial_replies():
    cluster = make_ycsb_cluster(system="tapir")
    # Silence one replica of shard 0 so the fast quorum (all 3) fails.
    victim = cluster.replicas[0][2]
    cluster.network.drop_filter = \
        lambda pkt: pkt.dst == victim.address
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner), timeout=1.0)
    assert result.committed
    assert client.node.slow_path_commits == 1


def test_tapir_general_swap():
    cluster = make_ycsb_cluster(system="tapir")
    client = cluster.make_client()
    submit_and_wait(cluster, client, write_op(0, 7, cluster.partitioner))
    submit_and_wait(cluster, client, write_op(1, 9, cluster.partitioner))
    result = submit_and_wait(cluster, client,
                             swap_op(0, 1, cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 9


# -- Granola ----------------------------------------------------------------

def test_granola_single_repository():
    cluster = make_ycsb_cluster(system="granola")
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 1


def test_granola_distributed_vote_round():
    cluster = make_ycsb_cluster(system="granola")
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner))
    assert result.committed
    # Final timestamps agree across participants.
    # (Reply bookkeeping is per-leader; check both stores updated.)
    assert cluster.stores[0][0].get(0) == 1
    assert cluster.stores[1][0].get(1) == 1


def test_granola_distributed_latency_exceeds_single():
    cluster = make_ycsb_cluster(system="granola")
    client = cluster.make_client()
    single = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner))
    multi = submit_and_wait(cluster, client,
                            rmw_op([2, 3], cluster.partitioner))
    assert multi.latency > single.latency


def test_granola_locking_mode_swap():
    cluster = make_ycsb_cluster(system="granola")
    client = cluster.make_client()
    submit_and_wait(cluster, client, write_op(0, 7, cluster.partitioner))
    submit_and_wait(cluster, client, write_op(1, 9, cluster.partitioner))
    result = submit_and_wait(cluster, client,
                             swap_op(0, 1, cluster.partitioner))
    assert result.committed
    assert cluster.stores[0][0].get(0) == 9
    assert cluster.stores[1][0].get(1) == 7
    for replicas in cluster.replicas.values():
        assert not replicas[0].locks._writer   # locks released


def test_granola_locking_mode_serializes_conflicts():
    cluster = make_ycsb_cluster(system="granola")
    done = []
    for i in range(6):
        client = cluster.make_client()
        client.submit(swap_op(0, 1, cluster.partitioner), done.append)
    drive(cluster, 0.5)
    assert len(done) == 6
    assert all(r.committed for r in done)
    # Even number of swaps of (0, 0) is identity; just check both exist.
    assert cluster.stores[0][0].get(0) is not MISSING


@pytest.mark.parametrize("system", ["ntur", "lockstore", "tapir",
                                    "granola", "eris", "eris-oum"])
def test_every_system_runs_mixed_load(system):
    cluster = make_ycsb_cluster(system=system)
    clients = [cluster.make_client() for _ in range(5)]
    done = []
    for i in range(30):
        keys = [i % 5, 5 + i % 3] if i % 3 == 0 else [i % 7]
        clients[i % 5].submit(rmw_op(keys, cluster.partitioner),
                              done.append)
    drive(cluster, 0.5)
    assert len(done) == 30
    assert all(r.committed for r in done)
