"""Unit tests for the deterministic execution engine (locks, dedup,
general transactions)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ExecutionEngine
from repro.core.log import ErisLog
from repro.core.messages import TxnRecord
from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.net.message import MultiStamp
from repro.store.kv import KVStore, MISSING
from repro.store.procedures import ProcedureRegistry


def make_registry():
    registry = ProcedureRegistry()

    def put(ctx, args):
        for k, v in args["kv"].items():
            if ctx.owns(k):
                ctx.put(k, v)
        return "ok"

    def incr(ctx, args):
        for k in args["keys"]:
            if ctx.owns(k):
                v = ctx.get(k)
                ctx.put(k, (0 if v is MISSING else v) + 1)
        return "ok"

    def boom(ctx, args):
        ctx.put("partial", 1)
        ctx.abort("deterministic failure")

    registry.register("put", put)
    registry.register("incr", incr)
    registry.register("boom", boom)
    return registry


class Feeder:
    """Drives an engine with sequentially numbered log entries."""

    def __init__(self):
        self.store = KVStore()
        self.engine = ExecutionEngine(self.store, make_registry(), shard=0)
        self.log = ErisLog(0)
        self.results = []

    def feed_txn(self, txn):
        stamps = tuple((s, 0) for s in txn.participants)
        entry = self.log.append_txn(
            SlotId(0, 1, self.log.last_index + 1),
            TxnRecord(txn=txn, multistamp=MultiStamp(1, stamps)))
        self.engine.feed(entry, lambda ok, r: self.results.append((ok, r)))
        return entry

    def feed_noop(self):
        entry = self.log.append_noop(SlotId(0, 1, self.log.last_index + 1))
        self.engine.feed(entry, lambda ok, r: self.results.append((ok, r)))


def txn(client, seq, proc="put", args=None, kind="independent",
        reads=(), writes=()):
    return IndependentTransaction(
        txn_id=TxnId(client=client, seq=seq), proc=proc,
        args=args if args is not None else {"kv": {"x": seq}},
        participants=(0,), kind=kind,
        read_keys=frozenset(reads), write_keys=frozenset(writes))


def test_executes_and_reports_result():
    f = Feeder()
    f.feed_txn(txn("c", 1))
    assert f.results == [(True, "ok")]
    assert f.store.get("x") == 1


def test_noop_reports_uncommitted():
    f = Feeder()
    f.feed_noop()
    assert f.results == [(False, "no-op")]


def test_abort_rolls_back_writes():
    f = Feeder()
    f.feed_txn(txn("c", 1, proc="boom", args={}))
    assert f.results == [(False, "deterministic failure")]
    assert f.store.get("partial") is MISSING


def test_duplicate_suppressed_with_cached_result():
    f = Feeder()
    f.feed_txn(txn("c", 1))
    f.feed_txn(txn("c", 1))    # client retry: same txn id, new slot
    assert f.results == [(True, "ok"), (True, "ok")]
    assert f.store.get("x") == 1
    assert f.engine.cached_reply(TxnId("c", 1)) == (True, "ok")


def test_pipelined_txns_from_one_client_both_execute():
    """Clients may pipeline: an earlier-seq transaction arriving after
    a later one is NOT a duplicate (the table is per-sequence)."""
    f = Feeder()
    f.feed_txn(txn("c", 2, args={"kv": {"x": 2}}))
    f.feed_txn(txn("c", 1, args={"kv": {"y": 1}}))
    assert f.results == [(True, "ok"), (True, "ok")]
    assert f.store.get("x") == 2 and f.store.get("y") == 1
    # But a true duplicate of either is still suppressed.
    f.feed_txn(txn("c", 2, args={"kv": {"x": 999}}))
    assert f.store.get("x") == 2


def test_lock_free_fast_path_without_generals():
    f = Feeder()
    for i in range(5):
        f.feed_txn(txn("c", i + 1))
    assert f.engine.locks.grants == 0   # never touched the lock manager


def prelim(client, seq, reads, writes, expected=None):
    args = {"expected": expected} if expected else {}
    return txn(client, seq, proc="__prelim__", args=args,
               kind="preliminary", reads=reads, writes=writes)


def conclusory(client, seq, gtid, commit, writes=None):
    return txn(client, seq, proc="__conclusory__",
               args={"gtid": gtid, "commit": commit,
                     "writes": writes or {}},
               kind="conclusory")


def test_general_transaction_commit_flow():
    f = Feeder()
    f.feed_txn(txn("w", 1, args={"kv": {"a": 10, "b": 20}}))
    f.feed_txn(prelim("g", 1, reads=("a", "b"), writes=("a", "b")))
    ok, result = f.results[-1]
    assert ok and result["values"] == {"a": 10, "b": 20}
    assert f.engine.pending_generals
    f.feed_txn(conclusory("g", 2, TxnId("g", 1), commit=True,
                          writes={"a": 20, "b": 10}))
    assert f.results[-1][0]
    assert f.store.get("a") == 20 and f.store.get("b") == 10
    assert not f.engine.pending_generals


def test_general_abort_releases_without_writes():
    f = Feeder()
    f.feed_txn(txn("w", 1, args={"kv": {"a": 10}}))
    f.feed_txn(prelim("g", 1, reads=("a",), writes=("a",)))
    f.feed_txn(conclusory("g", 2, TxnId("g", 1), commit=False))
    assert f.store.get("a") == 10
    assert not f.engine.pending_generals


def test_stale_reconnaissance_fails_validation():
    f = Feeder()
    f.feed_txn(txn("w", 1, args={"kv": {"a": 10}}))
    f.feed_txn(prelim("g", 1, reads=("a",), writes=(),
                      expected={"a": 999}))
    ok, result = f.results[-1]
    assert not ok and result["ok"] is False
    # Locks are still held until the conclusory abort.
    assert f.engine.pending_generals


def test_conflicting_txn_defers_until_release():
    f = Feeder()
    f.feed_txn(txn("w", 1, args={"kv": {"a": 1}}))
    f.feed_txn(prelim("g", 1, reads=("a",), writes=("a",)))
    # This independent increment conflicts with g's locks: deferred.
    f.feed_txn(txn("i", 1, proc="incr", args={"keys": ["a"]},
                   reads=("a",), writes=("a",)))
    assert len(f.results) == 2   # increment not executed yet
    assert f.engine.deferred_executions == 1
    f.feed_txn(conclusory("g", 2, TxnId("g", 1), commit=True,
                          writes={"a": 100}))
    # Deferred increment ran after the conclusory's write.
    assert f.store.get("a") == 101
    assert len(f.results) == 4


def test_non_conflicting_txn_proceeds_during_general():
    f = Feeder()
    f.feed_txn(prelim("g", 1, reads=("a",), writes=("a",)))
    f.feed_txn(txn("i", 1, proc="incr", args={"keys": ["z"]},
                   reads=("z",), writes=("z",)))
    assert f.store.get("z") == 1   # unrelated keys are not blocked


def test_duplicate_conclusory_is_noop():
    f = Feeder()
    f.feed_txn(prelim("g", 1, reads=("a",), writes=("a",)))
    f.feed_txn(conclusory("g", 2, TxnId("g", 1), commit=True,
                          writes={"a": 5}))
    f.feed_txn(conclusory("x", 1, TxnId("g", 1), commit=False))
    assert f.results[-1] == (False, "already concluded")
    assert f.store.get("a") == 5   # first conclusory won


def test_abort_conclusory_races_commit():
    """§7.2: the DL's unilateral abort beats the client's commit."""
    f = Feeder()
    f.feed_txn(prelim("g", 1, reads=("a",), writes=("a",)))
    f.feed_txn(conclusory("dl#aborter", 1, TxnId("g", 1), commit=False))
    f.feed_txn(conclusory("g", 2, TxnId("g", 1), commit=True,
                          writes={"a": 5}))
    assert f.store.get("a") is MISSING   # abort won; no write applied
    assert f.results[-1] == (False, "already concluded")


def test_expired_generals_reported():
    f = Feeder()
    f.engine._clock = lambda: 100.0
    f.feed_txn(prelim("g", 1, reads=("a",), writes=("a",)))
    assert f.engine.expired_generals(50.0) == []
    assert len(f.engine.expired_generals(100.0)) == 1


def test_reset_clears_all_state():
    f = Feeder()
    f.feed_txn(prelim("g", 1, reads=("a",), writes=("a",)))
    f.engine.reset()
    assert not f.engine.pending_generals
    assert f.engine.cached_reply(TxnId("g", 1)) is None


# -- property: determinism — same entry sequence, same final state --------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 4)),
                min_size=1, max_size=25))
def test_engine_is_deterministic(spec):
    """Two engines fed the identical entry sequence converge to the
    same store state and the same outcomes — the property non-DL
    replicas rely on when replaying at sync time."""
    def run():
        f = Feeder()
        for i, (client, key) in enumerate(spec):
            f.feed_txn(IndependentTransaction(
                txn_id=TxnId(client=f"c{client}", seq=i + 1),
                proc="incr", args={"keys": [f"k{key}"]},
                participants=(0,),
                read_keys=frozenset({f"k{key}"}),
                write_keys=frozenset({f"k{key}"})))
        return f.store.snapshot(), f.results

    first = run()
    second = run()
    assert first == second
