"""Adversarial wire-codec corpus, shared by EWC1 and EWC2.

The codec is the trust boundary of every real transport: whatever
arrives over a socket must either decode to exactly what was sent or
raise the typed :class:`CodecError` — never a bare ``KeyError``,
``UnicodeDecodeError``, ``RecursionError``, or silently-wrong value.
This file attacks both wire formats with the same corpus:

- truncation at *every* byte offset of every corpus frame;
- cuts and corruption inside multi-byte UTF-8 sequences;
- nesting beyond ``MAX_DEPTH``;
- duplicate dict keys / set elements in forged frames;
- unknown interned type ids and out-of-range string back-references
  (EWC2-specific byte-level forgeries);
- non-finite floats and type-narrowing subclasses at encode time;
- constructor validators re-run on decode (a forged frame cannot
  smuggle an invalid message past ``__post_init__``);
- the EWCB multi-frame datagram container's framing checks.
"""

from __future__ import annotations

import enum

import pytest

from repro.core.messages import SyncLog, TxnReply, TxnReplyBatch
from repro.core.transaction import IndependentTransaction, TxnId
from repro.net.message import GroupcastHeader, MultiStamp, Packet
from repro.runtime import codec as C
from repro.runtime.codec import (
    MAX_DEPTH,
    CodecError,
    decode_datagram,
    decode_message,
    decode_packet,
    encode_datagram,
    encode_message,
    encode_packet,
)

WIRES = ("ewc1", "ewc2")

_TXN = IndependentTransaction(
    txn_id=TxnId(client="client-9", seq=3),
    proc="rmw", args={"k": ("a", "b"), "δελτα": 1},   # non-ASCII key
    participants=(0, 1), read_keys=frozenset({"a"}),
    write_keys=frozenset({"b"}))


def _corpus():
    """Messages spanning every composite kind plus non-ASCII text."""
    return [
        _TXN,
        TxnReplyBatch(replies=tuple(
            TxnReply(txn_id=TxnId(client="c", seq=i), txn_index=i,
                     view_num=0, epoch_num=1, shard=0, replica_index=2,
                     is_dl=True, committed=True, result={"k": i})
            for i in range(3))),
        {"héllo→𝔘": ["𝔘nicode", b"\x00\xff", (1.5, -2)],
         (0, "t"): frozenset({"x", "y"})},
        MultiStamp(epoch=1, stamps=((0, 1), (1, 2))),
    ]


# -- truncation sweeps ------------------------------------------------------

@pytest.mark.parametrize("wire", WIRES)
def test_truncation_at_every_byte_raises_codec_error(wire):
    """No prefix of a valid frame may decode (to anything)."""
    for message in _corpus():
        buffer = encode_message(message, wire)
        for cut in range(len(buffer)):
            with pytest.raises(CodecError):
                decode_message(buffer[:cut])


@pytest.mark.parametrize("wire", WIRES)
def test_packet_truncation_at_every_byte_raises_codec_error(wire):
    packet = Packet(src="client-9", dst=None, payload=_TXN,
                    groupcast=GroupcastHeader((0, 1)),
                    multistamp=MultiStamp(epoch=1, stamps=((0, 9),)),
                    sequenced=True, trace_id=77)
    buffer = encode_packet(packet, wire)
    for cut in range(len(buffer)):
        with pytest.raises(CodecError):
            decode_packet(buffer[:cut])


@pytest.mark.parametrize("wire", WIRES)
def test_trailing_bytes_rejected(wire):
    buffer = encode_message(_TXN, wire)
    with pytest.raises(CodecError):
        decode_message(buffer + b"\x00")


@pytest.mark.parametrize("wire", WIRES)
def test_corrupted_utf8_rejected(wire):
    """Flipping bytes inside a multi-byte UTF-8 run must not produce a
    silently different string: it decodes equal or raises CodecError."""
    message = ("𝔘nicode-𝔴ide", "héllo")
    buffer = bytearray(encode_message(message, wire))
    seen_error = False
    for pos in range(4, len(buffer)):
        corrupted = bytes(buffer[:pos]) + b"\xff" + bytes(buffer[pos + 1:])
        try:
            decode_message(corrupted)
        except CodecError:
            seen_error = True
    assert seen_error


# -- resource-exhaustion forgeries -----------------------------------------

@pytest.mark.parametrize("wire", WIRES)
def test_nesting_beyond_max_depth_rejected(wire):
    value = "leaf"
    for _ in range(MAX_DEPTH + 10):
        value = [value]
    with pytest.raises(CodecError, match="nesting"):
        encode_message(value, wire)


def test_forged_deep_nesting_frame_rejected_on_decode():
    # A decoder-side forgery: EWC2 list-of-list headers repeated past
    # the depth bound without ever being encodable locally.
    frame = bytearray(C._MAGIC2)
    for _ in range(MAX_DEPTH + 10):
        frame += bytes([C._T_LIST, 0x01])
    frame += bytes([0x80])
    with pytest.raises(CodecError, match="nesting"):
        decode_message(bytes(frame))


def test_ewcb_frame_count_bound_enforced():
    frame = encode_packet(Packet(src="a", dst="b", payload=None), "ewc2")
    out = bytearray(C._MAGIC_BATCH)
    C._write_uvarint(out, C.MAX_DATAGRAM_FRAMES + 1)
    C._write_uvarint(out, len(frame))
    out += frame
    with pytest.raises(CodecError, match="claims"):
        decode_datagram(bytes(out))


# -- duplicate keys ---------------------------------------------------------

def test_ewc2_duplicate_dict_keys_rejected():
    frame = bytes(C._MAGIC2) + bytes(
        [C._T_DICT, 0x02, 0x81, 0x80, 0x81, 0x80])  # {1: 0, 1: 0}
    with pytest.raises(CodecError, match="duplicate dict keys"):
        decode_message(frame)


def test_ewc2_duplicate_set_elements_rejected():
    frame = bytes(C._MAGIC2) + bytes([C._T_SET, 0x02, 0x81, 0x81])
    with pytest.raises(CodecError, match="duplicate set elements"):
        decode_message(frame)


def test_ewc1_duplicate_dict_keys_rejected():
    good = encode_message({1: "x", 2: "y"}, "ewc1")
    bad = good.replace(b"[2,", b"[1,")
    assert bad != good
    with pytest.raises(CodecError, match="duplicate"):
        decode_message(bad)


# -- EWC2 byte-level forgeries ----------------------------------------------

def test_ewc2_unknown_interned_type_id_rejected():
    out = bytearray(C._MAGIC2)
    out.append(C._T_MSG)
    C._write_uvarint(out, 60_000)          # far past the registry
    with pytest.raises(CodecError, match="unknown interned wire type id"):
        decode_message(bytes(out))


def test_ewc2_string_backreference_out_of_range_rejected():
    frame = bytes(C._MAGIC2) + bytes([C._T_SREF, 0x05])
    with pytest.raises(CodecError, match="back-reference"):
        decode_message(frame)
    # Same probe nested in a container (exercises the inline peek path,
    # which must bounds-check exactly like the recursive path).
    nested = bytes(C._MAGIC2) + bytes([C._T_TUPLE, 0x01, C._T_SREF, 0x05])
    with pytest.raises(CodecError, match="back-reference"):
        decode_message(nested)


def test_ewc2_unknown_tag_rejected():
    with pytest.raises(CodecError):
        decode_message(bytes(C._MAGIC2) + bytes([0x7F]))


def test_ewc2_string_interning_handles_more_than_128_strings():
    """Frames interning >128 strings need multi-byte back-references;
    the single-byte fast path must not misread a varint continuation
    byte as a reference."""
    uniques = tuple(f"string-number-{i:04d}" for i in range(300))
    message = uniques + uniques          # every string repeated once
    buffer = encode_message(message, "ewc2")
    assert decode_message(buffer) == message
    # Interning must actually fire: the repeat half is far smaller
    # than a second copy of the unique half.
    single = encode_message(uniques, "ewc2")
    assert len(buffer) < 2 * len(single) - 2000


# -- encode-time strictness -------------------------------------------------

@pytest.mark.parametrize("wire", WIRES)
def test_non_finite_floats_rejected(wire):
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(CodecError):
            encode_message({"v": bad}, wire)


@pytest.mark.parametrize("wire", WIRES)
def test_type_narrowing_subclasses_rejected(wire):
    class Color(enum.IntEnum):
        RED = 1

    class Label(str):
        pass

    for value in (Color.RED, Label("x")):
        with pytest.raises(CodecError):
            encode_message(value, wire)


# -- validators re-run on decode --------------------------------------------

def test_ewc2_forged_frame_cannot_skip_post_init_validation():
    """Patching a valid frame's participants to (0, 0) must trip the
    dataclass validator during decode, not build an invalid txn."""
    buffer = encode_message(_TXN, "ewc2")
    needle = bytes([C._T_TUPLE, 0x02, 0x80, 0x81])       # (0, 1)
    patched = bytes([C._T_TUPLE, 0x02, 0x80, 0x80])      # (0, 0)
    assert buffer.count(needle) == 1
    with pytest.raises(CodecError, match="duplicate participants"):
        decode_message(buffer.replace(needle, patched))


def test_ewc1_forged_frame_cannot_skip_post_init_validation():
    buffer = encode_message(_TXN, "ewc1")
    bad = buffer.replace(b'["t",0,1]', b'["t",0,0]')
    assert bad != buffer
    with pytest.raises(CodecError, match="cannot rebuild"):
        decode_message(bad)


# -- EWCB datagram container ------------------------------------------------

def _frames(n, wire="ewc2"):
    return [encode_packet(
        Packet(src="s", dst=f"d{i}", payload={"i": i}), wire)
        for i in range(n)]


def test_datagram_roundtrip_multiframe():
    frames = _frames(5)
    buffer = encode_datagram(frames)
    assert buffer[:4] == C._MAGIC_BATCH
    packets = decode_datagram(buffer)
    assert [p.payload for p in packets] == [{"i": i} for i in range(5)]


def test_datagram_single_frame_has_no_container_overhead():
    frames = _frames(1)
    assert encode_datagram(frames) == frames[0]
    assert decode_datagram(frames[0])[0].payload == {"i": 0}


def test_datagram_mixed_wires_decode():
    frames = [encode_packet(Packet(src="s", dst="d", payload=1), "ewc1"),
              encode_packet(Packet(src="s", dst="d", payload=2), "ewc2")]
    assert [p.payload for p in decode_datagram(encode_datagram(frames))] \
        == [1, 2]


def test_datagram_truncation_and_trailing_bytes_rejected():
    buffer = encode_datagram(_frames(3))
    for cut in range(4, len(buffer)):
        with pytest.raises(CodecError):
            decode_datagram(buffer[:cut])
    with pytest.raises(CodecError, match="trailing"):
        decode_datagram(buffer + b"\x01")


def test_empty_datagram_rejected():
    with pytest.raises(CodecError):
        encode_datagram([])
    out = bytearray(C._MAGIC_BATCH)
    C._write_uvarint(out, 0)
    with pytest.raises(CodecError, match="zero frames"):
        decode_datagram(bytes(out))
