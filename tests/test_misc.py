"""Small-surface tests: error hierarchy, result tables, group
membership, endpoint queue mechanics."""

import pytest

from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    LockConflict,
    NetworkError,
    ReproError,
    SimulationError,
    TransactionAborted,
    UnknownProcedureError,
)
from repro.harness.results import format_table, speedup
from repro.net.endpoint import Node
from repro.net.groupcast import GroupMembership
from repro.net.network import NetConfig, Network
from repro.sim.event_loop import EventLoop


def test_all_errors_derive_from_repro_error():
    for exc in (ConfigurationError, SimulationError, NetworkError,
                UnknownProcedureError, TransactionAborted,
                InvariantViolation):
        assert issubclass(exc, ReproError)
    assert issubclass(LockConflict, TransactionAborted)


def test_transaction_aborted_carries_reason():
    error = TransactionAborted("stock exhausted")
    assert error.reason == "stock exhausted"
    assert "stock exhausted" in str(error)


def test_format_table_alignment():
    table = format_table(["name", "value"],
                         [["alpha", 12345.0], ["b", 0.5]])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert "12,345" in table
    assert "0.5" in table


def test_format_table_with_title():
    assert format_table(["a"], [[1]], title="T").splitlines()[0] == "T"


def test_speedup_formats():
    assert speedup(10, 4) == "2.50x"
    assert speedup(1, 3) == "0.33x"


def test_group_membership_api():
    groups = GroupMembership()
    groups.define(0, ["a", "b"])
    groups.define(1, ["b", "c"])
    assert groups.members(0) == ("a", "b")
    assert groups.groups() == (0, 1)
    assert groups.all_members() == ("a", "b", "c")   # deduplicated
    assert 0 in groups and 7 not in groups
    assert len(groups) == 2


def test_group_membership_rejects_empty():
    with pytest.raises(NetworkError):
        GroupMembership().define(0, [])


def test_group_membership_unknown_group():
    with pytest.raises(NetworkError):
        GroupMembership().members(9)


class _Slow(Node):
    msg_service_time = 50e-6

    def __init__(self, address, network):
        super().__init__(address, network)
        self.seen = []

    def handle(self, src, message, packet):
        self.seen.append((message, self.loop.now))


def test_endpoint_inbox_is_fifo_under_load():
    loop = EventLoop()
    net = Network(loop, NetConfig(base_latency=1e-6, jitter=0.0))
    node = _Slow("n", net)
    sender = _Slow("s", net)
    for i in range(10):
        sender.send("n", i)
    loop.run_until_idle()
    assert [m for m, _ in node.seen] == list(range(10))
    # Each message occupied the server for its full service time.
    gaps = [node.seen[i + 1][1] - node.seen[i][1] for i in range(9)]
    assert all(g == pytest.approx(50e-6) for g in gaps)


def test_endpoint_crash_mid_queue_stops_processing():
    loop = EventLoop()
    net = Network(loop, NetConfig(base_latency=1e-6, jitter=0.0))
    node = _Slow("n", net)
    sender = _Slow("s", net)
    for i in range(10):
        sender.send("n", i)
    loop.run(max_events=12)
    node.crash()
    loop.run_until_idle()
    assert len(node.seen) < 10


def test_crashed_node_does_not_send():
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    a = _Slow("a", net)
    b = _Slow("b", net)
    a.crash()
    a.send("b", "x")
    loop.run_until_idle()
    assert b.seen == []
