"""Fault matrix for the chain-replicated sequencer (`repro.net.chainseq`).

Every scenario drives real transactions through a chain-fronted Eris
cluster, injects the fault, and then holds the execution to the §6.7
trace checkers — including the three chain-specific invariants (stamp
monotonicity across repair, gapless replica logs, no stale-tail
release). The matrix mirrors the epoch-change tests: crashes at every
chain position, false suspicion (stale tail fenced, not crashed),
crashes under packet loss and under non-FIFO links, and the
whole-chain-lost fallback to the paper's epoch-change path.
"""

import pytest

from repro.baselines.common import WorkloadOp
from repro.harness.checkers import run_all_checks, run_trace_checks
from repro.harness.faults import FaultPlan
from repro.net.controller import ControllerConfig

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def fast_controller(**overrides):
    defaults = dict(ping_interval=3e-3, failure_threshold=2,
                    reroute_delay=10e-3, chain_repair_delay=3e-3)
    defaults.update(overrides)
    return ControllerConfig(**defaults)


def make_chain_cluster(chain=3, **kwargs):
    kwargs.setdefault("controller", fast_controller())
    kwargs.setdefault("tracing", True)
    return make_ycsb_cluster(n_shards=2, sequencer_chain=chain, **kwargs)


def chain_nodes(cluster):
    return [cluster.network.endpoint(a) for a in cluster.controller.chain]


# -- normal operation ------------------------------------------------------

def test_chain_normal_operation_head_stamps_tail_releases():
    cluster = make_chain_cluster(chain=3)
    client = cluster.make_client()
    for i in range(8):
        result = submit_and_wait(cluster, client,
                                 rmw_op([i, 8 + i % 4], cluster.partitioner))
        assert result.committed
    head, mid, tail = chain_nodes(cluster)
    assert head.is_head and tail.is_tail
    assert head.packets_stamped == 8
    assert mid.packets_stamped == 0 and tail.packets_stamped == 0
    assert head.forwards_propagated == 8 and mid.forwards_propagated == 8
    assert tail.releases == 8
    # Counter state is fully replicated once a stamp is released.
    assert head.counters == mid.counters == tail.counters
    assert cluster.controller.chain_repairs == 0
    assert cluster.controller.failovers == 0
    run_all_checks(cluster)


# -- single-node crashes at every chain position ---------------------------

@pytest.mark.parametrize("index", [0, 1, 2],
                         ids=["head", "middle", "tail"])
def test_chain_node_crash_mid_stamp_splices_without_epoch_bump(index):
    cluster = make_chain_cluster(chain=3)
    clients = [cluster.make_client() for _ in range(4)]
    done = []

    def pump(client, count):
        if count == 0:
            return
        client.submit(rmw_op([count % 6, 6 + count % 3], cluster.partitioner),
                      lambda r: (done.append(r), pump(client, count - 1)))

    for c in clients:
        pump(c, 25)
    FaultPlan(cluster).kill_chain_node_at(cluster.loop.now + 2e-3, index)
    drive(cluster, 1.0)
    committed = [r for r in done if r.committed]
    assert len(committed) >= 4 * 25 - 4      # clients retry through it
    controller = cluster.controller
    assert controller.chain_repairs >= 1
    # Splice repair, not the paper's stop-the-world path: no failover,
    # no epoch bump anywhere in the system.
    assert controller.failovers == 0
    assert controller.current_epoch == 1
    assert len(controller.chain) == 2
    for replicas in cluster.replicas.values():
        for replica in replicas:
            assert replica.epoch_num == 1
    # Fresh traffic commits through the spliced chain.
    result = submit_and_wait(cluster, clients[0],
                             rmw_op([0, 7], cluster.partitioner), timeout=1.0)
    assert result.committed
    assert cluster.tracer.count("chain_repair") >= 1
    run_trace_checks(cluster.tracer)
    run_all_checks(cluster)


# -- false suspicion: the fenced node is still alive -----------------------

def test_stale_tail_fenced_after_repair():
    """Drop the tail's health-check pongs so the controller splices out
    a perfectly healthy tail. The install must fence it (retired), and
    any of its late releases must be version-rejected — the no-stale-
    release invariant holds even though the node never crashed."""
    cluster = make_chain_cluster(chain=3)
    client = cluster.make_client()
    for i in range(5):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    tail_addr = cluster.controller.chain[-1]
    cluster.network.drop_filter = (
        lambda p: p.src == tail_addr and p.dst == "controller")
    drive(cluster, 0.05)
    cluster.network.drop_filter = None
    controller = cluster.controller
    assert controller.chain_repairs >= 1
    assert tail_addr not in controller.chain
    assert controller.current_epoch == 1 and controller.failovers == 0
    old_tail = cluster.network.endpoint(tail_addr)
    assert old_tail.retired and not old_tail.crashed
    # The spliced chain keeps serving; stamps continue monotonically
    # from the counters the old tail had already replicated.
    for i in range(5):
        result = submit_and_wait(cluster, client,
                                 rmw_op([i, 8 + i], cluster.partitioner),
                                 timeout=1.0)
        assert result.committed
    run_trace_checks(cluster.tracer)
    run_all_checks(cluster)


def test_stale_forward_version_rejected_after_repair():
    """A ChainForward from the pre-repair incarnation reaching a
    repaired node is dropped by the version fence (never released)."""
    from repro.net.chainseq import ChainForward

    cluster = make_chain_cluster(chain=2)
    client = cluster.make_client()
    for i in range(3):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    head_addr, tail_addr = cluster.controller.chain
    tail = cluster.network.endpoint(tail_addr)
    old_version = tail.version
    cluster.crash_chain_node(0)              # head dies; tail survives
    drive(cluster, 0.1)
    assert cluster.controller.chain == [tail_addr]
    assert tail.version > old_version
    releases_before = tail.releases
    stale = ChainForward(version=old_version, epoch=1,
                         stamps=((0, 999),), origin="client-1",
                         payload=None, groups=(0,))
    tail.on_ChainForward(head_addr, stale, None)
    assert tail.releases == releases_before
    assert tail.stale_rejected >= 1
    assert tail.counters.get(0, 0) < 999     # stale write not absorbed
    run_trace_checks(cluster.tracer)


# -- crashes under adverse network conditions ------------------------------

@pytest.mark.parametrize("drop_rate", [0.05, 0.2])
def test_head_crash_under_packet_loss(drop_rate):
    """Chain repair's own control messages (state request, installs,
    acks) get dropped; the controller's retransmission must push the
    splice through anyway."""
    cluster = make_chain_cluster(chain=3)
    client = cluster.make_client()
    for i in range(4):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    now = cluster.loop.now
    plan = FaultPlan(cluster)
    plan.kill_chain_node_at(now + 1e-3, 0)
    plan.set_drop_rate_at(now + 1e-3, drop_rate)
    plan.set_drop_rate_at(now + 0.25, 0.0)
    drive(cluster, 0.6)
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 9], cluster.partitioner),
                             timeout=2.0)
    assert result.committed
    drive(cluster, 0.2)
    controller = cluster.controller
    assert controller.chain_repairs >= 1
    assert cluster.tracer.count("drop") > 0
    # Loss may fell more members (dropped pongs -> more splices, or in
    # the worst case the epoch fallback); whatever path ran, the
    # invariants must hold and the system must be live.
    run_trace_checks(cluster.tracer)
    run_all_checks(cluster)


def test_tail_crash_with_reordered_links():
    cluster = make_chain_cluster(chain=3)
    cluster.network.config.fifo_links = False
    cluster.network.config.jitter = 30e-6    # >> back-to-back send gaps
    clients = [cluster.make_client() for _ in range(5)]
    done = []
    for c in clients:
        for i in range(8):
            c.submit(rmw_op([i % 4, 4 + i % 3], cluster.partitioner),
                     done.append)
    FaultPlan(cluster).kill_chain_node_at(cluster.loop.now + 2e-3, -1)
    drive(cluster, 1.0)
    committed = [r for r in done if r.committed]
    assert len(committed) >= 5 * 8 - 5
    assert cluster.tracer.count("reorder") > 0
    assert cluster.controller.chain_repairs >= 1
    assert cluster.controller.current_epoch == 1
    run_trace_checks(cluster.tracer)
    run_all_checks(cluster)


# -- whole chain lost: the epoch-change fallback ---------------------------

def test_whole_chain_lost_falls_back_to_epoch_change():
    cluster = make_chain_cluster(chain=2)
    client = cluster.make_client()
    for i in range(5):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    cluster.crash_chain_node(0)
    cluster.crash_chain_node(1)
    drive(cluster, 0.3)
    controller = cluster.controller
    assert controller.failovers == 1
    assert controller.current_epoch == 2
    assert controller.active_address.startswith("seq")
    # New-epoch traffic triggers the §6.5 epoch change lazily.
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 8], cluster.partitioner),
                             timeout=1.0)
    assert result.committed
    drive(cluster, 0.2)
    assert cluster.tracer.count("chain_lost") == 1
    for replicas in cluster.replicas.values():
        for replica in replicas:
            if not replica.crashed:
                assert replica.epoch_num == 2
    run_trace_checks(cluster.tracer)
    run_all_checks(cluster)


# -- the acceptance criterion: repair beats the epoch bump -----------------

def test_chain_repair_window_strictly_smaller_than_epoch_bump():
    """Extended fig14 at test scale: identical workload and controller
    timing, one run with the paper's single sequencer (epoch bump on
    failure) and one with a 2-node chain (splice repair). The chain's
    outage window must be strictly smaller, and both executions must
    pass every §6.7 checker."""
    from repro.harness import ExperimentConfig, build_cluster, \
        run_failover_experiment
    from repro.harness.cluster import ClusterConfig
    from repro.net.network import NetConfig
    from repro.sim.randomness import SplitRandom
    from repro.store import ProcedureRegistry
    from repro.workloads import (Partitioner, YCSBConfig, YCSBWorkload,
                                 register_ycsb_procedures)
    from repro.workloads.ycsb import load_ycsb

    kill_at = 25e-3
    controller = ControllerConfig(ping_interval=3e-3, failure_threshold=2,
                                  reroute_delay=20e-3,
                                  chain_repair_delay=3e-3)

    def measure(chain):
        registry = ProcedureRegistry()
        register_ycsb_procedures(registry)
        partitioner = Partitioner(2)
        config = ClusterConfig(system="eris", n_shards=2, seed=7,
                               net=NetConfig(), controller=controller,
                               sequencer_chain=chain, tracing=True)
        cluster = build_cluster(
            config, registry, partitioner,
            loader=lambda stores, p: load_ycsb(stores, p, 200))
        workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=200),
                                partitioner, SplitRandom(8))
        result, window = run_failover_experiment(
            cluster, workload, kill_at,
            ExperimentConfig(n_clients=10, warmup=5e-3, duration=80e-3,
                             drain=20e-3, timeseries_bucket=5e-3))
        run_all_checks(cluster)
        return cluster, result, window

    epoch_cluster, epoch_result, epoch_window = measure(chain=0)
    chain_cluster, chain_result, chain_window = measure(chain=2)

    assert epoch_cluster.controller.failovers == 1
    assert epoch_cluster.controller.current_epoch == 2
    assert chain_cluster.controller.chain_repairs == 1
    assert chain_cluster.controller.failovers == 0
    assert chain_cluster.controller.current_epoch == 1
    # Both killed the serving element and saw a real outage...
    assert 0 < chain_window < float("inf")
    assert 0 < epoch_window < float("inf")
    # ...but splice repair reopens strictly sooner than the epoch bump.
    assert chain_window < epoch_window
