"""Unit tests for the Failure Coordinator driven directly with
protocol messages (no full cluster)."""

from repro.core.fc import FailureCoordinator
from repro.core.messages import (
    EpochChangeReq,
    EpochState,
    FindTxn,
    HasTxn,
    StartEpochAck,
    TempDroppedTxn,
    TxnDropped,
    TxnFound,
    TxnRecord,
    TxnRequestMsg,
)
from repro.core.log import LogEntry
from repro.core.quorum import ViewConsistentQuorum
from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.net.endpoint import Node
from repro.net.message import MultiStamp
from repro.net.network import NetConfig, Network
from repro.sim.event_loop import EventLoop


class Probe(Node):
    def __init__(self, address, network):
        super().__init__(address, network)
        self.inbox = []

    def handle(self, src, message, packet):
        self.inbox.append(message)


def build_fc(n_shards=2, n_replicas=3):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    shards = {}
    probes = {}
    for shard in range(n_shards):
        addrs = [f"s{shard}r{i}" for i in range(n_replicas)]
        shards[shard] = addrs
        probes.update({a: Probe(a, net) for a in addrs})
    fc = FailureCoordinator("fc", net, shards)
    return loop, net, fc, probes


def record_for(slot: SlotId, participants=(0, 1)):
    txn = IndependentTransaction(txn_id=TxnId("c", 1), proc="p", args={},
                                 participants=participants)
    stamps = tuple((g, slot.seq) for g in participants)
    return TxnRecord(txn=txn, multistamp=MultiStamp(slot.epoch, stamps))


def temp_drop(slot, shard, idx, sender):
    return TempDroppedTxn(slot=slot, shard=shard, view_num=0, epoch_num=1,
                          sender=sender, replica_index=idx, is_dl=(idx == 0))


def test_find_txn_broadcasts_request():
    loop, net, fc, probes = build_fc()
    fc.on_FindTxn("s0r1", FindTxn(slot=SlotId(0, 1, 5), sender="s0r1"), None)
    loop.run(until=5e-3)  # bounded: the FC keeps retrying undecided finds
    for probe in probes.values():
        assert any(isinstance(m, TxnRequestMsg) for m in probe.inbox)


def test_has_txn_resolves_to_participants():
    loop, net, fc, probes = build_fc()
    slot = SlotId(0, 1, 5)
    fc.on_FindTxn("s0r1", FindTxn(slot=slot, sender="s0r1"), None)
    fc.on_HasTxn("s1r0", HasTxn(slot=slot, record=record_for(slot),
                                sender="s1r0"), None)
    loop.run_until_idle()
    assert slot in fc.found
    found = [m for m in probes["s0r1"].inbox if isinstance(m, TxnFound)]
    assert found and found[0].slot == slot


def test_unanimous_temp_drops_decide_permanent_drop():
    loop, net, fc, probes = build_fc()
    slot = SlotId(0, 1, 5)
    fc.on_FindTxn("s0r1", FindTxn(slot=slot, sender="s0r1"), None)
    for shard in (0, 1):
        for idx in range(2):   # majority incl DL (index 0) per shard
            fc.on_TempDroppedTxn(
                f"s{shard}r{idx}",
                temp_drop(slot, shard, idx, f"s{shard}r{idx}"), None)
    loop.run_until_idle()
    assert slot in fc.dropped
    # TXN-DROPPED reaches every replica of every shard.
    for probe in probes.values():
        assert any(isinstance(m, TxnDropped) for m in probe.inbox)


def test_drop_needs_dl_in_each_quorum():
    loop, net, fc, probes = build_fc()
    slot = SlotId(0, 1, 5)
    fc.on_FindTxn("s0r1", FindTxn(slot=slot, sender="s0r1"), None)
    # Majorities WITHOUT the DL (indexes 1 and 2 only): no decision.
    for shard in (0, 1):
        for idx in (1, 2):
            fc.on_TempDroppedTxn(
                f"s{shard}r{idx}",
                temp_drop(slot, shard, idx, f"s{shard}r{idx}"), None)
    loop.run(until=5e-3)  # bounded: undecided finds retry forever
    assert slot not in fc.dropped


def test_drop_decisions_are_final_against_late_has_txn():
    loop, net, fc, probes = build_fc()
    slot = SlotId(0, 1, 5)
    fc.on_FindTxn("s0r1", FindTxn(slot=slot, sender="s0r1"), None)
    for shard in (0, 1):
        for idx in range(2):
            fc.on_TempDroppedTxn(
                f"s{shard}r{idx}",
                temp_drop(slot, shard, idx, f"s{shard}r{idx}"), None)
    assert slot in fc.dropped
    probes["s1r2"].inbox.clear()
    fc.on_HasTxn("s1r2", HasTxn(slot=slot, record=record_for(slot),
                                sender="s1r2"), None)
    loop.run_until_idle()
    # The late holder is told the transaction is dropped, not found.
    assert any(isinstance(m, TxnDropped) for m in probes["s1r2"].inbox)
    assert slot not in fc.found


def test_found_decision_cached_for_later_finders():
    loop, net, fc, probes = build_fc()
    slot = SlotId(0, 1, 5)
    fc.on_FindTxn("s0r1", FindTxn(slot=slot, sender="s0r1"), None)
    fc.on_HasTxn("s1r0", HasTxn(slot=slot, record=record_for(slot),
                                sender="s1r0"), None)
    probes["s0r2"].inbox.clear()
    fc.on_FindTxn("s0r2", FindTxn(slot=slot, sender="s0r2"), None)
    loop.run_until_idle()
    assert any(isinstance(m, TxnFound) for m in probes["s0r2"].inbox)


def make_epoch_state(shard, sender, entries=(), epoch=1, view=0,
                     new_epoch=2):
    return EpochState(shard=shard, new_epoch=new_epoch,
                      last_normal_epoch=epoch, view_num=view,
                      log=tuple(entries), perm_drops=frozenset(),
                      sender=sender)


def test_epoch_change_requires_majority_from_every_shard():
    loop, net, fc, probes = build_fc()
    fc.on_EpochChangeReq("s0r0", EpochChangeReq(shard=0, new_epoch=2,
                                                sender="s0r0"), None)
    # Only shard 0 responds: no START-EPOCH yet.
    for idx in range(3):
        fc.on_EpochState(f"s0r{idx}",
                         make_epoch_state(0, f"s0r{idx}"), None)
    assert fc.epoch_changes_completed == 0
    for idx in range(2):
        fc.on_EpochState(f"s1r{idx}",
                         make_epoch_state(1, f"s1r{idx}"), None)
    assert fc.epoch_changes_completed == 1


def test_epoch_change_completes_cross_shard_logs():
    """A transaction known only to shard 0's log must appear in shard
    1's rebuilt log at its stamped slot (the §6.5 consistency rule)."""
    loop, net, fc, probes = build_fc()
    slot0 = SlotId(0, 1, 1)
    record = record_for(slot0, participants=(0, 1))  # stamps (0,1),(1,1)
    entry = LogEntry(index=1, slot=slot0, kind="txn", record=record)
    fc.on_EpochChangeReq("s0r0", EpochChangeReq(shard=0, new_epoch=2,
                                                sender="s0r0"), None)
    for idx in range(2):
        fc.on_EpochState(f"s0r{idx}",
                         make_epoch_state(0, f"s0r{idx}",
                                          entries=(entry,)), None)
    for idx in range(2):
        fc.on_EpochState(f"s1r{idx}",
                         make_epoch_state(1, f"s1r{idx}"), None)
    loop.run(until=5e-3)  # bounded: START-EPOCH retransmits until acked
    change = fc._epoch_changes[2]
    shard1_log = change.start_msgs[1].log
    assert len(shard1_log) == 1
    assert shard1_log[0].kind == "txn"
    assert shard1_log[0].slot == SlotId(1, 1, 1)


def test_epoch_change_acks_stop_retransmission():
    loop, net, fc, probes = build_fc()
    fc.on_EpochChangeReq("s0r0", EpochChangeReq(shard=0, new_epoch=2,
                                                sender="s0r0"), None)
    for shard in (0, 1):
        for idx in range(2):
            fc.on_EpochState(f"s{shard}r{idx}",
                             make_epoch_state(shard, f"s{shard}r{idx}"),
                             None)
    for shard in (0, 1):
        for idx in range(2):
            fc.on_StartEpochAck(f"s{shard}r{idx}",
                                StartEpochAck(shard=shard, new_epoch=2,
                                              sender=f"s{shard}r{idx}"),
                                None)
    change = fc._epoch_changes[2]
    assert not change.timer.active


def test_quorum_tracker_requires_dl():
    quorum = ViewConsistentQuorum(3)
    quorum.add(("k",), 1, is_dl=False)
    quorum.add(("k",), 2, is_dl=False)
    assert quorum.satisfied() is None
    quorum.add(("k",), 0, is_dl=True)
    assert quorum.satisfied() == ("k",)


def test_quorum_tracker_keys_independent():
    quorum = ViewConsistentQuorum(3)
    quorum.add(("a",), 0, is_dl=True)
    quorum.add(("b",), 1, is_dl=False)
    quorum.add(("b",), 2, is_dl=False)
    assert quorum.satisfied() is None   # split across keys


def test_quorum_payloads_and_dl_payload():
    quorum = ViewConsistentQuorum(3)
    quorum.add("k", 0, is_dl=True, payload="dl-result")
    quorum.add("k", 1, is_dl=False, payload="ack")
    assert quorum.dl_payload("k") == "dl-result"
    assert quorum.payloads("k") == {0: "dl-result", 1: "ack"}
