"""Protocol-level batching: stamp batching, chain pipelining, reply
coalescing — plus the sequencer ingress-bookkeeping regressions.

All batching knobs default to off and are pinned so by the determinism
digests (tests/test_determinism.py). This file turns them on and checks
that (a) the amortization actually happens (wakeup/batch counters move)
and (b) the protocol outcome is untouched: same stamps, same commits,
§6.7 invariants green.
"""

from __future__ import annotations

import pytest

from repro.core.replica import ErisConfig
from repro.errors import ConfigurationError
from repro.harness.checkers import run_all_checks
from repro.harness.cluster import ClusterConfig, build_cluster
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.net.endpoint import Node
from repro.net.message import GroupcastHeader, Packet
from repro.net.network import NetConfig, Network
from repro.net.sequencer import INGRESS_BOUND, MultiSequencer, \
    SequencerProfile
from repro.sim.event_loop import EventLoop
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import Partitioner, register_ycsb_procedures
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, load_ycsb


class Sink(Node):
    def __init__(self, address, network):
        super().__init__(address, network)
        self.packets = []

    def deliver(self, packet):
        self.packets.append(packet)


def build(stamp_batch=1, members=3):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    addrs = [f"g0m{i}" for i in range(members)]
    sinks = [Sink(a, net) for a in addrs]
    net.groups.define(0, addrs)
    seq = MultiSequencer("seq0", net, SequencerProfile.in_switch(),
                         stamp_batch=stamp_batch)
    net.install_sequencer_route("seq0")
    sender = Sink("client", net)
    return loop, net, seq, sinks, sender


# -- sequencer stamp batching ----------------------------------------------

def test_stamp_batching_amortizes_wakeups():
    loop, net, seq, sinks, sender = build(stamp_batch=4)
    # A genuinely same-tick burst (the fabric's FIFO links space normal
    # arrivals ~1ns apart, so burst semantics are driven directly).
    for i in range(8):
        seq._process_groupcast(_groupcast_packet(i))
    loop.run_until_idle()
    assert seq.packets_stamped == 8
    # ceil(8/4) wakeups, not 8: the first drains 4 and re-arms once.
    assert seq.stamp_wakeups == 2
    for sink in sinks:
        assert [p.payload for p in sink.packets] == list(range(8))
        assert [p.multistamp.seq_for(0) for p in sink.packets] \
            == list(range(1, 9))


def test_stamp_batching_preserves_stamp_order_vs_unbatched():
    """Batched and unbatched runs assign identical (group, seq) stamps
    in arrival order — batching changes scheduling, never ordering."""
    outcomes = []
    for stamp_batch in (1, 4):
        loop, net, seq, sinks, sender = build(stamp_batch=stamp_batch)
        for i in range(10):
            sender.send_groupcast((0,), i)
        loop.run_until_idle()
        outcomes.append([(p.payload, p.multistamp.seq_for(0))
                         for p in sinks[0].packets])
    assert outcomes[0] == outcomes[1]


def test_stamp_batch_one_never_queues():
    loop, net, seq, sinks, sender = build(stamp_batch=1)
    for i in range(5):
        sender.send_groupcast((0,), i)
    loop.run_until_idle()
    assert seq.stamp_wakeups == 0
    assert not seq._stamp_queue


# -- ingress bookkeeping regressions ---------------------------------------

def _groupcast_packet(i):
    return Packet(src="client", dst=None, payload=i,
                  groupcast=GroupcastHeader((0,)), sequenced=True)


def test_crash_clears_stamp_queue_and_ingress():
    """A crashed sequencer must not strand queued groupcasts or leak
    queue-delay bookkeeping: both maps empty out with the node."""
    loop, net, seq, sinks, sender = build(stamp_batch=8)
    for i in range(5):
        packet = _groupcast_packet(i)
        seq._ingress[packet.packet_id] = 0.0
        seq._stamp_queue.append(packet)
    seq.crash()
    assert not seq._stamp_queue
    assert not seq._ingress
    loop.run_until_idle()   # any armed wakeup must be a no-op
    assert seq.packets_stamped == 0


def test_ingress_map_stays_bounded():
    loop, net, seq, sinks, sender = build()

    class _Tracer:
        def sequencer_stamp(self, *a, **k):
            pass

        def packet_send(self, *a, **k):
            pass

        def packet_tx(self, *a, **k):
            pass

        def packet_deliver(self, *a, **k):
            pass

    net.tracer = _Tracer()
    for i in range(INGRESS_BOUND + 50):
        seq.deliver(_groupcast_packet(i))
    assert len(seq._ingress) <= INGRESS_BOUND


# -- the full batching stack end-to-end in the simulator -------------------

def _run_batched_eris(sequencer_chain=0, batch=4):
    registry = ProcedureRegistry()
    register_ycsb_procedures(registry)
    partitioner = Partitioner(2)
    cluster = build_cluster(
        ClusterConfig(system="eris", n_shards=2, seed=42,
                      sequencer_chain=sequencer_chain,
                      sequencer_batch=batch, chain_pipeline=batch,
                      eris=ErisConfig(reply_coalesce=batch)),
        registry, partitioner,
        loader=lambda stores, p: load_ycsb(stores, p, 500))
    workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=500),
                            partitioner, SplitRandom(43))
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=20, warmup=1e-3, duration=3e-3, drain=1e-3))
    return cluster, result


def test_batched_eris_commits_and_passes_invariants():
    cluster, result = _run_batched_eris()
    assert result.committed > 100
    run_all_checks(cluster)
    # The batching path carried the traffic: every stamp went through
    # the wakeup queue. (Per-wakeup burst sizes depend on arrival
    # spacing — the unit tests above pin the burst semantics, and
    # closed-loop clients with one outstanding txn rarely coalesce.)
    seqs = [s for s in cluster.sequencers if s.packets_stamped]
    assert seqs and all(0 < s.stamp_wakeups <= s.packets_stamped
                        for s in seqs)


def test_batched_chain_eris_commits_and_passes_invariants():
    cluster, result = _run_batched_eris(sequencer_chain=3)
    assert result.committed > 100
    run_all_checks(cluster)
    from repro.net.chainseq import ChainSequencerNode
    chain = [s for s in cluster.sequencers
             if isinstance(s, ChainSequencerNode)]
    assert chain and any(n.batches_forwarded > 0 for n in chain)


# -- reply coalescing -------------------------------------------------------

def _reply(txn_id, idx, shard=0, index=1, result=None):
    from repro.core.messages import TxnReply
    return TxnReply(txn_id=txn_id, txn_index=index, view_num=0,
                    epoch_num=1, shard=shard, replica_index=idx,
                    is_dl=(idx == 0), committed=True, result=result)


def test_reply_coalescing_batches_same_client_burst():
    """Two executions for one client in the same wakeup leave as a
    single TxnReplyBatch, and the client's quorum accounting is
    identical to per-reply delivery. Driven without running the loop:
    the flush and the client handler are exercised directly."""
    from repro.core.client import ErisClient
    from repro.core.messages import TxnReplyBatch
    cluster, _ = _run_batched_eris()
    replica = cluster.replicas[0][0]
    # Forge the same-wakeup burst the closed-loop workload above never
    # produces: two replies for one client buffered, then one flush.
    from repro.core.transaction import TxnId
    ids = [TxnId(client="cx", seq=i) for i in (1, 2)]
    before = replica.reply_batches_sent
    for txn_id in ids:
        replica._reply_buffer.setdefault("cx", []).append(
            _reply(txn_id, replica.replica_index))
    replica._flush_replies()
    assert replica.reply_batches_sent == before + 1

    # Client side: one TxnReplyBatch advances both pending quorums
    # exactly as two separate TxnReply deliveries would.
    client = ErisClient("cx", cluster.network, {0: 3}, retry_timeout=5e-3)
    outcomes = []
    ids = [client.submit("ycsb_read", {"key": 0}, (0,), outcomes.append)
           for _ in range(2)]
    batch = TxnReplyBatch(tuple(_reply(txn_id, 0) for txn_id in ids))
    client.on_TxnReplyBatch("r0", batch, None)
    assert not outcomes                       # DL alone is no quorum
    for txn_id in ids:
        for idx in (1, 2):
            client.on_TxnReply(f"r{idx}", _reply(txn_id, idx), None)
    assert len(outcomes) == 2
    assert all(o.committed for o in outcomes)


def test_reply_coalesce_caps_batch_size():
    from repro.core.transaction import TxnId
    cluster, _ = _run_batched_eris(batch=2)
    replica = cluster.replicas[0][0]
    replica._reply_buffer["cy"] = [
        _reply(TxnId(client="cy", seq=i), replica.replica_index)
        for i in range(5)]
    before = replica.reply_batches_sent
    replica._flush_replies()
    # 5 replies at cap 2 -> two full batches + one singleton reply.
    assert replica.reply_batches_sent == before + 2
    assert not replica._reply_buffer


def test_batching_knob_validation():
    for kwargs in (dict(sequencer_batch=0), dict(chain_pipeline=0),
                   dict(udp_batch_frames=-1)):
        with pytest.raises(ConfigurationError):
            ClusterConfig(system="eris", **kwargs).validate()
