"""Metrics sampler: periodic registry snapshots into a JSONL series.

The sampler rides the owning runtime's timers, so under the simulator
the cadence is simulated-deterministic; entry shapes (monotone deltas
and rates, point gauges, NaN-free histogram snapshots) are pinned here
because ``stats`` and the byte-stability determinism test depend on
them.
"""

import json
import math

import pytest

from repro.net.network import NetConfig, Network
from repro.obs import (
    MetricsRegistry,
    MetricsSampler,
    load_series,
    summarize_series,
)
from repro.sim.event_loop import EventLoop


def make_runtime():
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    return loop, net


def test_monotone_series_has_value_delta_rate():
    loop, net = make_runtime()
    registry = MetricsRegistry()
    count = [0]
    registry.gauge("comp", "ops", fn=lambda: count[0], monotone=True)
    sampler = MetricsSampler(net, registry, interval=0.1)
    sampler.start()

    def work():
        count[0] += 5
    for i in range(1, 5):
        loop.schedule(i * 0.1 - 0.01, work)
    loop.run(until=0.45)
    sampler.stop()

    entries = [s["metrics"]["comp"]["ops"] for s in sampler.samples]
    assert [e["v"] for e in entries] == [5, 10, 15, 20, 20]
    # Per-interval deltas: 5 ops per 0.1s tick, none in the closing
    # partial interval.
    assert [e["d"] for e in entries] == [5, 5, 5, 5, 0]
    assert entries[0]["r"] == pytest.approx(50.0)
    assert entries[-1]["r"] == 0.0


def test_plain_gauge_sampled_as_point_value():
    loop, net = make_runtime()
    registry = MetricsRegistry()
    depth = [3]
    registry.gauge("comp", "queue_depth", fn=lambda: depth[0])
    sampler = MetricsSampler(net, registry, interval=0.1)
    sampler.start()
    loop.schedule(0.05, lambda: depth.__setitem__(0, 9))
    loop.run(until=0.15)
    sampler.stop()
    values = [s["metrics"]["comp"]["queue_depth"] for s in sampler.samples]
    assert values == [9, 9]


def test_counter_instrument_gets_delta_treatment():
    loop, net = make_runtime()
    registry = MetricsRegistry()
    counter = registry.counter("comp", "hits")
    sampler = MetricsSampler(net, registry, interval=0.1)
    sampler.start()
    counter.inc(7)
    loop.run(until=0.1)
    sampler.stop()
    entry = sampler.samples[0]["metrics"]["comp"]["hits"]
    assert entry["v"] == 7 and entry["d"] == 7


def test_empty_histogram_is_nan_free():
    loop, net = make_runtime()
    registry = MetricsRegistry()
    registry.histogram("comp", "lat")
    sampler = MetricsSampler(net, registry, interval=0.1)
    sampler.start()
    loop.run(until=0.1)
    sampler.stop()
    entry = sampler.samples[0]["metrics"]["comp"]["lat"]
    assert entry == {"count": 0}
    # The whole series must be strict JSON (no NaN tokens).
    for sample in sampler.samples:
        json.loads(json.dumps(sample, allow_nan=False))


def test_populated_histogram_snapshot_in_series():
    loop, net = make_runtime()
    registry = MetricsRegistry()
    hist = registry.histogram("comp", "lat")
    for v in (1e-6, 2e-6, 100e-6):
        hist.record(v)
    sampler = MetricsSampler(net, registry, interval=0.1)
    sampler.start()
    loop.run(until=0.1)
    sampler.stop()
    entry = sampler.samples[0]["metrics"]["comp"]["lat"]
    assert entry["count"] == 3
    assert not any(isinstance(v, float) and math.isnan(v)
                   for v in entry.values())


def test_baseline_captured_at_start_not_construction():
    """Counts accumulated before start() must not appear as a burst in
    the first interval's delta beyond what actually happened after the
    baseline — the baseline is taken at start()."""
    loop, net = make_runtime()
    registry = MetricsRegistry()
    count = [100]  # pre-existing total before sampling begins
    registry.gauge("comp", "ops", fn=lambda: count[0], monotone=True)
    sampler = MetricsSampler(net, registry, interval=0.1)
    sampler.start()
    count[0] += 2
    loop.run(until=0.1)
    sampler.stop()
    entry = sampler.samples[0]["metrics"]["comp"]["ops"]
    assert entry["v"] == 102 and entry["d"] == 2


def test_stop_takes_a_closing_sample():
    loop, net = make_runtime()
    registry = MetricsRegistry()
    registry.gauge("comp", "x", fn=lambda: 1.0)
    sampler = MetricsSampler(net, registry, interval=10.0)
    sampler.start()
    loop.run(until=0.01)  # shorter than one interval
    sampler.stop()
    assert len(sampler.samples) == 1


def test_export_roundtrip(tmp_path):
    loop, net = make_runtime()
    registry = MetricsRegistry()
    net.instrument(registry)
    sampler = MetricsSampler(net, registry, interval=0.05)
    sampler.start()
    loop.run(until=0.2)
    sampler.stop()
    path = str(tmp_path / "series.jsonl")
    count = sampler.export(path)
    meta, samples = load_series(path)
    assert count == len(samples) == len(sampler.samples)
    assert meta["interval"] == 0.05
    assert meta["backend"] == "sim"
    assert [s["seq"] for s in samples] == list(range(len(samples)))


def test_summarize_series_shapes(tmp_path):
    loop, net = make_runtime()
    registry = MetricsRegistry()
    count = [0]
    registry.gauge("c", "ops", fn=lambda: count[0], monotone=True)
    registry.gauge("c", "depth", fn=lambda: 4)
    hist = registry.histogram("c", "lat")
    hist.record(5e-6)
    sampler = MetricsSampler(net, registry, interval=0.1)
    sampler.start()
    loop.schedule(0.05, lambda: count.__setitem__(0, 30))
    loop.run(until=0.2)
    sampler.stop()
    report = summarize_series(
        {"interval": 0.1, "backend": "sim"},
        sampler.samples)
    rows = {(r["component"], r["name"]): r for r in report["rows"]}
    assert rows[("c", "ops")]["kind"] == "rate"
    assert rows[("c", "ops")]["total"] == 30
    assert rows[("c", "ops")]["rate_peak"] == pytest.approx(300.0)
    assert rows[("c", "depth")] == {"component": "c", "name": "depth",
                                    "kind": "gauge", "last": 4}
    assert rows[("c", "lat")]["kind"] == "hist"
    assert rows[("c", "lat")]["count"] == 1
    assert report["span"]["backend"] == "sim"


def test_interval_must_be_positive():
    _, net = make_runtime()
    with pytest.raises(ValueError):
        MetricsSampler(net, MetricsRegistry(), interval=0.0)


def test_sim_event_loop_health_gauges():
    """The dispatch-health instrumentation the tentpole adds for the
    sim backend: heap size, dead-entry count, and (monotone) dispatch
    counters all visible through the registry."""
    loop, net = make_runtime()
    registry = MetricsRegistry()
    loop.instrument(registry)
    timer_evt = loop.schedule(1.0, lambda: None)
    loop.schedule(0.01, lambda: None)
    loop.cancel(timer_evt)
    snap = registry.snapshot()["sim"]
    assert snap["heap_size"] == 2
    assert snap["dead_entries"] == 1
    assert snap["events_pending"] == 1
    loop.run(until=0.02)
    snap = registry.snapshot()["sim"]
    assert snap["events_processed"] == 1
