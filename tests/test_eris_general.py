"""Integration tests: general transactions (§7) end to end."""

from repro.baselines.common import WorkloadOp
from repro.core.general import GeneralTransactionManager
from repro.harness.checkers import run_all_checks

from conftest import drive, make_ycsb_cluster, submit_and_wait


def swap_op(k1, k2, partitioner):
    keys = frozenset([k1, k2])

    def swap(values):
        return {k1: values.get(k2, 0), k2: values.get(k1, 0)}

    return WorkloadOp(proc="ycsb_swap", args={},
                      participants=partitioner.participants_for(keys),
                      read_keys=keys, write_keys=keys,
                      is_general=True, compute=swap)


def write_op(key, value, partitioner):
    return WorkloadOp(proc="ycsb_write", args={"key": key, "value": value},
                      participants=(partitioner.shard_of(key),),
                      write_keys=frozenset([key]))


def test_cross_shard_swap_commits():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    part = cluster.partitioner
    submit_and_wait(cluster, client, write_op(0, "A", part))
    submit_and_wait(cluster, client, write_op(1, "B", part))
    result = submit_and_wait(cluster, client, swap_op(0, 1, part))
    assert result.committed
    assert cluster.authoritative_store(part.shard_of(0)).get(0) == "B"
    assert cluster.authoritative_store(part.shard_of(1)).get(1) == "A"
    run_all_checks(cluster)


def test_swap_takes_two_independent_txn_rounds():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    single = submit_and_wait(cluster, client,
                             write_op(0, "x", cluster.partitioner))
    general = submit_and_wait(cluster, client,
                              swap_op(0, 1, cluster.partitioner))
    assert general.latency > 1.5 * single.latency


def test_compute_returning_none_aborts():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    part = cluster.partitioner
    submit_and_wait(cluster, client, write_op(0, 10, part))
    op = WorkloadOp(proc="noop", args={}, participants=(0, 1),
                    read_keys=frozenset([0, 1]),
                    write_keys=frozenset([0, 1]),
                    is_general=True, compute=lambda values: None)
    result = submit_and_wait(cluster, client, op)
    assert not result.committed
    assert cluster.authoritative_store(part.shard_of(0)).get(0) == 10
    # Locks released: a later swap succeeds.
    assert submit_and_wait(cluster, client, swap_op(0, 1, part)).committed


def test_locks_block_conflicting_independent_txn():
    """While a general transaction holds its locks, a conflicting
    independent transaction waits; a non-conflicting one proceeds."""
    cluster = make_ycsb_cluster(n_shards=2)
    part = cluster.partitioner
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    order = []
    # Slow general txn: hold locks on {0, 1} across the two phases.
    manager.execute(
        read_keys={0, 1}, write_keys={0, 1}, participants=(0, 1),
        compute=lambda values: {0: 100, 1: 100},
        callback=lambda outcome: order.append(("general", outcome.committed)))
    conflicting = WorkloadOp(
        proc="ycsb_rmw", args={"keys": (0,)}, participants=(0,),
        read_keys=frozenset([0]), write_keys=frozenset([0]))
    unrelated = WorkloadOp(
        proc="ycsb_rmw", args={"keys": (2,)}, participants=(0,),
        read_keys=frozenset([2]), write_keys=frozenset([2]))
    results = {}
    other = cluster.make_client()
    other.submit(conflicting, lambda r: results.setdefault("conflict", r))
    other.submit(unrelated, lambda r: results.setdefault("unrelated", r))
    drive(cluster, 0.1)
    assert order and order[0][1]
    assert results["conflict"].committed
    assert results["unrelated"].committed
    # The conflicting increment serialized after the general txn's
    # write of 100, so the final value is 101 (not 1).
    assert cluster.authoritative_store(part.shard_of(0)).get(0) == 101
    run_all_checks(cluster)


def test_reconnaissance_then_validated_commit():
    cluster = make_ycsb_cluster(n_shards=2)
    part = cluster.partitioner
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    submit_and_wait(cluster, client, write_op(0, 5, part))
    dl0 = next(r for r in cluster.replicas[part.shard_of(0)] if r.is_dl)
    observed = {}
    manager.reconnaissance({dl0.address: [0]}, observed.update)
    drive(cluster, 0.01)
    assert observed == {0: 5}
    outcomes = []
    manager.execute(read_keys={0}, write_keys={0}, participants=(0,),
                    compute=lambda values: {0: values[0] + 1},
                    callback=outcomes.append, expected=dict(observed))
    drive(cluster, 0.05)
    assert outcomes[0].committed
    assert cluster.authoritative_store(part.shard_of(0)).get(0) == 6


def test_stale_reconnaissance_aborts():
    cluster = make_ycsb_cluster(n_shards=2)
    part = cluster.partitioner
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    submit_and_wait(cluster, client, write_op(0, 5, part))
    outcomes = []
    manager.execute(read_keys={0}, write_keys={0}, participants=(0,),
                    compute=lambda values: {0: 99},
                    callback=outcomes.append, expected={0: 12345})
    drive(cluster, 0.05)
    assert not outcomes[0].committed
    assert outcomes[0].reason == "validation failed"
    assert cluster.authoritative_store(part.shard_of(0)).get(0) == 5


def test_failed_client_aborted_by_dl(loop=None):
    """§7.2: a DL aborts a general transaction whose client vanished."""
    cluster = make_ycsb_cluster(
        n_shards=2,
        eris=__import__("repro.core.replica",
                        fromlist=["ErisConfig"]).ErisConfig(
            general_abort_timeout=20e-3))
    part = cluster.partitioner
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    # Start the preliminary, then crash the client before the
    # preliminary replies return, so the conclusory is never sent and
    # the locks stay stuck until the DL reclaims them.
    manager.execute(read_keys={0, 1}, write_keys={0, 1},
                    participants=(0, 1),
                    compute=lambda values: {0: -777, 1: -777},
                    callback=lambda outcome: None)
    cluster.loop.run(until=cluster.loop.now + 15e-6)
    client.node.crash()
    drive(cluster, 0.3)
    # Locks were reclaimed: another client's conflicting txn commits.
    fresh = cluster.make_client()
    result = submit_and_wait(
        cluster, fresh,
        WorkloadOp(proc="ycsb_rmw", args={"keys": (0, 1)},
                   participants=part.participants_for([0, 1]),
                   read_keys=frozenset([0, 1]),
                   write_keys=frozenset([0, 1])),
        timeout=1.0)
    assert result.committed
    # The crashed client's writes never landed.
    assert cluster.authoritative_store(part.shard_of(0)).get(0) != -777
    run_all_checks(cluster)


def test_no_deadlock_with_opposite_order_generals():
    """Two generals locking {a, b} from 'opposite directions' cannot
    deadlock: acquisition is one atomic step in the linearized order."""
    cluster = make_ycsb_cluster(n_shards=2)
    outcomes = []
    for i in range(8):
        client = cluster.make_client()
        manager = GeneralTransactionManager(client.node)
        keys = ({0, 1} if i % 2 == 0 else {1, 0})
        manager.execute(read_keys=keys, write_keys=keys,
                        participants=(0, 1),
                        compute=lambda values: {0: i, 1: i},
                        callback=outcomes.append)
    drive(cluster, 0.5)
    assert len(outcomes) == 8
    assert all(o.committed for o in outcomes)
    run_all_checks(cluster)
