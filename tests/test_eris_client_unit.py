"""Unit tests for the Eris client's quorum logic, driven with
hand-crafted TxnReply messages (no replicas)."""

import pytest

from repro.core.client import ErisClient
from repro.core.messages import TxnReply
from repro.net.network import NetConfig, Network
from repro.sim.event_loop import EventLoop


def build_client(n_replicas=3, shards=(0, 1)):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    client = ErisClient("c", net, {s: n_replicas for s in shards},
                        retry_timeout=5e-3)
    return loop, client


def reply(txn_id, shard, idx, index=1, view=0, epoch=1, committed=True,
          result=None, n=3):
    return TxnReply(txn_id=txn_id, txn_index=index, view_num=view,
                    epoch_num=epoch, shard=shard, replica_index=idx,
                    is_dl=(idx == view % n), committed=committed,
                    result=result)


def submit(client, participants=(0,)):
    outcomes = []
    txn_id = client.submit("p", {}, participants, outcomes.append)
    return txn_id, outcomes


def test_quorum_needs_majority_including_dl():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r1", reply(txn_id, 0, 1), None)
    client.on_TxnReply("r2", reply(txn_id, 0, 2), None)
    assert not outcomes          # majority but no DL
    client.on_TxnReply("r0", reply(txn_id, 0, 0, result="R"), None)
    assert outcomes and outcomes[0].committed
    assert outcomes[0].results[0] == "R"


def test_dl_alone_is_not_quorum():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r0", reply(txn_id, 0, 0), None)
    assert not outcomes


def test_mismatched_indices_do_not_combine():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r0", reply(txn_id, 0, 0, index=1), None)
    client.on_TxnReply("r1", reply(txn_id, 0, 1, index=2), None)
    assert not outcomes          # replies disagree on the log slot
    client.on_TxnReply("r2", reply(txn_id, 0, 2, index=1), None)
    assert outcomes              # r0 + r2 match (incl DL)


def test_mismatched_views_do_not_combine():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r0", reply(txn_id, 0, 0, view=0), None)
    client.on_TxnReply("r1", reply(txn_id, 0, 1, view=1), None)
    client.on_TxnReply("r2", reply(txn_id, 0, 2, view=2), None)
    assert not outcomes


def test_quorum_in_later_view_accepted():
    """After a view change the DL is replica view%n; a quorum formed
    entirely in the new view must satisfy."""
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r1", reply(txn_id, 0, 1, view=1), None)  # new DL
    client.on_TxnReply("r2", reply(txn_id, 0, 2, view=1), None)
    assert outcomes


def test_all_participants_must_reach_quorum():
    loop, client = build_client()
    txn_id, outcomes = submit(client, participants=(0, 1))
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    assert not outcomes          # shard 1 still missing
    for idx in range(3):
        client.on_TxnReply(f"s{idx}", reply(txn_id, 1, idx), None)
    assert outcomes


def test_any_shard_abort_vote_marks_uncommitted():
    loop, client = build_client()
    txn_id, outcomes = submit(client, participants=(0, 1))
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    for idx in range(3):
        client.on_TxnReply(f"s{idx}",
                           reply(txn_id, 1, idx, committed=False), None)
    assert outcomes and not outcomes[0].committed


def test_duplicate_replies_ignored():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    message = reply(txn_id, 0, 0)
    client.on_TxnReply("r0", message, None)
    client.on_TxnReply("r0", message, None)
    assert not outcomes          # one replica cannot vote twice


def test_replies_for_unknown_txn_ignored():
    loop, client = build_client()
    from repro.core.transaction import TxnId
    client.on_TxnReply("r0", reply(TxnId("c", 999), 0, 0), None)
    assert client.inflight == 0


def test_retry_timer_retransmits_until_exhausted():
    loop, client = build_client()
    client.max_retries = 3
    outcomes = []
    client.submit("p", {}, (0,), outcomes.append)
    sent_before = client.network.packets_sent
    loop.run(until=0.1)
    assert client.network.packets_sent > sent_before   # retransmissions
    assert outcomes and not outcomes[0].committed      # gave up
    assert outcomes[0].retries == 4
    assert client.inflight == 0


def test_late_replies_after_completion_ignored():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    assert len(outcomes) == 1
    client.on_TxnReply("r1", reply(txn_id, 0, 1), None)
    assert len(outcomes) == 1


def test_committed_and_aborted_counters():
    loop, client = build_client()
    txn_id, _ = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    txn_id2, _ = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}",
                           reply(txn_id2, 0, idx, committed=False), None)
    assert client.committed_count == 1
    assert client.aborted_count == 1
