"""Unit tests for the Eris client's quorum logic, driven with
hand-crafted TxnReply messages (no replicas)."""

import pytest

from repro.core.client import ErisClient
from repro.core.messages import TxnReply
from repro.net.network import NetConfig, Network
from repro.sim.event_loop import EventLoop


def build_client(n_replicas=3, shards=(0, 1)):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    client = ErisClient("c", net, {s: n_replicas for s in shards},
                        retry_timeout=5e-3)
    return loop, client


def reply(txn_id, shard, idx, index=1, view=0, epoch=1, committed=True,
          result=None, n=3):
    return TxnReply(txn_id=txn_id, txn_index=index, view_num=view,
                    epoch_num=epoch, shard=shard, replica_index=idx,
                    is_dl=(idx == view % n), committed=committed,
                    result=result)


def submit(client, participants=(0,)):
    outcomes = []
    txn_id = client.submit("p", {}, participants, outcomes.append)
    return txn_id, outcomes


def test_quorum_needs_majority_including_dl():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r1", reply(txn_id, 0, 1), None)
    client.on_TxnReply("r2", reply(txn_id, 0, 2), None)
    assert not outcomes          # majority but no DL
    client.on_TxnReply("r0", reply(txn_id, 0, 0, result="R"), None)
    assert outcomes and outcomes[0].committed
    assert outcomes[0].results[0] == "R"


def test_dl_alone_is_not_quorum():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r0", reply(txn_id, 0, 0), None)
    assert not outcomes


def test_mismatched_indices_do_not_combine():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r0", reply(txn_id, 0, 0, index=1), None)
    client.on_TxnReply("r1", reply(txn_id, 0, 1, index=2), None)
    assert not outcomes          # replies disagree on the log slot
    client.on_TxnReply("r2", reply(txn_id, 0, 2, index=1), None)
    assert outcomes              # r0 + r2 match (incl DL)


def test_mismatched_views_do_not_combine():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r0", reply(txn_id, 0, 0, view=0), None)
    client.on_TxnReply("r1", reply(txn_id, 0, 1, view=1), None)
    client.on_TxnReply("r2", reply(txn_id, 0, 2, view=2), None)
    assert not outcomes


def test_quorum_in_later_view_accepted():
    """After a view change the DL is replica view%n; a quorum formed
    entirely in the new view must satisfy."""
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    client.on_TxnReply("r1", reply(txn_id, 0, 1, view=1), None)  # new DL
    client.on_TxnReply("r2", reply(txn_id, 0, 2, view=1), None)
    assert outcomes


def test_all_participants_must_reach_quorum():
    loop, client = build_client()
    txn_id, outcomes = submit(client, participants=(0, 1))
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    assert not outcomes          # shard 1 still missing
    for idx in range(3):
        client.on_TxnReply(f"s{idx}", reply(txn_id, 1, idx), None)
    assert outcomes


def test_any_shard_abort_vote_marks_uncommitted():
    loop, client = build_client()
    txn_id, outcomes = submit(client, participants=(0, 1))
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    for idx in range(3):
        client.on_TxnReply(f"s{idx}",
                           reply(txn_id, 1, idx, committed=False), None)
    assert outcomes and not outcomes[0].committed


def test_duplicate_replies_ignored():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    message = reply(txn_id, 0, 0)
    client.on_TxnReply("r0", message, None)
    client.on_TxnReply("r0", message, None)
    assert not outcomes          # one replica cannot vote twice


def test_replies_for_unknown_txn_ignored():
    loop, client = build_client()
    from repro.core.transaction import TxnId
    client.on_TxnReply("r0", reply(TxnId("c", 999), 0, 0), None)
    assert client.inflight == 0


def test_retry_timer_retransmits_until_exhausted():
    loop, client = build_client()
    client.max_retries = 3
    outcomes = []
    client.submit("p", {}, (0,), outcomes.append)
    sent_before = client.network.packets_sent
    loop.run(until=0.1)
    assert client.network.packets_sent > sent_before   # retransmissions
    assert outcomes and not outcomes[0].committed      # gave up
    assert outcomes[0].retries == 4
    assert client.inflight == 0


def test_late_replies_after_completion_ignored():
    loop, client = build_client()
    txn_id, outcomes = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    assert len(outcomes) == 1
    client.on_TxnReply("r1", reply(txn_id, 0, 1), None)
    assert len(outcomes) == 1


def test_committed_and_aborted_counters():
    loop, client = build_client()
    txn_id, _ = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_id, 0, idx), None)
    txn_id2, _ = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}",
                           reply(txn_id2, 0, idx, committed=False), None)
    assert client.committed_count == 1
    assert client.aborted_count == 1


def test_retry_exhaustion_counts_toward_completion_invariant():
    """Regression: a give-up after max_retries used to complete the
    submission without touching any counter, so committed + aborted no
    longer matched the number of finished submissions."""
    loop, client = build_client()
    client.max_retries = 3
    completions = []
    # One transaction that times out (no replicas exist to reply)...
    client.submit("p", {}, (0,), completions.append)
    # ...and one that commits, one that aborts, via hand-fed replies.
    txn_commit, _ = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}", reply(txn_commit, 0, idx), None)
    txn_abort, _ = submit(client)
    for idx in range(3):
        client.on_TxnReply(f"r{idx}",
                           reply(txn_abort, 0, idx, committed=False), None)
    loop.run(until=0.1)
    assert completions and not completions[0].committed
    assert client.timedout_count == 1
    assert client.committed_count == 1
    assert client.aborted_count == 1
    # The invariant the harness failure-rate stats rely on:
    completed = 1 + 2                  # timed out + the two hand-fed
    assert (client.committed_count + client.aborted_count
            + client.timedout_count) == completed
    assert client.inflight == 0


# -- reconnaissance reads (§7.1) -------------------------------------------

def test_recon_replies_keyed_by_replica_not_just_key():
    """Concurrent recon reads of the same key from different replicas
    must resolve independently: the reply from r0 must not release the
    waiter that asked r1 (whose copy may be stale)."""
    from repro.core.messages import ReconReply

    loop, client = build_client()
    got = []
    client.recon("r0", "k", lambda key, value: got.append(("r0", value)))
    client.recon("r1", "k", lambda key, value: got.append(("r1", value)))
    client.on_ReconReply("r0", ReconReply(key="k", value="fresh"), None)
    assert got == [("r0", "fresh")]          # r1's waiter still pending
    client.on_ReconReply("r1", ReconReply(key="k", value="stale"), None)
    assert got == [("r0", "fresh"), ("r1", "stale")]


def test_recon_waiters_for_same_replica_and_key_coalesce():
    from repro.core.messages import ReconReply

    loop, client = build_client()
    got = []
    client.recon("r0", "k", lambda key, value: got.append(1))
    client.recon("r0", "k", lambda key, value: got.append(2))
    assert client.network.packets_sent == 1  # one outstanding read
    client.on_ReconReply("r0", ReconReply(key="k", value="v"), None)
    assert got == [1, 2]


def test_recon_retransmits_after_dropped_reply():
    """A dropped ReconReply must not strand the waiter forever: the
    read retransmits on the retry timeout and the late reply lands."""
    loop, client = build_client()
    got = []
    client.recon("r0", 7, lambda key, value: got.append((key, value)))
    sent_before = client.network.packets_sent
    loop.run(until=3 * client.retry_timeout)
    assert client.network.packets_sent > sent_before  # retransmissions
    assert got == []                                  # still waiting
    from repro.core.messages import ReconReply
    client.on_ReconReply("r0", ReconReply(key=7, value="late"), None)
    assert got == [(7, "late")]
    # Timer is stopped: no further retransmissions accumulate.
    sent_after = client.network.packets_sent
    loop.run(until=loop.now + 10 * client.retry_timeout)
    assert client.network.packets_sent == sent_after


def test_recon_gives_up_with_none_after_max_retries():
    loop, client = build_client()
    client.max_retries = 3
    got = []
    client.recon("dead-replica", "k", lambda key, value: got.append(value))
    loop.run(until=1.0)
    assert got == [None]
    assert client.recon_retry_count == 4
