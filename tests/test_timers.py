"""Unit tests for Timer and PeriodicTimer."""

import pytest

from repro.sim.event_loop import EventLoop
from repro.sim.process import PeriodicTimer, Timer


def test_timer_fires_after_delay():
    loop = EventLoop()
    fired = []
    timer = Timer(loop, 5e-3, fired.append, "x")
    timer.start()
    loop.run(until=4e-3)
    assert fired == []
    loop.run(until=6e-3)
    assert fired == ["x"]


def test_timer_stop_cancels():
    loop = EventLoop()
    fired = []
    timer = Timer(loop, 5e-3, fired.append, "x")
    timer.start()
    timer.stop()
    loop.run_until_idle()
    assert fired == []


def test_timer_restart_pushes_deadline():
    loop = EventLoop()
    fired = []
    timer = Timer(loop, 5e-3, lambda: fired.append(loop.now))
    timer.start()
    loop.run(until=3e-3)
    timer.restart()
    loop.run_until_idle()
    assert fired == [pytest.approx(8e-3)]
    assert len(fired) == 1


def test_timer_custom_delay_overrides_default():
    loop = EventLoop()
    fired = []
    timer = Timer(loop, 5e-3, lambda: fired.append(loop.now))
    timer.start(delay=1e-3)
    loop.run_until_idle()
    assert fired == [pytest.approx(1e-3)]


def test_timer_active_property():
    loop = EventLoop()
    timer = Timer(loop, 5e-3, lambda: None)
    assert not timer.active
    timer.start()
    assert timer.active
    timer.stop()
    assert not timer.active


def test_periodic_fires_repeatedly():
    loop = EventLoop()
    fired = []
    timer = PeriodicTimer(loop, 2e-3, lambda: fired.append(loop.now))
    timer.start()
    loop.run(until=7e-3)
    assert [pytest.approx(t) for t in (2e-3, 4e-3, 6e-3)] == fired
    timer.stop()


def test_periodic_stop_halts_firing():
    loop = EventLoop()
    fired = []
    timer = PeriodicTimer(loop, 2e-3, lambda: fired.append(1))
    timer.start()
    loop.run(until=5e-3)
    timer.stop()
    loop.run(until=20e-3)
    assert len(fired) == 2


def test_periodic_initial_delay():
    loop = EventLoop()
    fired = []
    timer = PeriodicTimer(loop, 5e-3, lambda: fired.append(loop.now))
    timer.start(initial_delay=1e-3)
    loop.run(until=7e-3)
    assert fired == [pytest.approx(1e-3), pytest.approx(6e-3)]
    timer.stop()


def test_periodic_stop_from_callback():
    loop = EventLoop()
    fired = []
    timer = PeriodicTimer(loop, 1e-3, lambda: (fired.append(1),
                                               timer.stop()))
    timer.start()
    loop.run(until=10e-3)
    assert len(fired) == 1
