"""Unit tests for the Eris replica log and view-change merge."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.log import ErisLog, LogEntry, merge_logs
from repro.core.messages import TxnRecord
from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.net.message import MultiStamp


def record(shard_seqs: dict, epoch=1, name="t"):
    txn = IndependentTransaction(
        txn_id=TxnId(client=name, seq=1), proc="p", args={},
        participants=tuple(sorted(shard_seqs)))
    stamp = MultiStamp(epoch=epoch,
                       stamps=tuple(sorted(shard_seqs.items())))
    return TxnRecord(txn=txn, multistamp=stamp)


def test_append_assigns_sequential_indexes():
    log = ErisLog(0)
    e1 = log.append_txn(SlotId(0, 1, 1), record({0: 1}))
    e2 = log.append_noop(SlotId(0, 1, 2))
    assert (e1.index, e2.index) == (1, 2)
    assert log.last_index == 2
    assert log.get(1) is e1
    assert log.get(3) is None


def test_find_slot_and_stamped():
    log = ErisLog(0)
    log.append_txn(SlotId(0, 1, 1), record({0: 1, 2: 7}))
    assert log.find_slot(SlotId(0, 1, 1)) is not None
    assert log.find_slot(SlotId(0, 1, 2)) is None
    # Cross-shard lookup via the multi-stamp: shard 2's seq 7.
    assert log.find_stamped(SlotId(2, 1, 7)) is not None
    assert log.find_stamped(SlotId(2, 1, 8)) is None
    assert log.find_stamped(SlotId(2, 2, 7)) is None  # wrong epoch


def test_last_seq_per_epoch():
    log = ErisLog(0)
    log.append_txn(SlotId(0, 1, 1), record({0: 1}))
    log.append_txn(SlotId(0, 1, 2), record({0: 2}))
    log.append_txn(SlotId(0, 2, 1), record({0: 1}, epoch=2))
    assert log.last_seq(1) == 2
    assert log.last_seq(2) == 1
    assert log.last_seq(3) == 0


def test_replace_reindexes():
    log = ErisLog(0)
    entries = [LogEntry(index=99, slot=SlotId(0, 1, s), kind="noop",
                        record=None) for s in (1, 2, 3)]
    log.replace(entries)
    assert [e.index for e in log.entries()] == [1, 2, 3]
    assert log.find_slot(SlotId(0, 1, 2)).kind == "noop"


def test_overwrite_noop_updates_index():
    log = ErisLog(0)
    log.append_txn(SlotId(0, 1, 1), record({0: 1}))
    log.overwrite_noop(1)
    assert log.get(1).is_noop
    assert log.find_slot(SlotId(0, 1, 1)).is_noop


def test_merge_takes_longest_log():
    short = (LogEntry(1, SlotId(0, 1, 1), "txn", record({0: 1})),)
    long = short + (LogEntry(2, SlotId(0, 1, 2), "txn", record({0: 2})),)
    merged = merge_logs([short, long], frozenset())
    assert len(merged) == 2


def test_merge_applies_perm_drops_via_stamps():
    # The entry's own slot is (0,1,2) but its stamp also covers shard
    # 3 seq 9 — dropping either slot must NO-OP the entry.
    entry = LogEntry(1, SlotId(0, 1, 2), "txn", record({0: 2, 3: 9}))
    merged = merge_logs([(entry,)], frozenset({SlotId(3, 1, 9)}))
    assert merged[0].is_noop
    merged2 = merge_logs([(entry,)], frozenset({SlotId(0, 1, 2)}))
    assert merged2[0].is_noop
    merged3 = merge_logs([(entry,)], frozenset({SlotId(0, 1, 3)}))
    assert not merged3[0].is_noop


def test_merge_empty():
    assert merge_logs([], frozenset()) == []
    assert merge_logs([()], frozenset()) == []


# -- property: merge keeps the longest prefix intact ---------------------

@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=10))
def test_merge_is_prefix_preserving(len_a, len_b):
    def build(n):
        return tuple(LogEntry(i + 1, SlotId(0, 1, i + 1), "txn",
                              record({0: i + 1})) for i in range(n))
    a, b = build(len_a), build(len_b)
    merged = merge_logs([a, b], frozenset())
    assert len(merged) == max(len_a, len_b)
    for i, entry in enumerate(merged):
        assert entry.slot.seq == i + 1
        assert entry.index == i + 1
