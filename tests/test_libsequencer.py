"""Unit + property tests for the end-host multi-sequencing channel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.libsequencer import MultiSequencedChannel, UpcallKind
from repro.net.message import MultiStamp, Packet


def pkt(group, epoch, seq, payload=None):
    return Packet(src="s", dst="d", payload=payload or f"m{seq}",
                  multistamp=MultiStamp(epoch=epoch, stamps=((group, seq),)))


def kinds(upcalls):
    return [(u.kind, u.seq) for u in upcalls]


def test_in_order_delivery():
    ch = MultiSequencedChannel(group=0)
    assert kinds(ch.on_packet(pkt(0, 1, 1))) == [(UpcallKind.DELIVER, 1)]
    assert kinds(ch.on_packet(pkt(0, 1, 2))) == [(UpcallKind.DELIVER, 2)]
    assert ch.next_seq == 3


def test_duplicates_ignored():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 1))
    assert ch.on_packet(pkt(0, 1, 1)) == []


def test_gap_raises_drop_notification_once():
    ch = MultiSequencedChannel(group=0)
    upcalls = ch.on_packet(pkt(0, 1, 3))
    assert kinds(upcalls) == [(UpcallKind.DROP_NOTIFICATION, 1),
                              (UpcallKind.DROP_NOTIFICATION, 2)]
    # Re-receiving the same future packet raises nothing new.
    assert ch.on_packet(pkt(0, 1, 3)) == []


def test_gap_filled_by_late_packet_flushes_buffer():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 2))
    upcalls = ch.on_packet(pkt(0, 1, 1))
    assert kinds(upcalls) == [(UpcallKind.DELIVER, 1), (UpcallKind.DELIVER, 2)]


def test_resolve_with_packet_closes_gap():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 2))
    upcalls = ch.resolve(1, pkt(0, 1, 1, payload="recovered"))
    assert kinds(upcalls) == [(UpcallKind.DELIVER, 1), (UpcallKind.DELIVER, 2)]
    assert upcalls[0].packet.payload == "recovered"


def test_resolve_with_none_is_permanent_drop():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 2))
    upcalls = ch.resolve(1, None)
    assert kinds(upcalls) == [(UpcallKind.DELIVER, 1), (UpcallKind.DELIVER, 2)]
    assert upcalls[0].packet is None


def test_resolve_already_delivered_is_noop():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 1))
    assert ch.resolve(1, None) == []


def test_stale_epoch_ignored():
    ch = MultiSequencedChannel(group=0, epoch=2)
    assert ch.on_packet(pkt(0, 1, 1)) == []


def test_new_epoch_notification_once():
    ch = MultiSequencedChannel(group=0)
    upcalls = ch.on_packet(pkt(0, 2, 1))
    assert [u.kind for u in upcalls] == [UpcallKind.NEW_EPOCH]
    assert upcalls[0].epoch == 2
    assert ch.on_packet(pkt(0, 2, 2)) == []
    assert ch.pending_epochs() == [2]


def test_begin_epoch_replays_buffered_packets():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 2, 1))
    ch.on_packet(pkt(0, 2, 2))
    replay = ch.begin_epoch(2)
    assert len(replay) == 2
    assert ch.epoch == 2 and ch.next_seq == 1
    upcalls = []
    for packet in replay:
        upcalls.extend(ch.on_packet(packet))
    assert kinds(upcalls) == [(UpcallKind.DELIVER, 1), (UpcallKind.DELIVER, 2)]


def test_begin_epoch_must_increase():
    ch = MultiSequencedChannel(group=0, epoch=3)
    with pytest.raises(Exception):
        ch.begin_epoch(3)


def test_fast_forward_skips_and_flushes():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 5))
    upcalls = ch.fast_forward(5)
    assert kinds(upcalls) == [(UpcallKind.DELIVER, 5)]
    assert ch.next_seq == 6


def test_fast_forward_backwards_is_noop():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 1))
    assert ch.fast_forward(1) == []
    assert ch.next_seq == 2


def test_wrong_group_packets_ignored():
    ch = MultiSequencedChannel(group=0)
    assert ch.on_packet(pkt(9, 1, 1)) == []


def test_missing_reports_known_gaps():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 4))
    assert ch.missing() == [1, 2, 3]
    ch.resolve(2, None)
    assert ch.missing() == [1, 3]


def test_get_buffered():
    ch = MultiSequencedChannel(group=0)
    ch.on_packet(pkt(0, 1, 3, payload="future"))
    assert ch.get_buffered(3).payload == "future"
    assert ch.get_buffered(2) is None


# -- property-based: any arrival order delivers exactly once, in order ----

@settings(max_examples=200, deadline=None)
@given(st.permutations(list(range(1, 9))),
       st.sets(st.integers(min_value=1, max_value=8)))
def test_exactly_once_in_order_delivery(order, dropped):
    """Feed packets 1..8 in arbitrary order, with an arbitrary subset
    'dropped' (never arriving; resolved as perm-drops when notified).
    The channel must deliver every non-dropped sequence exactly once,
    in ascending order."""
    ch = MultiSequencedChannel(group=0)
    delivered = []

    def consume(upcalls):
        for u in upcalls:
            if u.kind is UpcallKind.DELIVER and u.packet is not None:
                delivered.append(u.seq)

    pending_drops = set()
    for seq in order:
        if seq in dropped:
            continue
        upcalls = ch.on_packet(pkt(0, 1, seq))
        consume(upcalls)
        for u in upcalls:
            if u.kind is UpcallKind.DROP_NOTIFICATION and u.seq in dropped:
                pending_drops.add(u.seq)
        # Resolve any known-dropped gaps (as the Eris protocol would).
        for gap in sorted(pending_drops):
            consume(ch.resolve(gap, None))
        pending_drops.clear()
    expected = [s for s in range(1, 9)
                if s not in dropped and s < ch.next_seq]
    assert delivered == expected
    assert delivered == sorted(set(delivered))
