"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_loop import EventLoop


def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(3e-3, order.append, "c")
    loop.schedule(1e-3, order.append, "a")
    loop.schedule(2e-3, order.append, "b")
    loop.run_until_idle()
    assert order == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    loop = EventLoop()
    order = []
    for tag in range(5):
        loop.schedule(1e-3, order.append, tag)
    loop.run_until_idle()
    assert order == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(5e-3, lambda: seen.append(loop.now))
    loop.run_until_idle()
    assert seen == [pytest.approx(5e-3)]


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1e-3, fired.append, "early")
    loop.schedule(10e-3, fired.append, "late")
    loop.run(until=5e-3)
    assert fired == ["early"]
    assert loop.now == pytest.approx(5e-3)
    loop.run_until_idle()
    assert fired == ["early", "late"]


def test_cancel_prevents_execution():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1e-3, fired.append, "x")
    loop.cancel(event)
    loop.run_until_idle()
    assert fired == []


def test_cancel_twice_is_harmless():
    loop = EventLoop()
    event = loop.schedule(1e-3, lambda: None)
    loop.cancel(event)
    loop.cancel(event)
    loop.run_until_idle()


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda: None)


def test_schedule_in_the_past_rejected():
    loop = EventLoop()
    loop.schedule(1e-3, lambda: None)
    loop.run_until_idle()
    with pytest.raises(SimulationError):
        loop.schedule_at(0.0, lambda: None)


def test_events_scheduled_during_run_execute():
    loop = EventLoop()
    order = []

    def first():
        order.append("first")
        loop.schedule(1e-3, order.append, "second")

    loop.schedule(1e-3, first)
    loop.run_until_idle()
    assert order == ["first", "second"]


def test_run_until_idle_detects_livelock():
    loop = EventLoop()

    def forever():
        loop.schedule(1e-6, forever)

    loop.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        loop.run_until_idle(max_events=1000)


def test_max_events_bounds_run():
    loop = EventLoop()
    count = []
    for _ in range(10):
        loop.schedule(1e-3, count.append, 1)
    loop.run(max_events=4)
    assert len(count) == 4


def test_pending_counts_uncancelled():
    loop = EventLoop()
    kept = loop.schedule(1e-3, lambda: None)
    cancelled = loop.schedule(2e-3, lambda: None)
    loop.cancel(cancelled)
    assert loop.pending == 1
    assert kept is not None


def test_run_not_reentrant():
    loop = EventLoop()
    failures = []

    def reenter():
        try:
            loop.run()
        except SimulationError:
            failures.append(True)

    loop.schedule(1e-3, reenter)
    loop.run_until_idle()
    assert failures == [True]


def test_events_processed_counter():
    loop = EventLoop()
    for _ in range(7):
        loop.schedule(1e-3, lambda: None)
    loop.run_until_idle()
    assert loop.events_processed == 7
