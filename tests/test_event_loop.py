"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_loop import EventLoop


def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(3e-3, order.append, "c")
    loop.schedule(1e-3, order.append, "a")
    loop.schedule(2e-3, order.append, "b")
    loop.run_until_idle()
    assert order == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    loop = EventLoop()
    order = []
    for tag in range(5):
        loop.schedule(1e-3, order.append, tag)
    loop.run_until_idle()
    assert order == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(5e-3, lambda: seen.append(loop.now))
    loop.run_until_idle()
    assert seen == [pytest.approx(5e-3)]


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1e-3, fired.append, "early")
    loop.schedule(10e-3, fired.append, "late")
    loop.run(until=5e-3)
    assert fired == ["early"]
    assert loop.now == pytest.approx(5e-3)
    loop.run_until_idle()
    assert fired == ["early", "late"]


def test_cancel_prevents_execution():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1e-3, fired.append, "x")
    loop.cancel(event)
    loop.run_until_idle()
    assert fired == []


def test_cancel_twice_is_harmless():
    loop = EventLoop()
    event = loop.schedule(1e-3, lambda: None)
    loop.cancel(event)
    loop.cancel(event)
    loop.run_until_idle()


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda: None)


def test_schedule_in_the_past_rejected():
    loop = EventLoop()
    loop.schedule(1e-3, lambda: None)
    loop.run_until_idle()
    with pytest.raises(SimulationError):
        loop.schedule_at(0.0, lambda: None)


def test_events_scheduled_during_run_execute():
    loop = EventLoop()
    order = []

    def first():
        order.append("first")
        loop.schedule(1e-3, order.append, "second")

    loop.schedule(1e-3, first)
    loop.run_until_idle()
    assert order == ["first", "second"]


def test_run_until_idle_detects_livelock():
    loop = EventLoop()

    def forever():
        loop.schedule(1e-6, forever)

    loop.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        loop.run_until_idle(max_events=1000)


def test_max_events_bounds_run():
    loop = EventLoop()
    count = []
    for _ in range(10):
        loop.schedule(1e-3, count.append, 1)
    loop.run(max_events=4)
    assert len(count) == 4


def test_pending_counts_uncancelled():
    loop = EventLoop()
    kept = loop.schedule(1e-3, lambda: None)
    cancelled = loop.schedule(2e-3, lambda: None)
    loop.cancel(cancelled)
    assert loop.pending == 1
    assert kept is not None


def test_run_not_reentrant():
    loop = EventLoop()
    failures = []

    def reenter():
        try:
            loop.run()
        except SimulationError:
            failures.append(True)

    loop.schedule(1e-3, reenter)
    loop.run_until_idle()
    assert failures == [True]


def test_events_processed_counter():
    loop = EventLoop()
    for _ in range(7):
        loop.schedule(1e-3, lambda: None)
    loop.run_until_idle()
    assert loop.events_processed == 7


def test_livelock_detected_despite_stale_cancelled_entries():
    """Regression: one stale cancelled entry in the heap used to
    suppress the livelock error entirely (``all(not e.cancelled)``);
    a mixed live/cancelled heap must still raise."""
    loop = EventLoop()

    def forever():
        loop.schedule(1e-6, forever)

    # Plant cancelled garbage alongside the livelocked chain.
    for _ in range(5):
        loop.cancel(loop.schedule(10.0, lambda: None))
    loop.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        loop.run_until_idle(max_events=1000)


def test_only_cancelled_leftovers_do_not_raise():
    loop = EventLoop()
    for _ in range(5):
        loop.cancel(loop.schedule(10.0, lambda: None))
    loop.schedule(1e-3, lambda: None)
    loop.run_until_idle(max_events=1)      # budget exactly consumed


def test_reschedule_moves_deadline_later():
    loop = EventLoop()
    fired = []
    event = loop.schedule(2e-3, lambda: fired.append(loop.now))
    moved = loop.reschedule(event, 5e-3)
    loop.run_until_idle()
    assert fired == [pytest.approx(5e-3)]
    assert len(fired) == 1
    assert moved.time == pytest.approx(5e-3)


def test_reschedule_moves_deadline_earlier():
    loop = EventLoop()
    fired = []
    event = loop.schedule(5e-3, lambda: fired.append(loop.now))
    loop.reschedule(event, 1e-3)
    loop.run_until_idle()
    assert fired == [pytest.approx(1e-3)]


def test_reschedule_matches_cancel_plus_schedule_tie_break():
    """A rescheduled event must fire in exactly the position a
    cancel-plus-schedule replacement would have occupied among
    same-time ties (it consumes the same sequence number)."""
    loop_a, loop_b = EventLoop(), EventLoop()
    order_a, order_b = [], []

    # Loop A: naive cancel + schedule.
    ev = loop_a.schedule(1e-3, order_a.append, "timer")
    loop_a.schedule(2e-3, order_a.append, "x")
    loop_a.cancel(ev)
    loop_a.schedule(2e-3, order_a.append, "timer")
    loop_a.schedule(2e-3, order_a.append, "y")
    loop_a.run_until_idle()

    # Loop B: same operations via reschedule.
    ev = loop_b.schedule(1e-3, order_b.append, "timer")
    loop_b.schedule(2e-3, order_b.append, "x")
    loop_b.reschedule(ev, 2e-3)
    loop_b.schedule(2e-3, order_b.append, "y")
    loop_b.run_until_idle()

    assert order_a == order_b == ["x", "timer", "y"]


def test_reschedule_after_fire_rearms_same_object():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1e-3, lambda: fired.append(loop.now))
    loop.run_until_idle()
    rearmed = loop.reschedule(event, 4e-3)
    assert rearmed is event                 # reused, not reallocated
    loop.run_until_idle()
    assert fired == [pytest.approx(1e-3), pytest.approx(4e-3)]


def test_reschedule_into_past_rejected():
    loop = EventLoop()
    event = loop.schedule(5e-3, lambda: None)
    loop.schedule(1e-3, lambda: None)
    loop.run(max_events=1)
    with pytest.raises(SimulationError):
        loop.reschedule(event, 0.5e-3)


def test_rescheduled_then_cancelled_event_never_fires():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1e-3, fired.append, "x")
    loop.reschedule(event, 3e-3)
    loop.cancel(event)
    loop.run_until_idle()
    assert fired == []


def test_pending_is_exact_through_cancel_and_reschedule():
    loop = EventLoop()
    events = [loop.schedule(1e-3 * (i + 1), lambda: None) for i in range(4)]
    assert loop.pending == 4
    loop.cancel(events[0])
    assert loop.pending == 3
    loop.reschedule(events[1], 9e-3)        # deferred: still one entry
    assert loop.pending == 3
    loop.run_until_idle()
    assert loop.pending == 0


def test_heap_compaction_preserves_event_order():
    loop = EventLoop()
    order = []
    keep = []
    for i in range(3000):
        event = loop.schedule(1e-6 * i, order.append, i)
        if i % 3 == 0:
            keep.append(i)
        else:
            loop.cancel(event)              # drives compaction
    assert loop.compactions > 0
    assert len(loop._heap) < 3000
    loop.run_until_idle()
    assert order == keep


def test_on_event_hook_sees_fired_time_and_seq():
    loop = EventLoop()
    seen = []
    loop.on_event = lambda e: seen.append((e.time, e.seq))
    loop.schedule(2e-3, lambda: None)
    event = loop.schedule(1e-3, lambda: None)
    loop.reschedule(event, 3e-3)
    loop.run_until_idle()
    assert seen == [(pytest.approx(2e-3), 0), (pytest.approx(3e-3), 2)]
