"""Trace-backed invariant checkers: recorded executions of a healthy
cluster pass, and injected serializability / divergence / atomicity
violations are caught — including when the trace round-trips through a
JSONL file."""

import pytest

from conftest import make_ycsb_cluster
from repro.baselines.common import WorkloadOp
from repro.errors import InvariantViolation
from repro.harness import run_all_checks, run_trace_checks
from repro.harness.checkers import (
    check_trace_atomicity,
    check_trace_replica_consistency,
    check_trace_serializability,
    trace_replica_orders,
)


def _run_traced_cluster(n_ops: int = 30):
    """A small two-shard Eris run with tracing on; returns the cluster
    after all ops committed."""
    cluster = make_ycsb_cluster(n_shards=2, tracing=True)
    client = cluster.make_client()
    done = []
    def submit(i):
        key = i % 50
        op = WorkloadOp(proc="ycsb_rmw",
                        args={"keys": (key, key + 50)},
                        participants=(0, 1),
                        read_keys=frozenset([key, key + 50]),
                        write_keys=frozenset([key, key + 50]))
        client.submit(op, lambda r: (done.append(r),
                                     submit(i + 1) if i + 1 < n_ops
                                     else None))
    submit(0)
    cluster.loop.run(until=0.2)
    assert len(done) == n_ops and all(r.committed for r in done)
    return cluster


# -- healthy executions ----------------------------------------------------

def test_traced_run_passes_all_checks(tmp_path):
    cluster = _run_traced_cluster()
    assert len(cluster.tracer) > 0
    # Live tracer picked up automatically from the traced cluster.
    run_all_checks(cluster)
    # The same invariants hold on the exported JSONL file alone.
    path = str(tmp_path / "trace.jsonl")
    cluster.tracer.export(path)
    run_trace_checks(path)
    run_all_checks(trace=path)


def test_trace_orders_match_replica_state():
    cluster = _run_traced_cluster(n_ops=10)
    orders = trace_replica_orders(cluster.tracer)
    assert set(orders) == {0, 1}
    for shard, replica_orders in orders.items():
        assert len(replica_orders) == 3     # every replica traced
        dl = cluster.replicas[shard][0]
        traced = replica_orders[dl.address]
        assert len(traced) == len(dl.log)
        for (slot, kind, _txn), entry in zip(traced, dl.log):
            assert slot == (entry.slot.shard, entry.slot.epoch,
                            entry.slot.seq)
            assert kind == entry.kind


def test_run_all_checks_requires_evidence():
    with pytest.raises(ValueError):
        run_all_checks()


# -- injected violations ---------------------------------------------------

def _append(node, shard, index, seq, txn, participants=(0, 1)):
    return {"ts": index * 1e-6, "kind": "log_append", "node": node,
            "cause": -1, "shard": shard, "index": index,
            "entry_kind": "txn", "slot": [shard, 1, seq], "txn": txn,
            "participants": list(participants)}


def test_checker_catches_serializability_cycle():
    # Shard 0 commits t1 before t2; shard 1 commits t2 before t1 — the
    # cross-shard precedence graph has a cycle, which multi-sequencing
    # is supposed to make impossible.
    trace = [
        _append("r0.0", 0, 1, 1, "1:1"),
        _append("r0.0", 0, 2, 2, "1:2"),
        _append("r1.0", 1, 1, 1, "1:2"),
        _append("r1.0", 1, 2, 2, "1:1"),
    ]
    with pytest.raises(InvariantViolation, match="cycle"):
        check_trace_serializability(trace)
    with pytest.raises(InvariantViolation):
        run_trace_checks(trace)


def test_checker_catches_replica_divergence():
    # Two replicas of shard 0 disagree at the same log position.
    trace = [
        _append("r0.0", 0, 1, 1, "1:1"),
        _append("r0.1", 0, 1, 2, "1:9"),
    ]
    with pytest.raises(InvariantViolation, match="divergence"):
        check_trace_replica_consistency(trace)
    with pytest.raises(InvariantViolation):
        run_trace_checks(trace)


def test_checker_catches_atomicity_violation():
    # t1 is a two-shard transaction but only shard 0 ever logs it.
    trace = [
        _append("r0.0", 0, 1, 1, "1:1", participants=(0, 1)),
        _append("r1.0", 1, 1, 1, "1:2", participants=(1,)),
    ]
    with pytest.raises(InvariantViolation, match="missing at participant"):
        check_trace_atomicity(trace)


def test_injected_violation_detected_from_jsonl(tmp_path):
    # A doctored trace file fails the checkers after a round-trip.
    import json
    trace = [
        _append("r0.0", 0, 1, 1, "1:1"),
        _append("r0.0", 0, 2, 2, "1:2"),
        _append("r1.0", 1, 1, 1, "1:2"),
        _append("r1.0", 1, 2, 2, "1:1"),
    ]
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as handle:
        for event in trace:
            handle.write(json.dumps(event) + "\n")
    with pytest.raises(InvariantViolation):
        run_trace_checks(path)
    with pytest.raises(InvariantViolation):
        run_all_checks(trace=path)


def test_log_adopt_replaces_traced_order():
    # A view change rewrites a replica's log; the adopted order is
    # authoritative, so a pre-adoption divergence must be forgiven.
    trace = [
        _append("r0.0", 0, 1, 1, "1:1"),
        _append("r0.1", 0, 1, 2, "1:9"),      # diverged...
        {"ts": 1.0, "kind": "log_adopt", "node": "r0.1", "cause": -1,
         "shard": 0, "rebuilt": True,
         "entries": [[1, "txn", "1:1", [0, 1, 1]]]},  # ...then adopted
    ]
    check_trace_replica_consistency(trace)     # no violation
