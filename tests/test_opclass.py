"""Operation-class plumbing: registry declarations, transaction
validators, the counters procedures' algebraic claims, and both wire
codecs round-tripping (and refusing to forge) the new fast-path
fields and messages."""

import pytest

from repro.core.messages import (
    AppliedUpto,
    CommutativeTxnRequest,
    FastReadReply,
    FastReadRequest,
    IndependentTxnRequest,
)
from repro.core.transaction import IndependentTransaction, TxnId
from repro.errors import UnknownProcedureError
from repro.runtime.codec import CodecError, decode_message, encode_message
from repro.store import (
    KVStore,
    OpClass,
    ProcedureRegistry,
    TxnContext,
)
from repro.workloads import register_counters_procedures

WIRES = ("ewc1", "ewc2")


# -- registry declarations --------------------------------------------------

def test_registry_defaults_to_generic():
    registry = ProcedureRegistry()
    registry.register("noop", lambda ctx, args: None)
    assert registry.op_class("noop") == OpClass.GENERIC
    assert registry.merge_fn("noop") is None


def test_registry_rejects_unknown_op_class():
    registry = ProcedureRegistry()
    with pytest.raises(ValueError, match="unknown op_class"):
        registry.register("bad", lambda ctx, args: None,
                          op_class="sometimes-commutes")


def test_registry_rejects_merge_on_non_commutative():
    registry = ProcedureRegistry()
    with pytest.raises(ValueError, match="COMMUTATIVE"):
        registry.register("r", lambda ctx, args: None,
                          op_class=OpClass.READ_ONLY,
                          merge=lambda a, b: a)


def test_registry_op_class_unknown_procedure_raises():
    registry = ProcedureRegistry()
    with pytest.raises(UnknownProcedureError):
        registry.op_class("ghost")
    with pytest.raises(UnknownProcedureError):
        registry.merge_fn("ghost")


def test_counters_procedures_declare_their_classes():
    registry = ProcedureRegistry()
    register_counters_procedures(registry)
    assert registry.op_class("counter_read") == OpClass.READ_ONLY
    assert registry.op_class("counter_add") == OpClass.COMMUTATIVE
    assert registry.op_class("tag_add") == OpClass.COMMUTATIVE
    assert registry.op_class("counter_reset") == OpClass.GENERIC


def test_counters_merge_fns_commute():
    """The declared combine functions really are commutative — the
    algebraic claim the early-apply relaxation rests on."""
    registry = ProcedureRegistry()
    register_counters_procedures(registry)
    add = registry.merge_fn("counter_add")
    union = registry.merge_fn("tag_add")
    assert add is not None and union is not None
    for a, b in [(0, 7), (3, -2), (10, 10)]:
        assert add(a, b) == add(b, a)
    for a, b in [((), ("x",)), (("a", "b"), ("b", "c"))]:
        assert union(a, b) == union(b, a)
        assert union(a, union(a, b)) == union(a, b)   # idempotent join


def test_counter_add_effect_commutes_on_the_store():
    """Executing two counter_add procedures in either order leaves the
    store in the same state (effect-level commutativity, not just the
    declared merge function)."""
    registry = ProcedureRegistry()
    register_counters_procedures(registry)

    def run(order):
        store = KVStore()
        store.put(1, 0)
        for delta in order:
            ctx = TxnContext(store)
            registry.execute("counter_add", ctx,
                             {"keys": (1,), "delta": delta})
        return store.get(1)

    assert run((5, -3)) == run((-3, 5)) == 2


# -- transaction validators -------------------------------------------------

def _txn(**kwargs):
    base = dict(txn_id=TxnId(client="c", seq=1), proc="p", args={},
                participants=(0,))
    base.update(kwargs)
    return IndependentTransaction(**base)


def test_txn_rejects_unknown_op_class():
    with pytest.raises(ValueError, match="unknown op_class"):
        _txn(op_class="mostly-reads")


def test_txn_rejects_read_only_with_write_keys():
    with pytest.raises(ValueError, match="read_only"):
        _txn(op_class="read_only", write_keys=frozenset({1}))


def test_txn_rejects_non_generic_general_halves():
    # Preliminary/conclusory halves of general transactions hold locks;
    # they must never slip onto a relaxed path.
    for kind in ("preliminary", "conclusory"):
        with pytest.raises(ValueError, match="must be generic"):
            _txn(kind=kind, op_class="commutative")


def test_txn_accepts_declared_classes():
    assert _txn(op_class="read_only",
                read_keys=frozenset({1})).op_class == "read_only"
    assert _txn(op_class="commutative",
                write_keys=frozenset({1})).op_class == "commutative"


# -- wire codecs ------------------------------------------------------------

def _commutative_txn():
    return IndependentTransaction(
        txn_id=TxnId(client="client-3", seq=9), proc="counter_add",
        args={"keys": (4, 104), "delta": 2}, participants=(0, 1),
        write_keys=frozenset({4, 104}), op_class="commutative")


@pytest.mark.parametrize("wire", WIRES)
def test_op_class_survives_roundtrip(wire):
    for op_class, write_keys in [("generic", frozenset({1})),
                                 ("commutative", frozenset({1})),
                                 ("read_only", frozenset())]:
        txn = _txn(op_class=op_class, write_keys=write_keys)
        decoded = decode_message(encode_message(txn, wire))
        assert decoded == txn
        assert decoded.op_class == op_class


@pytest.mark.parametrize("wire", WIRES)
def test_fast_path_messages_roundtrip(wire):
    txn = _commutative_txn()
    messages = [
        CommutativeTxnRequest(txn=txn, barriers=((0, 4), (1, 9))),
        AppliedUpto(shard=1, epoch=2, upto=117, sender="eris-r1.2"),
        FastReadRequest(txn=_txn(op_class="read_only",
                                 read_keys=frozenset({4})),
                        min_epoch=2),
        FastReadReply(txn_id=TxnId(client="c", seq=1), shard=0,
                      committed=True, result={4: 7}, epoch_num=2,
                      applied_seq=41),
        IndependentTxnRequest(txn=txn),
    ]
    for message in messages:
        assert decode_message(encode_message(message, wire)) == message


@pytest.mark.parametrize("wire", WIRES)
def test_forged_op_class_rejected_on_decode(wire):
    """A byte-patched frame cannot smuggle an undeclared op-class past
    the transaction validator: decode re-runs ``__post_init__``."""
    buffer = encode_message(_commutative_txn(), wire)
    assert buffer.count(b"commutative") == 1
    forged = buffer.replace(b"commutative", b"commutatiVe")
    with pytest.raises(CodecError):
        decode_message(forged)


def test_forged_read_only_writer_rejected_on_decode():
    """Rewriting a generic writer's class to ``read_only`` trips the
    no-write-keys validator during decode (EWC1's JSON text tolerates
    the length change; EWC2's length-prefixed strings cannot be
    patched this way, and its framing rejects the attempt instead)."""
    txn = IndependentTransaction(
        txn_id=TxnId(client="c", seq=2), proc="reset", args={},
        participants=(0,), write_keys=frozenset({"acct"}),
        op_class="generic")
    buffer = encode_message(txn, "ewc1")
    assert buffer.count(b'"generic"') == 1
    forged = buffer.replace(b'"generic"', b'"read_only"')
    with pytest.raises(CodecError):
        decode_message(forged)
