"""TPC-C on Eris under faults: the application-level workload must
survive packet loss and a DL failure with all invariants intact."""

import pytest

from repro.harness import (
    ClusterConfig,
    ExperimentConfig,
    build_cluster,
    run_experiment,
)
from repro.harness.checkers import run_all_checks
from repro.net.network import NetConfig
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCWorkload,
    load_tpcc,
    register_tpcc_procedures,
    tpcc_partitioner,
)
from repro.workloads.tpcc.schema import (
    TPCCScale,
    district_key,
    warehouse_key,
)

SCALE = TPCCScale(n_warehouses=4, districts_per_warehouse=2,
                  customers_per_district=6, n_items=30)


def build(drop_rate=0.0, seed=3):
    registry = ProcedureRegistry()
    register_tpcc_procedures(registry)
    partitioner = tpcc_partitioner(2)
    cluster = build_cluster(
        ClusterConfig(system="eris", n_shards=2, seed=seed,
                      net=NetConfig(drop_rate=drop_rate)),
        registry, partitioner,
        loader=lambda stores, p: load_tpcc(stores, p, SCALE))
    workload = TPCCWorkload(TPCCConfig(scale=SCALE), partitioner,
                            SplitRandom(seed + 1))
    return cluster, workload


def money_is_consistent(cluster) -> None:
    """District YTDs sum to their warehouse's ytd delta (every payment
    credits both by the same amount, atomically)."""
    part = cluster.partitioner
    for w in range(SCALE.n_warehouses):
        store = cluster.authoritative_store(part.shard_of(warehouse_key(w)))
        warehouse_delta = store.get(warehouse_key(w))["ytd"] - 300_000.0
        district_delta = sum(
            store.get(district_key(w, d))["ytd"] - 30_000.0
            for d in range(SCALE.districts_per_warehouse))
        assert warehouse_delta == pytest.approx(district_delta)


def test_tpcc_money_consistency_clean_run():
    cluster, workload = build()
    run_experiment(cluster, workload, ExperimentConfig(
        n_clients=10, warmup=2e-3, duration=15e-3, drain=20e-3))
    run_all_checks(cluster)
    money_is_consistent(cluster)


def test_tpcc_survives_packet_loss():
    cluster, workload = build(drop_rate=0.01)
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=10, warmup=2e-3, duration=20e-3, drain=60e-3))
    assert result.committed > 0
    cluster.set_drop_rate(0.0)
    cluster.loop.run(until=cluster.loop.now + 0.1)
    run_all_checks(cluster)
    money_is_consistent(cluster)


def test_tpcc_survives_dl_failure():
    cluster, workload = build()
    cluster.loop.schedule(10e-3, cluster.crash_replica, 0, 0)
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=10, warmup=2e-3, duration=60e-3, drain=200e-3))
    assert result.committed > 0
    run_all_checks(cluster)
    money_is_consistent(cluster)
    new_dl = next(r for r in cluster.replicas[0]
                  if not r.crashed and r.is_dl)
    assert new_dl.view_num >= 1
